//! Machine-readable experiment records (serde).
//!
//! Every experiment in the benchmark harness emits one of these next to
//! its human-readable table, so EXPERIMENTS.md numbers can be regenerated
//! and diffed mechanically.

use serde::{Deserialize, Serialize};

/// One measured configuration within an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigResult {
    /// Configuration label, e.g. `"8MB 4way"` or `"Molecular (Randy)"`.
    pub label: String,
    /// Metric values by name, e.g. `{"avg_deviation": 0.22}`.
    pub metrics: Vec<Metric>,
}

/// A named scalar measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name (`"avg_deviation"`, `"power_w"`, …).
    pub name: String,
    /// Measured value.
    pub value: f64,
}

impl Metric {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value,
        }
    }
}

/// A full experiment record: which table/figure it reproduces, the
/// workload, and all configuration results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Paper artifact id, e.g. `"table2"`, `"fig5a"`.
    pub id: String,
    /// Workload description.
    pub workload: String,
    /// References simulated.
    pub references: u64,
    /// Per-configuration results.
    pub results: Vec<ConfigResult>,
}

impl ExperimentRecord {
    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics for this type (no non-string keys, no NaN by
    /// convention); the `expect` guards programmer error.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("record serializes")
    }

    /// Parses a record back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Finds a metric by configuration label and metric name.
    pub fn metric(&self, label: &str, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.label == label)?
            .metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExperimentRecord {
        ExperimentRecord {
            id: "table2".into(),
            workload: "12-benchmark mixed".into(),
            references: 1_000_000,
            results: vec![ConfigResult {
                label: "6MB Molecular Randy".into(),
                metrics: vec![Metric::new("avg_deviation", 0.222)],
            }],
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = record();
        let parsed = ExperimentRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn metric_lookup() {
        let r = record();
        assert_eq!(r.metric("6MB Molecular Randy", "avg_deviation"), Some(0.222));
        assert_eq!(r.metric("6MB Molecular Randy", "nope"), None);
        assert_eq!(r.metric("nope", "avg_deviation"), None);
    }

    #[test]
    fn malformed_json_errors() {
        assert!(ExperimentRecord::from_json("{not json").is_err());
    }
}
