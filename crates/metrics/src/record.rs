//! Machine-readable experiment records.
//!
//! Every experiment in the benchmark harness emits one of these next to
//! its human-readable table, so EXPERIMENTS.md numbers can be regenerated
//! and diffed mechanically. Serialization is hand-rolled on top of
//! [`crate::json`] (the workspace builds without crates.io access); the
//! emitted shape matches the seed's serde_json output byte for byte.

use crate::json::{self, escape_into, format_f64, JsonError, Value};

/// One measured configuration within an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigResult {
    /// Configuration label, e.g. `"8MB 4way"` or `"Molecular (Randy)"`.
    pub label: String,
    /// Metric values by name, e.g. `{"avg_deviation": 0.22}`.
    pub metrics: Vec<Metric>,
}

/// A named scalar measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`"avg_deviation"`, `"power_w"`, …).
    pub name: String,
    /// Measured value.
    pub value: f64,
}

impl Metric {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value,
        }
    }
}

/// A full experiment record: which table/figure it reproduces, the
/// workload, and all configuration results.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Paper artifact id, e.g. `"table2"`, `"fig5a"`.
    pub id: String,
    /// Workload description.
    pub workload: String,
    /// References simulated.
    pub references: u64,
    /// Per-configuration results.
    pub results: Vec<ConfigResult>,
}

impl ExperimentRecord {
    /// Serializes to pretty JSON (2-space indent, stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"id\": ");
        escape_into(&mut out, &self.id);
        out.push_str(",\n  \"workload\": ");
        escape_into(&mut out, &self.workload);
        out.push_str(",\n  \"references\": ");
        out.push_str(&self.references.to_string());
        out.push_str(",\n  \"results\": ");
        if self.results.is_empty() {
            out.push_str("[]");
        } else {
            out.push_str("[\n");
            for (i, r) in self.results.iter().enumerate() {
                out.push_str("    {\n      \"label\": ");
                escape_into(&mut out, &r.label);
                out.push_str(",\n      \"metrics\": ");
                if r.metrics.is_empty() {
                    out.push_str("[]");
                } else {
                    out.push_str("[\n");
                    for (j, m) in r.metrics.iter().enumerate() {
                        out.push_str("        {\n          \"name\": ");
                        escape_into(&mut out, &m.name);
                        out.push_str(",\n          \"value\": ");
                        out.push_str(&format_f64(m.value));
                        out.push_str("\n        }");
                        if j + 1 < r.metrics.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str("      ]");
                }
                out.push_str("\n    }");
                if i + 1 < self.results.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("  ]");
        }
        out.push_str("\n}");
        out
    }

    /// Parses a record back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or a missing/mistyped
    /// field.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = json::parse(text)?;
        let results = field(&root, "results")?
            .as_array()
            .ok_or_else(|| type_err("results", "array"))?
            .iter()
            .map(|r| {
                let metrics = field(r, "metrics")?
                    .as_array()
                    .ok_or_else(|| type_err("metrics", "array"))?
                    .iter()
                    .map(|m| {
                        Ok(Metric {
                            name: string_field(m, "name")?,
                            value: number_field(m, "value")?,
                        })
                    })
                    .collect::<Result<Vec<_>, JsonError>>()?;
                Ok(ConfigResult {
                    label: string_field(r, "label")?,
                    metrics,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(ExperimentRecord {
            id: string_field(&root, "id")?,
            workload: string_field(&root, "workload")?,
            references: number_field(&root, "references")? as u64,
            results,
        })
    }

    /// Finds a metric by configuration label and metric name.
    pub fn metric(&self, label: &str, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.label == label)?
            .metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, JsonError> {
    v.get(name)
        .ok_or_else(|| JsonError::new(format!("missing field `{name}`"), 0))
}

fn type_err(name: &str, wanted: &str) -> JsonError {
    JsonError::new(format!("field `{name}` is not a {wanted}"), 0)
}

fn string_field(v: &Value, name: &str) -> Result<String, JsonError> {
    field(v, name)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| type_err(name, "string"))
}

fn number_field(v: &Value, name: &str) -> Result<f64, JsonError> {
    field(v, name)?
        .as_f64()
        .ok_or_else(|| type_err(name, "number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExperimentRecord {
        ExperimentRecord {
            id: "table2".into(),
            workload: "12-benchmark mixed".into(),
            references: 1_000_000,
            results: vec![ConfigResult {
                label: "6MB Molecular Randy".into(),
                metrics: vec![Metric::new("avg_deviation", 0.222)],
            }],
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = record();
        let parsed = ExperimentRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_matches_serde_pretty_layout() {
        // The exact bytes serde_json::to_string_pretty produced for the
        // seed's results/*.json files — layout must stay diff-stable.
        let expected = "{\n  \"id\": \"table2\",\n  \"workload\": \"12-benchmark mixed\",\n  \"references\": 1000000,\n  \"results\": [\n    {\n      \"label\": \"6MB Molecular Randy\",\n      \"metrics\": [\n        {\n          \"name\": \"avg_deviation\",\n          \"value\": 0.222\n        }\n      ]\n    }\n  ]\n}";
        assert_eq!(record().to_json(), expected);
    }

    #[test]
    fn empty_results_serialize_compactly() {
        let r = ExperimentRecord {
            id: "x".into(),
            workload: "w".into(),
            references: 0,
            results: vec![],
        };
        let parsed = ExperimentRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn metric_lookup() {
        let r = record();
        assert_eq!(
            r.metric("6MB Molecular Randy", "avg_deviation"),
            Some(0.222)
        );
        assert_eq!(r.metric("6MB Molecular Randy", "nope"), None);
        assert_eq!(r.metric("nope", "avg_deviation"), None);
    }

    #[test]
    fn malformed_json_errors() {
        assert!(ExperimentRecord::from_json("{not json").is_err());
        assert!(ExperimentRecord::from_json("{\"id\": \"x\"}").is_err());
        assert!(ExperimentRecord::from_json("[]").is_err());
    }
}
