//! Terminal charts for experiment output.
//!
//! The paper's figures are line/bar plots; the `repro` binary prints
//! their data as tables plus these ASCII renderings so the shapes are
//! visible without leaving the terminal.

use std::fmt::Write as _;

/// Renders a horizontal bar chart.
///
/// ```
/// use molcache_metrics::chart::bar_chart;
/// let s = bar_chart("deviation", &[("a".into(), 0.5), ("b".into(), 1.0)], 20);
/// assert!(s.contains("a"));
/// assert!(s.lines().count() >= 3);
/// ```
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    for (label, value) in rows {
        let filled = ((value / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{label:label_w$} |{}{} {value:.3}",
            "#".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
        );
    }
    out
}

/// Renders several series over shared x labels as a line-ish scatter
/// (one glyph per series), y scaled to the data range.
///
/// Intended for small figures (a handful of x points), like the paper's
/// Figure 5 size sweeps.
pub fn series_chart(
    title: &str,
    x_labels: &[String],
    series: &[(String, Vec<f64>)],
    height: usize,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '@', '%', '&', '~'];
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if series.is_empty() || x_labels.is_empty() || height == 0 {
        out.push_str("(no data)\n");
        return out;
    }
    let all: Vec<f64> = series.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    let max = all.iter().cloned().fold(f64::MIN, f64::max);
    let min = all.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let col_w = 8usize;
    // Grid rows from top (max) to bottom (min).
    let mut grid = vec![vec![' '; x_labels.len() * col_w]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (xi, v) in values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let level = ((v - min) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - level.min(height - 1);
            let col = xi * col_w + col_w / 2;
            grid[row][col] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y = max - span * i as f64 / (height - 1).max(1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y:8.3} |{}", line.trim_end());
    }
    let _ = write!(out, "{:8} +", "");
    for label in x_labels {
        let _ = write!(out, "{label:^col_w$}");
    }
    out.push('\n');
    let _ = write!(out, "{:10}", "");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = write!(out, "{}={name}  ", GLYPHS[si % GLYPHS.len()]);
    }
    out.push('\n');
    out
}

/// Renders a series as a one-line Unicode sparkline, scaled to the data
/// range (flat series render as a mid-height line).
///
/// ```
/// use molcache_metrics::chart::sparkline;
/// assert_eq!(sparkline(&[0.0, 1.0]), "▁█");
/// assert_eq!(sparkline(&[]), "");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let max = finite.iter().cloned().fold(f64::MIN, f64::max);
    let min = finite.iter().cloned().fold(f64::MAX, f64::min);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                '?'
            } else if max == min {
                LEVELS[3]
            } else {
                let level = ((v - min) / (max - min) * (LEVELS.len() - 1) as f64).round();
                LEVELS[(level as usize).min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_and_handles_edges() {
        assert_eq!(sparkline(&[0.0, 0.5, 1.0]), "▁▅█");
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▄▄▄");
        assert_eq!(sparkline(&[1.0, f64::NAN]), "▄?");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart("t", &[("big".into(), 2.0), ("small".into(), 1.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        let big_hashes = lines[1].matches('#').count();
        let small_hashes = lines[2].matches('#').count();
        assert_eq!(big_hashes, 10);
        assert_eq!(small_hashes, 5);
    }

    #[test]
    fn bar_chart_empty() {
        assert!(bar_chart("t", &[], 10).contains("no data"));
    }

    #[test]
    fn series_chart_places_every_series() {
        let s = series_chart(
            "fig",
            &["1MB".into(), "2MB".into()],
            &[("A".into(), vec![1.0, 0.5]), ("B".into(), vec![0.2, 0.1])],
            6,
        );
        assert!(s.contains('*'), "{s}");
        assert!(s.contains('o'), "{s}");
        assert!(s.contains("*=A"));
        assert!(s.contains("1MB"));
    }

    #[test]
    fn series_chart_handles_flat_data() {
        let s = series_chart("flat", &["x".into()], &[("A".into(), vec![0.5])], 4);
        assert!(s.contains('*'));
    }

    #[test]
    fn series_chart_empty() {
        assert!(series_chart("t", &[], &[], 4).contains("no data"));
    }
}
