//! # molcache-metrics — QoS metrics and paper-style reporting
//!
//! The paper evaluates caches with three metrics, all implemented here:
//!
//! * **Average deviation from the miss-rate goal** ([`deviation`]) — the
//!   per-application `|miss_rate − goal|`, averaged over the workload
//!   (Figure 5, Table 2).
//! * **Hits per molecule** ([`hpm`]) — hit rate divided by molecules
//!   used; Figure 6's replacement-policy efficiency metric.
//! * **Power-deviation product** ([`power_deviation`]) — Table 5's
//!   combined QoS/power figure of merit.
//!
//! Plus [`table`] — fixed-width ASCII tables and CSV emitters so the
//! benchmark harness prints output shaped like the paper's tables — and
//! [`record`] — JSON-serializable experiment records (via the built-in
//! [`json`] module) written next to the human-readable output.

pub mod chart;
pub mod deviation;
pub mod hpm;
pub mod json;
pub mod power_deviation;
pub mod record;
pub mod table;

pub use deviation::{average_deviation, deviation_from_goal, MissRateGoal};
pub use hpm::hits_per_molecule;
pub use power_deviation::power_deviation_product;
