//! Hits per molecule (Figure 6's replacement-efficiency metric).

/// Hit rate achieved per molecule employed.
///
/// The paper compares Random and Randy by "the number of molecules
/// employed to achieve the given hit rate": a policy achieving the same
/// hit rate with fewer molecules is more effective. Returns `0.0` when
/// no molecules were used or no accesses happened.
pub fn hits_per_molecule(hits: u64, accesses: u64, avg_molecules: f64) -> f64 {
    if accesses == 0 || avg_molecules <= 0.0 {
        return 0.0;
    }
    (hits as f64 / accesses as f64) / avg_molecules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ratio() {
        // 50% hit rate over 10 molecules -> 0.05.
        assert!((hits_per_molecule(50, 100, 10.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fewer_molecules_scores_higher() {
        let small = hits_per_molecule(90, 100, 5.0);
        let big = hits_per_molecule(90, 100, 20.0);
        assert!(small > big);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(hits_per_molecule(0, 0, 4.0), 0.0);
        assert_eq!(hits_per_molecule(10, 100, 0.0), 0.0);
    }
}
