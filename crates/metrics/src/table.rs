//! Fixed-width ASCII tables and CSV output for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table builder used by the `repro` binary to
/// print paper-style tables.
///
/// ```
/// use molcache_metrics::table::Table;
/// let mut t = Table::new(vec!["cache", "deviation"]);
/// t.row(vec!["8MB 4way".into(), "0.313".into()]);
/// let text = t.render();
/// assert!(text.contains("8MB 4way"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells; longer
    /// rows are truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().take(cols).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:width$}", width = widths[i]);
            }
            // Trim the padding of the final column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as a GitHub-flavoured Markdown table (used when
    /// regenerating EXPERIMENTS.md sections).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| cell.replace('|', "\\|");
        out.push_str("| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table as CSV (comma-separated, quoted where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` the way the paper's tables do (6 significant-ish
/// decimal places for deviations, trimmed).
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(!text.contains('3'), "overflow cell dropped");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_renders_separator_and_escapes() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["a|b".into(), "1".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| name | v |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("a\\|b"));
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f64(0.2220754, 6), "0.222075");
        assert_eq!(fmt_f64(1.0, 2), "1.00");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        Table::new(Vec::<String>::new());
    }

    #[test]
    fn is_empty_reflects_rows() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert!(!t.is_empty());
    }
}
