//! Deviation from the miss-rate goal (the paper's primary QoS metric).

use molcache_trace::Asid;
use std::collections::BTreeMap;

/// Per-application miss-rate goals with a default.
///
/// ```
/// use molcache_metrics::MissRateGoal;
/// use molcache_trace::Asid;
///
/// let goals = MissRateGoal::uniform(0.10).with_override(Asid::new(4), 0.30);
/// assert_eq!(goals.goal(Asid::new(1)), 0.10);
/// assert_eq!(goals.goal(Asid::new(4)), 0.30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MissRateGoal {
    default: f64,
    overrides: BTreeMap<Asid, f64>,
}

impl MissRateGoal {
    /// The same goal for every application (Graph A of Figure 5).
    pub fn uniform(goal: f64) -> Self {
        MissRateGoal {
            default: goal,
            overrides: BTreeMap::new(),
        }
    }

    /// Adds a per-application override (Graph B of Figure 5 sets a goal
    /// for only three of the four benchmarks).
    pub fn with_override(mut self, asid: Asid, goal: f64) -> Self {
        self.overrides.insert(asid, goal);
        self
    }

    /// The goal for one application.
    pub fn goal(&self, asid: Asid) -> f64 {
        self.overrides.get(&asid).copied().unwrap_or(self.default)
    }
}

/// Absolute deviation of a miss rate from its goal.
pub fn deviation_from_goal(miss_rate: f64, goal: f64) -> f64 {
    (miss_rate - goal).abs()
}

/// Overshoot-only deviation: how far the miss rate exceeds the goal
/// (`0` when the goal is met or beaten).
///
/// The paper's Table 5 metric treats over-service (miss rate *below*
/// goal) the same as a QoS violation; its §5 notes the metric "needs to
/// be further refined". This is the refinement used by
/// [`power_deviation::refined_power_deviation_product`]: only violations
/// count, since a below-goal application has its QoS satisfied.
///
/// [`power_deviation::refined_power_deviation_product`]:
/// crate::power_deviation::refined_power_deviation_product
pub fn overshoot_from_goal(miss_rate: f64, goal: f64) -> f64 {
    (miss_rate - goal).max(0.0)
}

/// Average overshoot-only deviation over a set of applications.
pub fn average_overshoot<I>(miss_rates: I, goals: &MissRateGoal) -> f64
where
    I: IntoIterator<Item = (Asid, f64)>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for (asid, mr) in miss_rates {
        sum += overshoot_from_goal(mr, goals.goal(asid));
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Average deviation from the miss-rate goal over a set of applications
/// (the paper's Figure 5 / Table 2 metric).
///
/// `miss_rates` pairs each application with its measured miss rate; the
/// deviation of each is taken against its own goal and the mean is
/// returned. Returns `0.0` for an empty input.
pub fn average_deviation<I>(miss_rates: I, goals: &MissRateGoal) -> f64
where
    I: IntoIterator<Item = (Asid, f64)>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for (asid, mr) in miss_rates {
        sum += deviation_from_goal(mr, goals.goal(asid));
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_is_absolute() {
        assert!((deviation_from_goal(0.3, 0.1) - 0.2).abs() < 1e-12);
        assert!((deviation_from_goal(0.05, 0.1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn average_over_apps() {
        let goals = MissRateGoal::uniform(0.1);
        let mrs = vec![(Asid::new(1), 0.2), (Asid::new(2), 0.1)];
        // Deviations 0.1 and 0.0 -> mean 0.05.
        assert!((average_deviation(mrs, &goals) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn override_changes_one_app() {
        let goals = MissRateGoal::uniform(0.1).with_override(Asid::new(3), 0.7);
        let mrs = vec![(Asid::new(1), 0.1), (Asid::new(3), 0.7)];
        assert_eq!(average_deviation(mrs, &goals), 0.0);
    }

    #[test]
    fn overshoot_ignores_over_service() {
        assert_eq!(overshoot_from_goal(0.05, 0.1), 0.0);
        assert!((overshoot_from_goal(0.3, 0.1) - 0.2).abs() < 1e-12);
        let goals = MissRateGoal::uniform(0.1);
        let mrs = vec![(Asid::new(1), 0.05), (Asid::new(2), 0.3)];
        // Only the violator counts: 0.2 / 2 apps.
        assert!((average_overshoot(mrs, &goals) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_zero() {
        let goals = MissRateGoal::uniform(0.1);
        assert_eq!(average_deviation(Vec::new(), &goals), 0.0);
    }
}
