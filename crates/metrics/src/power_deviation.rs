//! The power-deviation product (Table 5's figure of merit).

/// Power-deviation product: dynamic power (W) times average deviation
/// from the miss-rate goal. Lower is better — it rewards caches that meet
/// QoS goals *and* stay within a power budget (§4).
///
/// # Panics
///
/// Panics if either input is negative or non-finite.
pub fn power_deviation_product(power_w: f64, average_deviation: f64) -> f64 {
    assert!(
        power_w >= 0.0 && power_w.is_finite(),
        "power must be a non-negative finite number"
    );
    assert!(
        average_deviation >= 0.0 && average_deviation.is_finite(),
        "deviation must be a non-negative finite number"
    );
    power_w * average_deviation
}

/// The refined power-deviation product the paper's §5 calls for:
/// power times the *overshoot-only* average deviation (see
/// [`overshoot_from_goal`](crate::deviation::overshoot_from_goal)), so a
/// cache is not penalized for serving an application better than its
/// goal. Lower is better; `0` means every application met its goal.
///
/// # Panics
///
/// Panics on negative or non-finite inputs, like
/// [`power_deviation_product`].
pub fn refined_power_deviation_product(power_w: f64, average_overshoot: f64) -> f64 {
    power_deviation_product(power_w, average_overshoot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table5_arithmetic() {
        // Paper: 8MB 4way = 7.66 W x 0.246843 dev ~= 1.890.
        let pdp = power_deviation_product(7.66, 0.246843);
        assert!((pdp - 1.890).abs() < 0.01, "pdp {pdp}");
        // Molecular: 5.46 W x ... = 0.909 per the paper's 4-way row.
        // (We only check the multiplication identity here; the actual
        // measured values are produced by the benchmark harness.)
    }

    #[test]
    fn zero_deviation_zero_product() {
        assert_eq!(power_deviation_product(5.0, 0.0), 0.0);
    }

    #[test]
    fn refined_metric_rewards_goal_compliance() {
        // Same power; the refined metric zeroes out when goals are met.
        assert_eq!(refined_power_deviation_product(5.0, 0.0), 0.0);
        assert!(refined_power_deviation_product(5.0, 0.1) > 0.0);
    }

    #[test]
    #[should_panic(expected = "power must be")]
    fn negative_power_panics() {
        power_deviation_product(-1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "deviation must be")]
    fn nan_deviation_panics() {
        power_deviation_product(1.0, f64::NAN);
    }
}
