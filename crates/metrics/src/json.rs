//! Minimal JSON support for experiment records.
//!
//! The workspace builds without crates.io access, so instead of serde this
//! module hand-rolls the small amount of JSON the harness needs: a
//! [`Value`] tree, a recursive-descent parser, and a pretty emitter whose
//! output (2-space indent, `\n` separators) matches what the seed's
//! serde_json-produced `results/*.json` files look like.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers above 2^53 lose precision).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's field `name`, if this is an object that has it.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error produced by [`parse`]: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    offset: usize,
}

impl JsonError {
    pub(crate) fn new(msg: impl Into<String>, offset: usize) -> Self {
        JsonError {
            msg: msg.into(),
            offset,
        }
    }

    /// Byte offset in the input where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                format!("expected `{}`", char::from(b)),
                self.pos,
            ))
        }
    }

    fn expect_literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!("expected `{lit}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new("expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => {
                            return Err(JsonError::new("invalid escape", self.pos - 1));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid char boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid UTF-8", self.pos))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let u = self.hex4()?;
        // Surrogate pair handling for completeness.
        if (0xD800..0xDC00).contains(&u) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((u - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c)
                        .ok_or_else(|| JsonError::new("invalid surrogate pair", self.pos));
                }
            }
            return Err(JsonError::new("lone surrogate", self.pos));
        }
        char::from_u32(u).ok_or_else(|| JsonError::new("invalid \\u escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::new("truncated \\u escape", self.pos))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::new("invalid hex digit", self.pos))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError::new("invalid number", start))
    }
}

impl Value {
    /// Serializes the value as pretty-printed JSON (2-space indent, the
    /// same shape serde_json's pretty writer produces), such that
    /// [`parse`]`(v.to_json()?) == v` for every representable value.
    ///
    /// # Errors
    ///
    /// Returns an error if the tree contains a non-finite number (`NaN`,
    /// `±inf`) — JSON has no representation for those, and silently
    /// emitting `null` would break the round-trip guarantee.
    pub fn to_json(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write_pretty(&mut out, 0)?;
        Ok(out)
    }

    /// Serializes the value on a single line with no whitespace.
    ///
    /// # Errors
    ///
    /// Rejects non-finite numbers, like [`Value::to_json`].
    pub fn to_json_compact(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write_compact(&mut out)?;
        Ok(out)
    }

    fn number_text(n: f64) -> Result<String, JsonError> {
        if n.is_finite() {
            Ok(format_f64(n))
        } else {
            Err(JsonError::new("non-finite number is not valid JSON", 0))
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) -> Result<(), JsonError> {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&Value::number_text(*n)?),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad);
                        out.push_str("  ");
                        item.write_pretty(out, indent + 1)?;
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&pad);
                    out.push(']');
                }
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                } else {
                    out.push_str("{\n");
                    for (i, (key, val)) in fields.iter().enumerate() {
                        out.push_str(&pad);
                        out.push_str("  ");
                        escape_into(out, key);
                        out.push_str(": ");
                        val.write_pretty(out, indent + 1)?;
                        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&pad);
                    out.push('}');
                }
            }
        }
        Ok(())
    }

    fn write_compact(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&Value::number_text(*n)?),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out)?;
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    val.write_compact(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

/// Appends `s` to `out` as a quoted JSON string with required escapes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` the way serde_json does: integral values keep a
/// trailing `.0`, everything else uses the shortest round-trip form.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Value::String("a\nbA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1], Value::Number(2.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{not json").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("").is_err());
        let err = parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn escape_and_format_helpers() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\n\u{1}");
        assert_eq!(s, r#""a\"b\\c\n\u0001""#);
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(0.222), "0.222");
        assert_eq!(format_f64(1_000_000.0), "1000000.0");
    }

    #[test]
    fn to_json_pretty_shape() {
        let v = Value::Object(vec![
            ("n".into(), Value::Number(1.5)),
            (
                "a".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("e".into(), Value::Object(vec![])),
        ]);
        let expected = "{\n  \"n\": 1.5,\n  \"a\": [\n    true,\n    null\n  ],\n  \"e\": {}\n}";
        assert_eq!(v.to_json().unwrap(), expected);
        assert_eq!(
            v.to_json_compact().unwrap(),
            r#"{"n":1.5,"a":[true,null],"e":{}}"#
        );
    }

    #[test]
    fn to_json_rejects_non_finite_floats() {
        assert!(Value::Number(f64::NAN).to_json().is_err());
        assert!(Value::Number(f64::INFINITY).to_json_compact().is_err());
        let nested = Value::Object(vec![(
            "x".into(),
            Value::Array(vec![Value::Number(f64::NEG_INFINITY)]),
        )]);
        assert!(nested.to_json().is_err());
    }

    #[test]
    fn tricky_strings_round_trip() {
        for s in [
            "quote\" backslash\\ slash/ newline\n tab\t",
            "control\u{0} \u{1f} high\u{7f}",
            "unicode é 😀 \u{2028} \u{fffd}",
            "",
        ] {
            let v = Value::String(s.into());
            assert_eq!(parse(&v.to_json().unwrap()).unwrap(), v);
        }
    }

    /// Deterministically expands one `u64` seed into an arbitrary JSON
    /// value tree (depth-bounded), covering every variant plus the nasty
    /// string and number corners.
    fn arbitrary_value(seed: u64) -> Value {
        // SplitMix64: cheap, and every step decorrelates from the seed.
        struct Mix(u64);
        impl Mix {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }

        const CHARS: &[char] = &[
            'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{1f}',
            '\u{7f}', 'é', 'λ', '😀', '\u{2028}', '\u{fffd}',
        ];

        fn gen_string(rng: &mut Mix) -> String {
            let len = (rng.next() % 12) as usize;
            (0..len)
                .map(|_| CHARS[(rng.next() as usize) % CHARS.len()])
                .collect()
        }

        fn gen_number(rng: &mut Mix) -> f64 {
            match rng.next() % 4 {
                0 => rng.next() as i32 as f64,                // integral, any sign
                1 => (rng.next() % 1_000_000) as f64 / 997.0, // fractional
                2 => f64::from_bits(rng.next() % (1 << 52)),  // subnormal-ish
                _ => {
                    // Arbitrary bit pattern, rerolled until finite.
                    loop {
                        let v = f64::from_bits(rng.next());
                        if v.is_finite() {
                            return v;
                        }
                    }
                }
            }
        }

        fn gen_value(rng: &mut Mix, depth: u32) -> Value {
            let pick = if depth == 0 {
                rng.next() % 4 // leaves only
            } else {
                rng.next() % 6
            };
            match pick {
                0 => Value::Null,
                1 => Value::Bool(rng.next().is_multiple_of(2)),
                2 => Value::Number(gen_number(rng)),
                3 => Value::String(gen_string(rng)),
                4 => {
                    let len = (rng.next() % 4) as usize;
                    Value::Array((0..len).map(|_| gen_value(rng, depth - 1)).collect())
                }
                _ => {
                    let len = (rng.next() % 4) as usize;
                    Value::Object(
                        (0..len)
                            .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                            .collect(),
                    )
                }
            }
        }

        let mut rng = Mix(seed);
        gen_value(&mut rng, 4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// `parse(to_json(x)) == x` for arbitrary value trees, in both the
        /// pretty and the compact rendering.
        #[test]
        fn serializer_round_trips(seed in proptest::num::u64::ANY) {
            let v = arbitrary_value(seed);
            let pretty = v.to_json().expect("finite by construction");
            prop_assert_eq!(&parse(&pretty).unwrap(), &v);
            let compact = v.to_json_compact().expect("finite by construction");
            prop_assert_eq!(&parse(&compact).unwrap(), &v);
        }
    }
}
