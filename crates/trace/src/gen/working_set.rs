//! Working-set generator: Zipf-skewed temporal reuse over a hot set.

use crate::access::{AccessKind, MemAccess};
use crate::addr::{Address, Asid};
use crate::dist::{Sample, Zipf};
use crate::gen::TraceSource;
use crate::rng::Rng;

/// Accesses a fixed working set with Zipf-distributed line popularity and
/// geometric sequential runs.
///
/// This is the main temporal-locality archetype: a program touching a hot
/// set of `working_set_bytes` where popular lines are re-referenced far more
/// often than cold ones (`zipf_s` controls the skew), and each selected line
/// is followed by a short sequential run (`run_p` the geometric parameter —
/// `run_p = 1.0` disables runs).
///
/// Miss behaviour: with a cache (or partition) larger than the hot set the
/// miss rate collapses to near zero; smaller partitions see capacity misses
/// in proportion to the Zipf tail — exactly the lever the paper's resizing
/// algorithm responds to.
#[derive(Debug, Clone)]
pub struct WorkingSetSource {
    asid: Asid,
    base: Address,
    lines: u64,
    zipf: Zipf,
    write_frac: f64,
    run_p: f64,
    /// Remaining accesses in the current sequential run and its position.
    run_remaining: u64,
    run_line: u64,
    /// Popularity rank -> line permutation stride (cheap pseudo-shuffle).
    perm_mul: u64,
    rng: Rng,
}

/// Multiplier used for the rank→line pseudo-permutation. Any odd constant
/// is a bijection modulo a power of two; we use a golden-ratio constant for
/// good dispersion and take the result modulo `lines`.
const PERM_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

impl WorkingSetSource {
    /// Creates a working-set source.
    ///
    /// * `working_set_bytes` — total hot-set footprint (rounded down to a
    ///   whole number of 64-byte lines, minimum one line).
    /// * `zipf_s` — popularity skew (0 = uniform; 0.8–1.2 typical).
    /// * `run_p` — geometric parameter of sequential run lengths after each
    ///   jump (`1.0` = no runs; `0.25` = mean run of 4 lines).
    /// * `write_frac` — store fraction.
    ///
    /// # Panics
    ///
    /// Panics if `working_set_bytes < 64` or parameters are out of range.
    pub fn new(
        asid: Asid,
        base: Address,
        working_set_bytes: u64,
        zipf_s: f64,
        run_p: f64,
        write_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(working_set_bytes >= 64, "working set below one line");
        assert!(run_p > 0.0 && run_p <= 1.0, "run_p must be in (0,1]");
        let lines = working_set_bytes / 64;
        // Cap the Zipf table at 1M entries to bound memory; beyond that the
        // tail is indistinguishable from uniform for our purposes.
        let ranks = lines.min(1 << 20) as usize;
        WorkingSetSource {
            asid,
            base,
            lines,
            zipf: Zipf::new(ranks, zipf_s),
            write_frac: write_frac.clamp(0.0, 1.0),
            run_p,
            run_remaining: 0,
            run_line: 0,
            perm_mul: PERM_MUL,
            rng: Rng::seeded(seed),
        }
    }

    /// Number of 64-byte lines in the hot set.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Lines per block in the rank→line permutation. Hot data in real
    /// programs clusters into contiguous structures (structs, arrays,
    /// pages); permuting at 8 KB-block granularity keeps that clustering
    /// — popular ranks fill whole blocks — while still decorrelating
    /// popularity from the raw address.
    const PERM_BLOCK_LINES: u64 = 128;

    fn rank_to_line(&self, rank: u64) -> u64 {
        let bl = Self::PERM_BLOCK_LINES;
        if self.lines <= bl {
            return (rank.wrapping_mul(self.perm_mul)) % self.lines;
        }
        let nblocks = self.lines / bl;
        let block = (rank / bl).wrapping_mul(self.perm_mul) % nblocks;
        (block * bl + rank % bl) % self.lines
    }

    fn run_len(&mut self) -> u64 {
        if self.run_p >= 1.0 {
            return 1;
        }
        let u = self.rng.gen_f64();
        let v = ((1.0 - u).ln() / (1.0 - self.run_p).ln()).ceil();
        (v.max(1.0)) as u64
    }
}

impl TraceSource for WorkingSetSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.run_remaining == 0 {
            let rank = self.zipf.sample(&mut self.rng);
            self.run_line = self.rank_to_line(rank);
            self.run_remaining = self.run_len();
        }
        let line = self.run_line % self.lines;
        self.run_line = self.run_line.wrapping_add(1);
        self.run_remaining -= 1;
        let addr = self
            .base
            .byte_add(line * 64 + (self.rng.gen_range(64) & !7));
        let kind = if self.write_frac > 0.0 && self.rng.gen_bool(self.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(MemAccess::new(self.asid, addr, kind))
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stays_inside_working_set() {
        let ws = 64 * 1024u64;
        let mut s =
            WorkingSetSource::new(Asid::new(1), Address::new(1 << 30), ws, 1.0, 0.5, 0.2, 5);
        for _ in 0..10_000 {
            let a = s.next_access().unwrap().addr.raw();
            assert!(a >= (1 << 30) && a < (1 << 30) + ws);
        }
    }

    #[test]
    fn popular_lines_dominate() {
        let mut s = WorkingSetSource::new(Asid::new(1), Address::new(0), 1 << 20, 1.1, 1.0, 0.0, 6);
        let mut counts = std::collections::HashMap::new();
        const N: usize = 40_000;
        for _ in 0..N {
            let line = s.next_access().unwrap().addr.line(64).0;
            *counts.entry(line).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        // Zipf(1.1) over 16K lines: top-10 lines carry a large share.
        assert!(
            top10 as f64 / N as f64 > 0.2,
            "top10 fraction {}",
            top10 as f64 / N as f64
        );
    }

    #[test]
    fn footprint_covers_many_lines() {
        let mut s =
            WorkingSetSource::new(Asid::new(1), Address::new(0), 256 * 1024, 0.6, 0.5, 0.0, 7);
        let mut lines = HashSet::new();
        for _ in 0..60_000 {
            lines.insert(s.next_access().unwrap().addr.line(64).0);
        }
        // 4096 lines in the set; a long run should touch most of them.
        assert!(lines.len() > 2000, "only {} lines touched", lines.len());
    }

    #[test]
    fn runs_are_sequential() {
        let mut s = WorkingSetSource::new(Asid::new(1), Address::new(0), 1 << 20, 0.0, 0.2, 0.0, 8);
        let mut sequential = 0u32;
        let mut prev = s.next_access().unwrap().addr.line(64).0;
        const N: u32 = 10_000;
        for _ in 0..N {
            let cur = s.next_access().unwrap().addr.line(64).0;
            if cur == prev + 1 || cur == prev {
                sequential += 1;
            }
            prev = cur;
        }
        // Mean run length 5 → ~80 % of transitions are sequential.
        assert!(sequential > N / 2, "sequential {sequential}");
    }

    #[test]
    #[should_panic(expected = "working set below one line")]
    fn tiny_working_set_panics() {
        WorkingSetSource::new(Asid::new(1), Address::new(0), 32, 1.0, 1.0, 0.0, 1);
    }
}
