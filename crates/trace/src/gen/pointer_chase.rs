//! Pointer-chasing generator: dependent loads with near-zero locality.

use crate::access::{AccessKind, MemAccess};
use crate::addr::{Address, Asid};
use crate::gen::TraceSource;
use crate::rng::Rng;

/// Walks a pseudo-random permutation cycle over a huge footprint.
///
/// Models `mcf`-style graph/pointer codes: every load lands on an
/// effectively random line of a footprint far larger than any cache, so the
/// miss rate stays high regardless of capacity — matching the paper's
/// Table 1, where `mcf` misses ~70 % whether it runs alone or shared.
///
/// The walk is `next = (cur * MUL + INC) mod lines` with odd `MUL`, a full-
/// period affine permutation, so no line is revisited before the whole
/// footprint has been traversed (maximal reuse distance).
#[derive(Debug, Clone)]
pub struct PointerChaseSource {
    asid: Asid,
    base: Address,
    lines: u64,
    cur: u64,
    mul: u64,
    inc: u64,
    write_frac: f64,
    rng: Rng,
}

impl PointerChaseSource {
    /// Creates a pointer chase over `footprint_bytes` (≥ 64).
    ///
    /// # Panics
    ///
    /// Panics if `footprint_bytes < 64`.
    pub fn new(
        asid: Asid,
        base: Address,
        footprint_bytes: u64,
        write_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(footprint_bytes >= 64, "footprint below one line");
        let lines = footprint_bytes / 64;
        let mut rng = Rng::seeded(seed);
        // Odd multiplier => bijection modulo 2^64; reduced mod `lines` the
        // sequence is not a strict permutation unless lines is a power of
        // two, but dispersion is what matters here.
        let mul = rng.next_u64() | 1;
        let inc = rng.next_u64();
        let cur = rng.gen_range(lines);
        PointerChaseSource {
            asid,
            base,
            lines,
            cur,
            mul,
            inc,
            write_frac: write_frac.clamp(0.0, 1.0),
            rng,
        }
    }

    /// Lines in the chased footprint.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl TraceSource for PointerChaseSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        self.cur = (self.cur.wrapping_mul(self.mul).wrapping_add(self.inc)) % self.lines;
        let addr = self.base.byte_add(self.cur * 64);
        let kind = if self.write_frac > 0.0 && self.rng.gen_bool(self.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(MemAccess::new(self.asid, addr, kind))
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_footprint_broadly() {
        let mut s = PointerChaseSource::new(Asid::new(1), Address::new(0), 1 << 20, 0.0, 9);
        let mut seen = HashSet::new();
        for _ in 0..50_000 {
            seen.insert(s.next_access().unwrap().addr.line(64).0);
        }
        // 16K lines; with 50K random-ish draws nearly all should appear.
        assert!(seen.len() > 12_000, "covered {}", seen.len());
    }

    #[test]
    fn reuse_is_rare_within_short_windows() {
        let mut s = PointerChaseSource::new(Asid::new(1), Address::new(0), 256 << 20, 0.0, 10);
        let mut window = HashSet::new();
        let mut repeats = 0;
        for _ in 0..20_000 {
            let line = s.next_access().unwrap().addr.line(64).0;
            if !window.insert(line) {
                repeats += 1;
            }
        }
        // 4M lines, 20K draws: repeats should be essentially zero.
        assert!(repeats < 20, "repeats {repeats}");
    }

    #[test]
    fn stays_in_bounds() {
        let base = 1u64 << 40;
        let fp = 1 << 16;
        let mut s = PointerChaseSource::new(Asid::new(1), Address::new(base), fp, 0.3, 11);
        for _ in 0..5_000 {
            let a = s.next_access().unwrap().addr.raw();
            assert!(a >= base && a < base + fp);
        }
    }
}
