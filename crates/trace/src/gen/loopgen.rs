//! Loop generator: repeated sweeps over a fixed array.

use crate::access::{AccessKind, MemAccess};
use crate::addr::{Address, Asid};
use crate::gen::TraceSource;
use crate::rng::Rng;

/// Repeatedly sweeps an array front-to-back, optionally re-reading each
/// line several times before moving on.
///
/// Models media kernels (`cjpeg`, `epic`, `decode`): a macroblock or row
/// buffer is processed element by element, with each element touched a few
/// times. If the array fits the cache, every sweep after the first hits;
/// otherwise an LRU cache of any smaller size thrashes completely (the
/// classic cyclic-access pathology), making this the archetype where extra
/// partition capacity flips the miss rate from ~100 % to ~0 %.
#[derive(Debug, Clone)]
pub struct LoopSource {
    asid: Asid,
    base: Address,
    lines: u64,
    touches_per_line: u32,
    write_frac: f64,
    cursor: u64,
    touch: u32,
    rng: Rng,
}

impl LoopSource {
    /// Creates a loop over `array_bytes` with `touches_per_line` accesses to
    /// each 64-byte line per sweep.
    ///
    /// # Panics
    ///
    /// Panics if `array_bytes < 64` or `touches_per_line == 0`.
    pub fn new(
        asid: Asid,
        base: Address,
        array_bytes: u64,
        touches_per_line: u32,
        write_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(array_bytes >= 64, "array below one line");
        assert!(touches_per_line > 0, "touches_per_line must be positive");
        LoopSource {
            asid,
            base,
            lines: array_bytes / 64,
            touches_per_line,
            write_frac: write_frac.clamp(0.0, 1.0),
            cursor: 0,
            touch: 0,
            rng: Rng::seeded(seed),
        }
    }

    /// Lines per sweep.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl TraceSource for LoopSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        let addr = self
            .base
            .byte_add(self.cursor * 64 + (self.touch as u64 * 8) % 64);
        self.touch += 1;
        if self.touch >= self.touches_per_line {
            self.touch = 0;
            self.cursor = (self.cursor + 1) % self.lines;
        }
        let kind = if self.write_frac > 0.0 && self.rng.gen_bool(self.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(MemAccess::new(self.asid, addr, kind))
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_whole_array_then_wraps() {
        let mut s = LoopSource::new(Asid::new(1), Address::new(0), 4 * 64, 1, 0.0, 1);
        let lines: Vec<u64> = (0..8)
            .map(|_| s.next_access().unwrap().addr.line(64).0)
            .collect();
        assert_eq!(lines, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn touches_per_line_respected() {
        let mut s = LoopSource::new(Asid::new(1), Address::new(0), 2 * 64, 3, 0.0, 1);
        let lines: Vec<u64> = (0..6)
            .map(|_| s.next_access().unwrap().addr.line(64).0)
            .collect();
        assert_eq!(lines, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "touches_per_line")]
    fn zero_touches_panics() {
        LoopSource::new(Asid::new(1), Address::new(0), 64, 0, 0.0, 1);
    }
}
