//! Phase-changing generator: time-varying behaviour.

use crate::access::MemAccess;
use crate::addr::Asid;
use crate::gen::{BoxedSource, TraceSource};

/// Cycles through a list of sub-generators, each active for a fixed number
/// of accesses.
///
/// Programs move through phases (initialization, compute, output) with
/// different working sets; the paper's dynamic resizing (§3.4) exists
/// precisely to track such changes. `PhasedSource` makes phase behaviour
/// explicit so resizing experiments can verify that partitions grow and
/// shrink as phases change.
pub struct PhasedSource {
    asid: Asid,
    phases: Vec<(BoxedSource, u64)>,
    current: usize,
    remaining: u64,
    cycle: bool,
    exhausted: bool,
}

impl std::fmt::Debug for PhasedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedSource")
            .field("asid", &self.asid)
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl PhasedSource {
    /// Creates a phased source that runs each `(source, duration)` in order
    /// and then starts over (`cycle = true`) or ends (`cycle = false`).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any duration is zero, or a phase's ASID
    /// differs from `asid`.
    pub fn new(asid: Asid, phases: Vec<(BoxedSource, u64)>, cycle: bool) -> Self {
        assert!(!phases.is_empty(), "phased source needs phases");
        for (src, dur) in &phases {
            assert!(*dur > 0, "phase duration must be positive");
            assert_eq!(src.asid(), asid, "phase ASID mismatch");
        }
        let first_dur = phases[0].1;
        PhasedSource {
            asid,
            phases,
            current: 0,
            remaining: first_dur,
            cycle,
            exhausted: false,
        }
    }

    /// Index of the phase currently generating accesses.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl TraceSource for PhasedSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.exhausted {
            return None;
        }
        if self.remaining == 0 {
            if self.current + 1 < self.phases.len() {
                self.current += 1;
            } else if self.cycle {
                self.current = 0;
            } else {
                self.exhausted = true;
                return None;
            }
            self.remaining = self.phases[self.current].1;
        }
        self.remaining -= 1;
        self.phases[self.current].0.next_access()
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::gen::StrideSource;

    fn stride(asid: Asid, base: u64) -> BoxedSource {
        Box::new(StrideSource::new(
            asid,
            Address::new(base),
            1 << 16,
            64,
            0.0,
            base,
        ))
    }

    #[test]
    fn phases_alternate_in_order() {
        let asid = Asid::new(1);
        let mut p = PhasedSource::new(
            asid,
            vec![(stride(asid, 0), 3), (stride(asid, 1 << 30), 2)],
            true,
        );
        let highs: Vec<bool> = (0..10)
            .map(|_| p.next_access().unwrap().addr.raw() >= (1 << 30))
            .collect();
        assert_eq!(
            highs,
            vec![false, false, false, true, true, false, false, false, true, true]
        );
    }

    #[test]
    fn non_cycling_source_ends() {
        let asid = Asid::new(1);
        let mut p = PhasedSource::new(asid, vec![(stride(asid, 0), 4)], false);
        assert_eq!(p.collect_n(100).len(), 4);
        assert!(p.next_access().is_none());
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_panics() {
        let asid = Asid::new(1);
        let _ = PhasedSource::new(asid, vec![(stride(asid, 0), 0)], true);
    }

    #[test]
    fn current_phase_tracks() {
        let asid = Asid::new(1);
        let mut p = PhasedSource::new(
            asid,
            vec![(stride(asid, 0), 2), (stride(asid, 1 << 20), 2)],
            true,
        );
        assert_eq!(p.current_phase(), 0);
        p.next_access();
        p.next_access();
        p.next_access(); // first access of phase 1
        assert_eq!(p.current_phase(), 1);
    }
}
