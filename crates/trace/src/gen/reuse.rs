//! Reuse-profile generator: streams with a prescribed stack-distance mix.
//!
//! [`crate::stats::analyze`] measures a stream's LRU stack-distance
//! histogram; this generator is its inverse — it *produces* a stream whose
//! reuse distances follow a requested profile. Useful for constructing
//! workloads whose fully-associative-LRU miss curve is known in closed
//! form (Mattson), e.g. to place a benchmark's capacity knee exactly at a
//! partition size under study.

use crate::access::{AccessKind, MemAccess};
use crate::addr::{Address, Asid};
use crate::dist::WeightedChoice;
use crate::gen::TraceSource;
use crate::rng::Rng;

/// One band of the requested reuse profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseBand {
    /// Smallest stack distance of the band (in lines, ≥ 1).
    pub min_distance: u64,
    /// Largest stack distance of the band (inclusive).
    pub max_distance: u64,
    /// Relative weight of the band.
    pub weight: f64,
}

impl ReuseBand {
    /// Convenience constructor.
    pub fn new(min_distance: u64, max_distance: u64, weight: f64) -> Self {
        ReuseBand {
            min_distance,
            max_distance,
            weight,
        }
    }
}

/// Generates accesses whose reuse distances are drawn from a banded
/// profile, with a configurable cold-miss (first-touch) fraction.
///
/// ```
/// use molcache_trace::gen::{ReuseProfileSource, ReuseBand, TraceSource};
/// use molcache_trace::{Address, Asid};
///
/// // 80% of reuses within 64 lines, the rest within 4096.
/// let mut src = ReuseProfileSource::new(
///     Asid::new(1),
///     Address::new(0),
///     vec![ReuseBand::new(1, 64, 0.8), ReuseBand::new(65, 4096, 0.2)],
///     0.02, // 2% cold references
///     0.0,
///     7,
/// ).unwrap();
/// assert!(src.next_access().is_some());
/// ```
pub struct ReuseProfileSource {
    asid: Asid,
    base: Address,
    bands: Vec<ReuseBand>,
    choice: WeightedChoice,
    cold_fraction: f64,
    write_frac: f64,
    /// LRU stack: most recent at the back. Line numbers are frontier-
    /// allocated (0, 1, 2, ...).
    stack: Vec<u64>,
    next_new_line: u64,
    rng: Rng,
}

impl std::fmt::Debug for ReuseProfileSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReuseProfileSource")
            .field("asid", &self.asid)
            .field("bands", &self.bands.len())
            .field("cold_fraction", &self.cold_fraction)
            .field("footprint_lines", &self.next_new_line)
            .finish()
    }
}

/// Cap on the tracked LRU stack; distances beyond this degrade to the
/// deepest available entry.
const MAX_STACK: usize = 1 << 20;

impl ReuseProfileSource {
    /// Creates a reuse-profile source.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TraceError::InvalidParameter`] when `bands` is
    /// empty, a band has `min_distance == 0` or `min > max`, or
    /// `cold_fraction` is outside `(0, 1]` (some cold references are
    /// required — reuse needs a population to draw from).
    pub fn new(
        asid: Asid,
        base: Address,
        bands: Vec<ReuseBand>,
        cold_fraction: f64,
        write_frac: f64,
        seed: u64,
    ) -> Result<Self, crate::TraceError> {
        use crate::TraceError::InvalidParameter;
        if bands.is_empty() {
            return Err(InvalidParameter {
                name: "bands",
                constraint: "at least one reuse band is required",
            });
        }
        for b in &bands {
            if b.min_distance == 0 || b.min_distance > b.max_distance {
                return Err(InvalidParameter {
                    name: "bands",
                    constraint: "bands need 1 <= min_distance <= max_distance",
                });
            }
            if !(b.weight >= 0.0 && b.weight.is_finite()) {
                return Err(InvalidParameter {
                    name: "bands",
                    constraint: "band weights must be non-negative",
                });
            }
        }
        if !(cold_fraction > 0.0 && cold_fraction <= 1.0) {
            return Err(InvalidParameter {
                name: "cold_fraction",
                constraint: "must lie in (0, 1]",
            });
        }
        let weights: Vec<f64> = bands.iter().map(|b| b.weight).collect();
        Ok(ReuseProfileSource {
            asid,
            base,
            bands,
            choice: WeightedChoice::new(&weights),
            cold_fraction,
            write_frac: write_frac.clamp(0.0, 1.0),
            stack: Vec::new(),
            next_new_line: 0,
            rng: Rng::seeded(seed),
        })
    }

    /// Distinct lines touched so far.
    pub fn footprint_lines(&self) -> u64 {
        self.next_new_line
    }

    fn touch_new(&mut self) -> u64 {
        let line = self.next_new_line;
        self.next_new_line += 1;
        if self.stack.len() == MAX_STACK {
            self.stack.remove(0);
        }
        self.stack.push(line);
        line
    }

    fn touch_at_distance(&mut self, distance: u64) -> u64 {
        debug_assert!(!self.stack.is_empty());
        // Stack distance 1 = most recently used.
        let d = (distance as usize).clamp(1, self.stack.len());
        let idx = self.stack.len() - d;
        let line = self.stack.remove(idx);
        self.stack.push(line);
        line
    }
}

impl TraceSource for ReuseProfileSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        let line = if self.stack.is_empty() || self.rng.gen_bool(self.cold_fraction) {
            self.touch_new()
        } else {
            let band = self.bands[self.choice.sample_index(&mut self.rng)];
            let span = band.max_distance - band.min_distance + 1;
            let distance = band.min_distance + self.rng.gen_range(span);
            self.touch_at_distance(distance)
        };
        let kind = if self.write_frac > 0.0 && self.rng.gen_bool(self.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(MemAccess::new(
            self.asid,
            self.base.byte_add(line * 64),
            kind,
        ))
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::analyze;

    fn source(bands: Vec<ReuseBand>, cold: f64) -> ReuseProfileSource {
        ReuseProfileSource::new(Asid::new(1), Address::new(0), bands, cold, 0.0, 9).unwrap()
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let mk = |bands, cold| {
            ReuseProfileSource::new(Asid::new(1), Address::new(0), bands, cold, 0.0, 1)
        };
        assert!(mk(vec![], 0.1).is_err());
        assert!(mk(vec![ReuseBand::new(0, 4, 1.0)], 0.1).is_err());
        assert!(mk(vec![ReuseBand::new(8, 4, 1.0)], 0.1).is_err());
        assert!(mk(vec![ReuseBand::new(1, 4, 1.0)], 0.0).is_err());
        assert!(mk(vec![ReuseBand::new(1, 4, 1.0)], 0.1).is_ok());
    }

    #[test]
    fn cold_fraction_controls_footprint() {
        let mut tight = source(vec![ReuseBand::new(1, 8, 1.0)], 0.01);
        let mut loose = source(vec![ReuseBand::new(1, 8, 1.0)], 0.5);
        for _ in 0..20_000 {
            tight.next_access();
            loose.next_access();
        }
        assert!(loose.footprint_lines() > 5 * tight.footprint_lines());
    }

    #[test]
    fn generated_profile_matches_request() {
        // Request: all reuses within 32 lines. The measured histogram's
        // mass must sit in buckets < 2^6.
        let mut src = source(vec![ReuseBand::new(1, 32, 1.0)], 0.05);
        let accs = src.collect_n(30_000);
        let stats = analyze(&accs);
        let close: u64 = stats.reuse_hist[..6].iter().sum();
        let far: u64 = stats.reuse_hist[6..].iter().sum();
        assert!(
            close as f64 / (close + far).max(1) as f64 > 0.95,
            "close {close} far {far}"
        );
    }

    #[test]
    fn two_band_profile_splits_mass() {
        let mut src = source(
            vec![ReuseBand::new(1, 16, 0.5), ReuseBand::new(512, 1024, 0.5)],
            0.05,
        );
        let accs = src.collect_n(60_000);
        let stats = analyze(&accs);
        let near: u64 = stats.reuse_hist[..5].iter().sum(); // < 32
        let far: u64 = stats.reuse_hist[9..11].iter().sum(); // 512..2048
        let total: u64 = stats.reuse_hist.iter().sum();
        assert!(near as f64 / total as f64 > 0.35, "near {near}/{total}");
        assert!(far as f64 / total as f64 > 0.30, "far {far}/{total}");
    }

    #[test]
    fn knee_lands_where_requested() {
        // All reuse within 256 lines: a 512-line LRU cache hits nearly
        // everything except colds; a 64-line one misses the deep band.
        let mut src = source(vec![ReuseBand::new(128, 256, 1.0)], 0.02);
        let accs = src.collect_n(40_000);
        let stats = analyze(&accs);
        assert!(stats.hit_fraction_at(512) > 0.9);
        assert!(stats.hit_fraction_at(64) < 0.1);
    }

    #[test]
    fn debug_format_is_informative() {
        let src = source(vec![ReuseBand::new(1, 4, 1.0)], 0.1);
        let dbg = format!("{src:?}");
        assert!(dbg.contains("ReuseProfileSource"));
        assert!(dbg.contains("cold_fraction"));
    }
}
