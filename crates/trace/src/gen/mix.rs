//! Weighted mixture of sub-generators.

use crate::access::MemAccess;
use crate::addr::Asid;
use crate::dist::WeightedChoice;
use crate::gen::{BoxedSource, TraceSource};
use crate::rng::Rng;

/// Interleaves several behaviours of one application by weight.
///
/// Real programs are not a single archetype: `parser` mixes a hot
/// dictionary (working-set reuse) with streaming over input text. A
/// `MixSource` draws, per *burst*, which component generates the next run
/// of accesses. Bursts (rather than per-access switching) preserve each
/// component's short-range locality.
pub struct MixSource {
    asid: Asid,
    components: Vec<BoxedSource>,
    choice: WeightedChoice,
    burst_len: u64,
    current: usize,
    remaining: u64,
    rng: Rng,
}

impl std::fmt::Debug for MixSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixSource")
            .field("asid", &self.asid)
            .field("components", &self.components.len())
            .field("burst_len", &self.burst_len)
            .finish()
    }
}

impl MixSource {
    /// Creates a mixture.
    ///
    /// * `components` — sub-generators; each must report the same ASID.
    /// * `weights` — relative probability of each component per burst.
    /// * `burst_len` — accesses taken from a component before re-drawing.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty, lengths mismatch, `burst_len == 0`,
    /// or a component's ASID differs from `asid`.
    pub fn new(
        asid: Asid,
        components: Vec<BoxedSource>,
        weights: &[f64],
        burst_len: u64,
        seed: u64,
    ) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        assert_eq!(
            components.len(),
            weights.len(),
            "one weight per component required"
        );
        assert!(burst_len > 0, "burst_len must be positive");
        for c in &components {
            assert_eq!(c.asid(), asid, "component ASID mismatch");
        }
        MixSource {
            asid,
            components,
            choice: WeightedChoice::new(weights),
            burst_len,
            current: 0,
            remaining: 0,
            rng: Rng::seeded(seed),
        }
    }
}

impl TraceSource for MixSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.remaining == 0 {
            self.current = self.choice.sample_index(&mut self.rng);
            self.remaining = self.burst_len;
        }
        self.remaining -= 1;
        self.components[self.current].next_access()
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::gen::StrideSource;

    fn stride(asid: Asid, base: u64, seed: u64) -> BoxedSource {
        Box::new(StrideSource::new(
            asid,
            Address::new(base),
            1 << 16,
            64,
            0.0,
            seed,
        ))
    }

    #[test]
    fn draws_from_both_components() {
        let asid = Asid::new(1);
        let mut m = MixSource::new(
            asid,
            vec![stride(asid, 0, 1), stride(asid, 1 << 30, 2)],
            &[1.0, 1.0],
            8,
            3,
        );
        let mut low = 0;
        let mut high = 0;
        for _ in 0..4000 {
            let a = m.next_access().unwrap().addr.raw();
            if a < (1 << 30) {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 1000 && high > 1000, "low={low} high={high}");
    }

    #[test]
    fn bursts_keep_component_runs() {
        let asid = Asid::new(1);
        let mut m = MixSource::new(
            asid,
            vec![stride(asid, 0, 1), stride(asid, 1 << 30, 2)],
            &[1.0, 1.0],
            16,
            4,
        );
        // Count switches between address halves; with burst 16 over 1600
        // accesses there are at most 100 bursts -> at most 100 switches.
        let mut switches = 0;
        let mut prev_high = None;
        for _ in 0..1600 {
            let high = m.next_access().unwrap().addr.raw() >= (1 << 30);
            if prev_high.is_some() && prev_high != Some(high) {
                switches += 1;
            }
            prev_high = Some(high);
        }
        assert!(switches <= 100, "switches {switches}");
    }

    #[test]
    #[should_panic(expected = "ASID mismatch")]
    fn asid_mismatch_panics() {
        let _ = MixSource::new(Asid::new(1), vec![stride(Asid::new(2), 0, 1)], &[1.0], 4, 1);
    }

    #[test]
    #[should_panic(expected = "one weight per component")]
    fn weight_length_mismatch_panics() {
        let asid = Asid::new(1);
        let _ = MixSource::new(asid, vec![stride(asid, 0, 1)], &[1.0, 2.0], 4, 1);
    }
}
