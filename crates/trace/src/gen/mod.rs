//! Composable synthetic trace generators.
//!
//! Each generator models one archetypal memory-access behaviour; the
//! [`presets`](crate::presets) module composes them (via [`MixSource`] and
//! [`PhasedSource`]) into named benchmark models.
//!
//! | Generator | Behaviour modeled | Cache phenomenon exercised |
//! |---|---|---|
//! | [`StrideSource`] | sequential/strided streaming | compulsory misses, spatial locality, line-size sensitivity |
//! | [`WorkingSetSource`] | Zipf reuse over a hot set with sequential runs | temporal locality, capacity misses once the hot set exceeds the partition |
//! | [`PointerChaseSource`] | dependent loads over a huge footprint | near-zero locality (the `mcf` archetype) |
//! | [`LoopSource`] | repeated sweeps of a fixed array | perfect reuse at sufficient capacity, thrashing below it |
//! | [`ReuseProfileSource`] | prescribed stack-distance profile | placing the LRU miss-curve knee exactly |
//! | [`MixSource`] | weighted mixture of sub-behaviours | realistic composite programs |
//! | [`PhasedSource`] | time-varying behaviour | resizing dynamics (the paper's §3.4) |

mod loopgen;
mod mix;
mod phased;
mod pointer_chase;
mod reuse;
mod stride;
mod working_set;

pub use loopgen::LoopSource;
pub use mix::MixSource;
pub use phased::PhasedSource;
pub use pointer_chase::PointerChaseSource;
pub use reuse::{ReuseBand, ReuseProfileSource};
pub use stride::StrideSource;
pub use working_set::WorkingSetSource;

use crate::access::MemAccess;
use crate::addr::Asid;

/// A (possibly infinite) stream of memory accesses from one application.
///
/// All generators in this crate are infinite; finite sources (e.g. a replay
/// of a recorded trace, or [`Take`]) return `None` when exhausted.
pub trait TraceSource {
    /// Produces the next access, or `None` if the stream is exhausted.
    fn next_access(&mut self) -> Option<MemAccess>;

    /// The application this stream belongs to.
    fn asid(&self) -> Asid;

    /// Limits the stream to `n` accesses.
    fn take(self, n: u64) -> Take<Self>
    where
        Self: Sized,
    {
        Take {
            inner: self,
            remaining: n,
        }
    }

    /// Collects the next `n` accesses into a vector (stops early if the
    /// stream ends).
    fn collect_n(&mut self, n: usize) -> Vec<MemAccess> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_access() {
                Some(a) => v.push(a),
                None => break,
            }
        }
        v
    }
}

/// A boxed, heap-allocated trace source (object-safe usage).
pub type BoxedSource = Box<dyn TraceSource + Send>;

impl TraceSource for BoxedSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        (**self).next_access()
    }

    fn asid(&self) -> Asid {
        (**self).asid()
    }
}

/// Adapter limiting a source to a fixed number of accesses.
///
/// Produced by [`TraceSource::take`].
#[derive(Debug, Clone)]
pub struct Take<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> TraceSource for Take<S> {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_access()
    }

    fn asid(&self) -> Asid {
        self.inner.asid()
    }
}

/// Replays a pre-recorded access vector (useful in tests and for feeding
/// the same stream to several simulators).
#[derive(Debug, Clone)]
pub struct ReplaySource {
    accesses: std::vec::IntoIter<MemAccess>,
    asid: Asid,
}

impl ReplaySource {
    /// Creates a replay of `accesses` attributed to `asid`.
    pub fn new(asid: Asid, accesses: Vec<MemAccess>) -> Self {
        ReplaySource {
            accesses: accesses.into_iter(),
            asid,
        }
    }
}

impl TraceSource for ReplaySource {
    fn next_access(&mut self) -> Option<MemAccess> {
        self.accesses.next()
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;

    #[test]
    fn take_limits_stream() {
        let accs: Vec<MemAccess> = (0..10)
            .map(|i| MemAccess::read(Asid::new(1), Address::new(i * 64)))
            .collect();
        let mut src = ReplaySource::new(Asid::new(1), accs).take(4);
        assert_eq!(src.collect_n(100).len(), 4);
        assert!(src.next_access().is_none());
    }

    #[test]
    fn replay_preserves_order() {
        let accs = vec![
            MemAccess::read(Asid::new(2), Address::new(0)),
            MemAccess::write(Asid::new(2), Address::new(64)),
        ];
        let mut src = ReplaySource::new(Asid::new(2), accs.clone());
        assert_eq!(src.next_access(), Some(accs[0]));
        assert_eq!(src.next_access(), Some(accs[1]));
        assert_eq!(src.next_access(), None);
        assert_eq!(src.asid(), Asid::new(2));
    }

    #[test]
    fn boxed_source_dispatch() {
        let accs = vec![MemAccess::read(Asid::new(3), Address::new(0))];
        let mut boxed: BoxedSource = Box::new(ReplaySource::new(Asid::new(3), accs));
        assert_eq!(boxed.asid(), Asid::new(3));
        assert!(boxed.next_access().is_some());
        assert!(boxed.next_access().is_none());
    }
}
