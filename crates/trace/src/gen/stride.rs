//! Strided / streaming access generator.

use crate::access::{AccessKind, MemAccess};
use crate::addr::{Address, Asid};
use crate::gen::TraceSource;
use crate::rng::Rng;

/// Streams through a region with a fixed stride, wrapping at the end.
///
/// Models array scans and media-style streaming kernels: every line is
/// touched once per sweep, so reuse only exists if the whole region fits in
/// the cache. With `stride < 64` consecutive accesses share a line and the
/// stream benefits from larger line sizes (the paper's §3.2 motivation).
///
/// ```
/// use molcache_trace::{gen::{StrideSource, TraceSource}, Asid, Address};
/// let mut s = StrideSource::new(Asid::new(1), Address::new(0), 1 << 20, 64, 0.0, 7);
/// let a = s.next_access().unwrap();
/// let b = s.next_access().unwrap();
/// assert_eq!(b.addr.raw() - a.addr.raw(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct StrideSource {
    asid: Asid,
    base: Address,
    region_bytes: u64,
    stride: u64,
    write_frac: f64,
    cursor: u64,
    rng: Rng,
}

impl StrideSource {
    /// Creates a strided stream.
    ///
    /// * `base` — first byte of the region.
    /// * `region_bytes` — region length; the cursor wraps back to `base`.
    /// * `stride` — byte distance between consecutive accesses.
    /// * `write_frac` — fraction of accesses that are stores.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes == 0` or `stride == 0`.
    pub fn new(
        asid: Asid,
        base: Address,
        region_bytes: u64,
        stride: u64,
        write_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(region_bytes > 0, "region must be non-empty");
        assert!(stride > 0, "stride must be positive");
        StrideSource {
            asid,
            base,
            region_bytes,
            stride,
            write_frac: write_frac.clamp(0.0, 1.0),
            cursor: 0,
            rng: Rng::seeded(seed),
        }
    }

    /// The stream's region length in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }
}

impl TraceSource for StrideSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        let addr = self.base.byte_add(self.cursor);
        self.cursor = (self.cursor + self.stride) % self.region_bytes;
        let kind = if self.write_frac > 0.0 && self.rng.gen_bool(self.write_frac) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(MemAccess::new(self.asid, addr, kind))
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_at_region_end() {
        let mut s = StrideSource::new(Asid::new(1), Address::new(1024), 256, 64, 0.0, 1);
        let addrs: Vec<u64> = (0..6)
            .map(|_| s.next_access().unwrap().addr.raw())
            .collect();
        assert_eq!(addrs, vec![1024, 1088, 1152, 1216, 1024, 1088]);
    }

    #[test]
    fn write_fraction_honoured() {
        let mut s = StrideSource::new(Asid::new(1), Address::new(0), 1 << 20, 8, 0.5, 2);
        let n = 20_000;
        let writes = (0..n)
            .filter(|_| s.next_access().unwrap().kind.is_write())
            .count();
        let frac = writes as f64 / n as f64;
        assert!((0.47..=0.53).contains(&frac), "frac {frac}");
    }

    #[test]
    fn all_reads_when_zero_write_frac() {
        let mut s = StrideSource::new(Asid::new(1), Address::new(0), 4096, 4, 0.0, 3);
        assert!((0..100).all(|_| !s.next_access().unwrap().kind.is_write()));
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        StrideSource::new(Asid::new(1), Address::new(0), 4096, 0, 0.0, 1);
    }

    #[test]
    fn sub_line_stride_shares_lines() {
        let mut s = StrideSource::new(Asid::new(1), Address::new(0), 4096, 16, 0.0, 1);
        let a = s.next_access().unwrap().addr;
        let b = s.next_access().unwrap().addr;
        assert_eq!(a.line(64), b.line(64));
    }
}
