//! # molcache-trace — synthetic memory-reference streams
//!
//! This crate is the workload substrate of the Molecular Caches (MICRO 2006)
//! reproduction. The paper drives its cache simulators with L1-D miss traces
//! of SPEC / NetBench / MediaBench programs collected on the SESC CMP
//! simulator. Those traces (and SESC itself) are not available here, so this
//! crate provides deterministic *synthetic* address-stream generators whose
//! knobs — working-set size, reuse-distance distribution, stride structure,
//! phase behaviour — control exactly the properties the paper's experiments
//! measure (capacity misses, conflict misses, inter-application
//! interference, resizing dynamics).
//!
//! The crate offers:
//!
//! * [`Address`], [`Asid`] and [`MemAccess`] — the vocabulary types shared by
//!   every simulator in the workspace.
//! * [`rng`] — a small deterministic PRNG (SplitMix64 / xoshiro256**) so
//!   every experiment is bit-exactly reproducible across platforms.
//! * [`dist`] — sampling distributions (uniform, Zipf, geometric, weighted).
//! * [`gen`] — composable trace generators (strided streams, working-set
//!   reuse, pointer chasing, loops, mixtures, phases).
//! * [`presets`] — named benchmark models (`art`, `mcf`, `ammp`, `parser`,
//!   the 12-program mixed workload, …) calibrated to the qualitative miss
//!   behaviour reported in the paper.
//! * [`interleave`] — merging per-application streams into a CMP-visible
//!   stream (round-robin or time-quantum interleaving).
//! * [`stats`] — footprint and reuse-distance analysis of streams.
//!
//! ## Example
//!
//! ```
//! use molcache_trace::{presets::Benchmark, gen::TraceSource, Asid};
//!
//! let mut src = Benchmark::Art.source(Asid::new(1), 42);
//! let first = src.next_access().expect("infinite stream");
//! assert_eq!(first.asid, Asid::new(1));
//! ```

pub mod access;
pub mod addr;
pub mod annotate;
pub mod din;
pub mod dist;
pub mod error;
pub mod gen;
pub mod interleave;
pub mod presets;
pub mod rng;
pub mod stats;
pub mod tenants;

pub use access::{AccessKind, MemAccess};
pub use addr::{Address, Asid, LineAddr};
pub use error::TraceError;
pub use gen::TraceSource;
