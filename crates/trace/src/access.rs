//! Memory accesses — the unit of work consumed by every cache simulator.

use crate::addr::{Address, Asid};
use std::fmt;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// A single memory reference issued by an application.
///
/// `MemAccess` is deliberately a plain, public-field struct ("C-spirit"
/// passive data): generators produce them in bulk and simulators consume
/// them in bulk.
///
/// ```
/// use molcache_trace::{MemAccess, AccessKind, Address, Asid};
/// let acc = MemAccess::read(Asid::new(1), Address::new(0x100));
/// assert_eq!(acc.kind, AccessKind::Read);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// The application issuing the reference.
    pub asid: Asid,
    /// Byte address referenced.
    pub addr: Address,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Creates a read access.
    pub const fn read(asid: Asid, addr: Address) -> Self {
        MemAccess {
            asid,
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub const fn write(asid: Asid, addr: Address) -> Self {
        MemAccess {
            asid,
            addr,
            kind: AccessKind::Write,
        }
    }

    /// Creates an access of the given kind.
    pub const fn new(asid: Asid, addr: Address, kind: AccessKind) -> Self {
        MemAccess { asid, addr, kind }
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.asid, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemAccess::read(Asid::new(1), Address::new(8));
        let w = MemAccess::write(Asid::new(1), Address::new(8));
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(w.kind, AccessKind::Write);
        assert!(!r.kind.is_write());
        assert!(w.kind.is_write());
    }

    #[test]
    fn display_is_compact() {
        let acc = MemAccess::write(Asid::new(2), Address::new(0x40));
        assert_eq!(acc.to_string(), "asid:2 W 0x40");
    }
}
