//! Physical addresses and application-space identifiers.
//!
//! Every simulator in the workspace speaks in terms of [`Address`] (a byte
//! address in a flat physical address space) and [`Asid`] (the
//! Application Space Identifier the paper configures into each molecule to
//! bind it to a cache region).

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// `Address` is a transparent `u64` newtype so that cache-geometry
/// arithmetic (line offsets, set indices, tags) is explicit and cannot be
/// confused with counters or sizes.
///
/// ```
/// use molcache_trace::Address;
/// let a = Address::new(0x1234);
/// assert_eq!(a.line(64).0, 0x1234 / 64);
/// assert_eq!(a.align_down(64), Address::new(0x1200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line number for a given line size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_size` is not a power of two.
    pub fn line(self, line_size: u64) -> LineAddr {
        debug_assert!(line_size.is_power_of_two(), "line size must be 2^k");
        LineAddr(self.0 / line_size)
    }

    /// Rounds the address down to a multiple of `align` (a power of two).
    pub fn align_down(self, align: u64) -> Address {
        debug_assert!(align.is_power_of_two());
        Address(self.0 & !(align - 1))
    }

    /// Byte offset inside an aligned block of `align` bytes.
    pub fn offset_in(self, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1)
    }

    /// Returns the address advanced by `bytes` (wrapping).
    pub fn byte_add(self, bytes: u64) -> Address {
        Address(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

/// A cache-line number (an [`Address`] divided by the line size).
///
/// The molecular cache's *Randy* replacement view maps line addresses to
/// replacement rows; keeping line numbers as their own type prevents
/// accidentally mixing byte addresses into that arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Reconstructs the first byte address of the line.
    pub fn base(self, line_size: u64) -> Address {
        Address(self.0 * line_size)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// Application Space Identifier.
///
/// The paper binds each molecule to at most one application by configuring
/// the molecule with the application's ASID; an extra address-decode stage
/// compares the requestor's ASID against it. We reserve `Asid(0)` for "no
/// application / unconfigured" via [`Asid::NONE`].
///
/// ```
/// use molcache_trace::Asid;
/// let a = Asid::new(3);
/// assert!(a.is_some());
/// assert!(!Asid::NONE.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(pub u16);

impl Asid {
    /// The "unconfigured" ASID: molecules carrying it belong to no region.
    pub const NONE: Asid = Asid(0);

    /// Creates an ASID. `new(0)` is equivalent to [`Asid::NONE`].
    pub const fn new(raw: u16) -> Self {
        Asid(raw)
    }

    /// Returns `true` when the ASID identifies a real application.
    pub const fn is_some(self) -> bool {
        self.0 != 0
    }

    /// Raw identifier value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "asid:{}", self.0)
        } else {
            write!(f, "asid:none")
        }
    }
}

impl From<u16> for Asid {
    fn from(raw: u16) -> Self {
        Asid(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_line_math() {
        let a = Address::new(0x1fff);
        assert_eq!(a.line(64), LineAddr(0x1fff / 64));
        assert_eq!(a.align_down(64), Address::new(0x1fc0));
        assert_eq!(a.offset_in(64), 0x3f);
    }

    #[test]
    fn line_base_roundtrip() {
        let a = Address::new(4096 + 65);
        let l = a.line(64);
        assert_eq!(l.base(64), Address::new(4096 + 64));
    }

    #[test]
    fn address_add_wraps() {
        let a = Address::new(u64::MAX);
        assert_eq!(a.byte_add(1), Address::new(0));
    }

    #[test]
    fn asid_none_semantics() {
        assert_eq!(Asid::new(0), Asid::NONE);
        assert!(!Asid::NONE.is_some());
        assert!(Asid::new(7).is_some());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0x40).to_string(), "0x40");
        assert_eq!(Asid::new(2).to_string(), "asid:2");
        assert_eq!(Asid::NONE.to_string(), "asid:none");
        assert_eq!(format!("{:x}", Address::new(255)), "ff");
    }

    #[test]
    fn conversions() {
        let a: Address = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
        let s: Asid = 3u16.into();
        assert_eq!(s.raw(), 3);
    }
}
