//! Error types for trace construction.

use std::error::Error;
use std::fmt;

/// Errors produced when building trace generators or workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A generator parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A workload was constructed with no applications.
    EmptyWorkload,
    /// Two applications in one workload were given the same ASID.
    DuplicateAsid(crate::Asid),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            TraceError::EmptyWorkload => f.write_str("workload contains no applications"),
            TraceError::DuplicateAsid(asid) => {
                write!(f, "duplicate {asid} in workload")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asid;

    #[test]
    fn display_messages() {
        let e = TraceError::InvalidParameter {
            name: "working_set",
            constraint: "must be non-zero",
        };
        assert_eq!(
            e.to_string(),
            "invalid parameter `working_set`: must be non-zero"
        );
        assert_eq!(
            TraceError::DuplicateAsid(Asid::new(3)).to_string(),
            "duplicate asid:3 in workload"
        );
        assert!(!TraceError::EmptyWorkload.to_string().is_empty());
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<TraceError>();
    }
}
