//! Phase annotations carried alongside a trace: declared
//! working-set-size markers a proactive resize policy (Com-CAS-style,
//! see PAPERS.md) consumes instead of miss-rate feedback.
//!
//! A [`PhaseHint`] says "from access `at_access` on, application `asid`
//! touches about `working_set_bytes` of data". Hints ride next to the
//! access stream, not inside it — [`MemAccess`] stays a plain 3-field
//! struct the simulators consume in bulk — and a [`PhaseScript`] merges
//! them back in replay order. [`footprint_hints`] derives oracle hints
//! from a trace's observed per-application footprints, which is what the
//! tournament bench feeds the `proactive-hint` policy.

use crate::access::MemAccess;
use crate::addr::Asid;
use std::collections::BTreeMap;

/// One declared working-set phase marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseHint {
    /// Application the declaration is about.
    pub asid: Asid,
    /// Position in the access stream (0 = before the first access) from
    /// which the declaration holds.
    pub at_access: u64,
    /// Declared working-set size in bytes.
    pub working_set_bytes: u64,
}

/// An ordered script of phase markers, replayed against an access
/// counter: call [`pop_due`](Self::pop_due) with the number of accesses
/// issued so far and deliver every hint it yields (e.g. via
/// `MolecularCache::note_phase_hint`) before issuing the next access.
#[derive(Debug, Clone, Default)]
pub struct PhaseScript {
    hints: Vec<PhaseHint>,
    cursor: usize,
}

impl PhaseScript {
    /// Builds a script; hints are sorted by position (stable for equal
    /// positions, so same-position hints replay in insertion order).
    pub fn new(mut hints: Vec<PhaseHint>) -> Self {
        hints.sort_by_key(|h| h.at_access);
        PhaseScript { hints, cursor: 0 }
    }

    /// Next hint whose position has been reached, if any. Call until
    /// `None` at each step — multiple hints can share a position.
    pub fn pop_due(&mut self, accesses_issued: u64) -> Option<PhaseHint> {
        let hint = *self.hints.get(self.cursor)?;
        if hint.at_access <= accesses_issued {
            self.cursor += 1;
            Some(hint)
        } else {
            None
        }
    }

    /// Hints not yet replayed.
    pub fn remaining(&self) -> usize {
        self.hints.len() - self.cursor
    }

    /// All hints, in replay order.
    pub fn hints(&self) -> &[PhaseHint] {
        &self.hints
    }
}

/// Derives one oracle hint per application from a finished trace: the
/// application's true line footprint (distinct `line_size`-aligned
/// blocks touched), declared at position 0. This is the "compiler knows
/// the working set" upper bound the proactive policy is scored with.
pub fn footprint_hints(accesses: &[MemAccess], line_size: u64) -> Vec<PhaseHint> {
    let line = line_size.max(1);
    let mut lines: BTreeMap<Asid, std::collections::BTreeSet<u64>> = BTreeMap::new();
    for a in accesses {
        lines.entry(a.asid).or_default().insert(a.addr.raw() / line);
    }
    lines
        .into_iter()
        .map(|(asid, set)| PhaseHint {
            asid,
            at_access: 0,
            working_set_bytes: set.len() as u64 * line,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;

    #[test]
    fn footprint_counts_distinct_lines_per_app() {
        let a1 = Asid::new(1);
        let a2 = Asid::new(2);
        let trace = vec![
            MemAccess::read(a1, Address::new(0)),
            MemAccess::read(a1, Address::new(63)), // same 64B line
            MemAccess::read(a1, Address::new(64)),
            MemAccess::write(a2, Address::new(4096)),
        ];
        let hints = footprint_hints(&trace, 64);
        assert_eq!(hints.len(), 2);
        assert_eq!(hints[0].asid, a1);
        assert_eq!(hints[0].working_set_bytes, 2 * 64);
        assert_eq!(hints[1].asid, a2);
        assert_eq!(hints[1].working_set_bytes, 64);
        assert!(hints.iter().all(|h| h.at_access == 0));
    }

    #[test]
    fn script_replays_in_position_order() {
        let mut script = PhaseScript::new(vec![
            PhaseHint {
                asid: Asid::new(2),
                at_access: 100,
                working_set_bytes: 1 << 20,
            },
            PhaseHint {
                asid: Asid::new(1),
                at_access: 0,
                working_set_bytes: 1 << 16,
            },
        ]);
        assert_eq!(script.remaining(), 2);
        let first = script.pop_due(0).unwrap();
        assert_eq!(first.asid, Asid::new(1));
        assert!(script.pop_due(0).is_none());
        assert!(script.pop_due(99).is_none());
        let second = script.pop_due(100).unwrap();
        assert_eq!(second.asid, Asid::new(2));
        assert_eq!(script.remaining(), 0);
        assert!(script.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn same_position_hints_all_fire() {
        let mk = |asid: u16| PhaseHint {
            asid: Asid::new(asid),
            at_access: 5,
            working_set_bytes: 100,
        };
        let mut script = PhaseScript::new(vec![mk(1), mk(2), mk(3)]);
        assert!(script.pop_due(4).is_none());
        let mut seen = vec![];
        while let Some(h) = script.pop_due(5) {
            seen.push(h.asid.raw());
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
