//! Multi-tenant trace synthesis for the serving layer.
//!
//! `molserve` replays N tenants concurrently; each tenant needs its own
//! deterministic access stream with a distinct ASID and a benchmark
//! personality. This module materializes those streams from the
//! calibrated [`presets`](crate::presets) models — tenant `i` runs
//! benchmark `ALL[i mod 15]` under ASID `i + 1` with a decorrelated
//! seed — plus a deterministic round-robin interleaving of any stream
//! group, used where a single serialized sequence of the same traffic
//! is needed (single-threaded verification replays).

use crate::access::MemAccess;
use crate::addr::Asid;
use crate::presets::Benchmark;

/// One tenant's identity and replayable traffic.
#[derive(Debug, Clone)]
pub struct TenantTrace {
    /// The tenant's address-space ID (unique per tenant).
    pub asid: Asid,
    /// The benchmark personality the stream was drawn from.
    pub benchmark: Benchmark,
    /// The tenant's accesses, in program order.
    pub accesses: Vec<MemAccess>,
}

/// Synthesizes `tenants` independent streams of `refs_per_tenant`
/// accesses each. Deterministic given `(tenants, refs_per_tenant,
/// seed)`; tenant seeds are decorrelated the same way
/// [`presets::workload`](crate::presets::workload) decorrelates its
/// list (`seed + i * 0x9E37`).
pub fn tenant_traces(tenants: usize, refs_per_tenant: u64, seed: u64) -> Vec<TenantTrace> {
    (0..tenants)
        .map(|i| {
            let asid = Asid::new(i as u16 + 1);
            let benchmark = Benchmark::ALL[i % Benchmark::ALL.len()];
            let mut src = benchmark.source(asid, seed.wrapping_add(i as u64 * 0x9E37));
            TenantTrace {
                asid,
                benchmark,
                accesses: src.collect_n(refs_per_tenant as usize),
            }
        })
        .collect()
}

/// Interleaves tenant streams round-robin in chunks of `chunk`
/// accesses: t0[0..c], t1[0..c], ..., t0[c..2c], ... Streams of unequal
/// length keep contributing until each runs dry. `chunk` of 0 is
/// treated as 1. The result is the serialized order a single-threaded
/// replay of the same tenants services, so it is what multi-threaded
/// per-tenant statistics are verified against.
pub fn interleave_chunked(traces: &[TenantTrace], chunk: usize) -> Vec<MemAccess> {
    let chunk = chunk.max(1);
    let total: usize = traces.iter().map(|t| t.accesses.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; traces.len()];
    while out.len() < total {
        for (t, cursor) in traces.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + chunk).min(t.accesses.len());
            out.extend_from_slice(&t.accesses[*cursor..end]);
            *cursor = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_disjoint() {
        let a = tenant_traces(4, 1_000, 42);
        let b = tenant_traces(4, 1_000, 42);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.asid, y.asid);
            assert_eq!(x.accesses, y.accesses);
            assert_eq!(x.accesses.len(), 1_000);
            assert!(x.accesses.iter().all(|acc| acc.asid == x.asid));
        }
        // ASIDs are 1..=n, address spaces disjoint by construction.
        let asids: Vec<u16> = a.iter().map(|t| t.asid.raw()).collect();
        assert_eq!(asids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn more_tenants_than_benchmarks_wraps_personalities() {
        let traces = tenant_traces(17, 10, 7);
        assert_eq!(traces[0].benchmark, traces[15].benchmark);
        assert_ne!(traces[0].asid, traces[15].asid);
        // Same personality, different ASID/seed: different addresses.
        assert_ne!(traces[0].accesses, traces[15].accesses);
    }

    #[test]
    fn chunked_interleave_covers_everything_in_order() {
        let traces = tenant_traces(3, 100, 9);
        let merged = interleave_chunked(&traces, 32);
        assert_eq!(merged.len(), 300);
        // Per-tenant subsequence order is preserved.
        for t in &traces {
            let mine: Vec<&MemAccess> = merged.iter().filter(|a| a.asid == t.asid).collect();
            assert_eq!(mine.len(), t.accesses.len());
            for (got, want) in mine.iter().zip(&t.accesses) {
                assert_eq!(**got, *want);
            }
        }
        // First chunk comes wholly from tenant 1.
        assert!(merged[..32].iter().all(|a| a.asid == Asid::new(1)));
        assert!(merged[32..64].iter().all(|a| a.asid == Asid::new(2)));
    }

    #[test]
    fn chunk_zero_behaves_as_one() {
        let traces = tenant_traces(2, 5, 1);
        let a = interleave_chunked(&traces, 0);
        let b = interleave_chunked(&traces, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }
}
