//! Dinero ("din") trace format support.
//!
//! The paper feeds L1-D miss traces to "a modified version of Dinero".
//! Dinero's classic input format is one reference per line:
//!
//! ```text
//! <label> <hex-address>
//! ```
//!
//! with label `0` = data read, `1` = data write, `2` = instruction fetch.
//! This module writes and reads that format so recorded traces (real or
//! synthetic) can round-trip through the same files Dinero-era tooling
//! used. Instruction fetches are mapped to reads on input (the simulators
//! here model unified lines).

use crate::access::{AccessKind, MemAccess};
use crate::addr::{Address, Asid};
use crate::gen::TraceSource;
use std::io::{self, BufRead, Write};

/// Writes accesses in din format (`label hex-address` per line).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_din<'a, I, W>(accesses: I, mut writer: W) -> io::Result<()>
where
    I: IntoIterator<Item = &'a MemAccess>,
    W: Write,
{
    for acc in accesses {
        let label = match acc.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        };
        writeln!(writer, "{label} {:x}", acc.addr.raw())?;
    }
    Ok(())
}

/// Errors from parsing a din trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum DinError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not match `<label> <hex-address>`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl std::fmt::Display for DinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DinError::Io(e) => write!(f, "din i/o error: {e}"),
            DinError::Malformed { line, text } => {
                write!(f, "malformed din record at line {line}: `{text}`")
            }
        }
    }
}

impl std::error::Error for DinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DinError::Io(e) => Some(e),
            DinError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for DinError {
    fn from(e: io::Error) -> Self {
        DinError::Io(e)
    }
}

/// Parses a whole din trace into memory, attributing every reference to
/// `asid`.
///
/// ```
/// use molcache_trace::din::read_din;
/// use molcache_trace::Asid;
///
/// let accs = read_din(std::io::Cursor::new("0 1000\n1 2000\n"), Asid::new(1))?;
/// assert_eq!(accs.len(), 2);
/// assert!(accs[1].kind.is_write());
/// # Ok::<(), molcache_trace::din::DinError>(())
/// ```
///
/// # Errors
///
/// Returns [`DinError::Malformed`] on the first unparsable line (blank
/// lines and `#` comments are skipped) and [`DinError::Io`] on read
/// failures.
pub fn read_din<R: BufRead>(reader: R, asid: Asid) -> Result<Vec<MemAccess>, DinError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (label, addr) = match (parts.next(), parts.next()) {
            (Some(l), Some(a)) => (l, a),
            _ => {
                return Err(DinError::Malformed {
                    line: idx + 1,
                    text: trimmed.to_string(),
                })
            }
        };
        let kind = match label {
            "0" | "2" => AccessKind::Read,
            "1" => AccessKind::Write,
            _ => {
                return Err(DinError::Malformed {
                    line: idx + 1,
                    text: trimmed.to_string(),
                })
            }
        };
        let addr = u64::from_str_radix(addr.trim_start_matches("0x"), 16).map_err(|_| {
            DinError::Malformed {
                line: idx + 1,
                text: trimmed.to_string(),
            }
        })?;
        out.push(MemAccess::new(asid, Address::new(addr), kind));
    }
    Ok(out)
}

/// A [`TraceSource`] that streams a din trace lazily from any reader.
pub struct DinSource<R> {
    reader: R,
    asid: Asid,
    line: usize,
    /// First parse error encountered (the stream ends at it; inspect via
    /// [`DinSource::error`]).
    error: Option<DinError>,
}

impl<R: BufRead> DinSource<R> {
    /// Creates a streaming din source attributed to `asid`.
    pub fn new(reader: R, asid: Asid) -> Self {
        DinSource {
            reader,
            asid,
            line: 0,
            error: None,
        }
    }

    /// The parse error that terminated the stream, if any.
    pub fn error(&self) -> Option<&DinError> {
        self.error.as_ref()
    }
}

impl<R: BufRead> TraceSource for DinSource<R> {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.error.is_some() {
            return None;
        }
        let mut buf = String::new();
        loop {
            buf.clear();
            match self.reader.read_line(&mut buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.error = Some(DinError::Io(e));
                    return None;
                }
            }
            self.line += 1;
            let trimmed = buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match read_din(io::Cursor::new(trimmed), self.asid) {
                Ok(accs) if accs.len() == 1 => return Some(accs[0]),
                Ok(_) => continue,
                Err(DinError::Malformed { text, .. }) => {
                    self.error = Some(DinError::Malformed {
                        line: self.line,
                        text,
                    });
                    return None;
                }
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }

    fn asid(&self) -> Asid {
        self.asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Benchmark;

    #[test]
    fn roundtrip_preserves_accesses() {
        let mut src = Benchmark::Ammp.source(Asid::new(3), 21);
        let original = src.collect_n(500);
        let mut bytes = Vec::new();
        write_din(&original, &mut bytes).unwrap();
        let parsed = read_din(io::Cursor::new(&bytes), Asid::new(3)).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn labels_map_to_kinds() {
        let text = "0 1000\n1 2000\n2 3000\n";
        let accs = read_din(io::Cursor::new(text), Asid::new(1)).unwrap();
        assert_eq!(accs.len(), 3);
        assert_eq!(accs[0].kind, AccessKind::Read);
        assert_eq!(accs[1].kind, AccessKind::Write);
        assert_eq!(accs[2].kind, AccessKind::Read, "ifetch maps to read");
        assert_eq!(accs[0].addr, Address::new(0x1000));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a comment\n\n0 40\n";
        let accs = read_din(io::Cursor::new(text), Asid::new(1)).unwrap();
        assert_eq!(accs.len(), 1);
    }

    #[test]
    fn hex_prefix_accepted() {
        let accs = read_din(io::Cursor::new("1 0xdeadbeef\n"), Asid::new(1)).unwrap();
        assert_eq!(accs[0].addr, Address::new(0xdead_beef));
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let err = read_din(io::Cursor::new("0 40\n7 80\n"), Asid::new(1)).unwrap_err();
        match err {
            DinError::Malformed { line, text } => {
                assert_eq!(line, 2);
                assert_eq!(text, "7 80");
            }
            other => panic!("expected malformed, got {other}"),
        }
        assert!(read_din(io::Cursor::new("0\n"), Asid::new(1)).is_err());
        assert!(read_din(io::Cursor::new("0 zz\n"), Asid::new(1)).is_err());
    }

    #[test]
    fn streaming_source_yields_and_stops_on_error() {
        let text = "0 40\n1 80\nbogus line\n0 c0\n";
        let mut src = DinSource::new(io::Cursor::new(text), Asid::new(2));
        assert_eq!(src.next_access().unwrap().addr, Address::new(0x40));
        assert_eq!(src.next_access().unwrap().addr, Address::new(0x80));
        assert!(src.next_access().is_none(), "stops at the bad line");
        assert!(src.error().is_some());
        assert_eq!(src.asid(), Asid::new(2));
    }

    #[test]
    fn streamed_equals_batch() {
        let mut gen = Benchmark::Parser.source(Asid::new(1), 5);
        let original = gen.collect_n(200);
        let mut bytes = Vec::new();
        write_din(&original, &mut bytes).unwrap();
        let mut src = DinSource::new(io::Cursor::new(&bytes), Asid::new(1));
        let streamed = src.collect_n(500);
        assert_eq!(streamed, original);
    }
}
