//! Sampling distributions used by the workload generators.
//!
//! The synthetic benchmarks model temporal locality with Zipf-distributed
//! reuse over a hot set, spatial locality with geometric run lengths, and
//! generator mixing with weighted choice. All distributions draw from the
//! crate’s deterministic [`crate::rng::Rng`].

use crate::rng::Rng;

/// A distribution over `u64` values that can be sampled with an [`Rng`].
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> u64;
}

/// Uniform distribution over `[0, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformU64 {
    n: u64,
}

impl UniformU64 {
    /// Creates a uniform distribution over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "uniform range must be non-empty");
        UniformU64 { n }
    }
}

impl Sample for UniformU64 {
    fn sample(&self, rng: &mut Rng) -> u64 {
        rng.gen_range(self.n)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank `k` (0-based) has probability proportional to `1/(k+1)^s`. Sampling
/// uses a precomputed CDF and binary search — O(log n) per draw, exact.
///
/// ```
/// use molcache_trace::{dist::{Zipf, Sample}, rng::Rng};
/// let z = Zipf::new(100, 1.0);
/// let mut rng = Rng::seeded(1);
/// let v = z.sample(&mut rng);
/// assert!(v < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0; kept for clippy convention
    }
}

impl Sample for Zipf {
    fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        // partition_point returns the first index with cdf > u.
        let idx = self.cdf.partition_point(|&c| c <= u);
        idx.min(self.cdf.len() - 1) as u64
    }
}

/// Geometric distribution over `{1, 2, ...}` with success probability `p`:
/// the number of trials up to and including the first success. Used for
/// run lengths (e.g. how many sequential lines a streaming phase touches).
#[derive(Debug, Clone, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with `0 < p <= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1]");
        Geometric { p }
    }

    /// Mean of the distribution (`1/p`).
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }
}

impl Sample for Geometric {
    fn sample(&self, rng: &mut Rng) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inverse-CDF: ceil(ln(1-u) / ln(1-p)).
        let u = rng.gen_f64();
        let v = ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil();
        (v.max(1.0)) as u64
    }
}

/// Weighted choice over `n` alternatives.
///
/// ```
/// use molcache_trace::{dist::WeightedChoice, rng::Rng};
/// let w = WeightedChoice::new(&[1.0, 0.0, 3.0]);
/// let mut rng = Rng::seeded(2);
/// assert_ne!(w.sample_index(&mut rng), 1); // zero-weight item never drawn
/// ```
#[derive(Debug, Clone)]
pub struct WeightedChoice {
    cdf: Vec<f64>,
}

impl WeightedChoice {
    /// Creates a weighted choice from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/NaN value, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weighted choice needs alternatives");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be >= 0");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for v in &mut cdf {
            *v /= acc;
        }
        WeightedChoice { cdf }
    }

    /// Draws an index in `[0, n)` with probability proportional to weight.
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        let idx = self.cdf.partition_point(|&c| c <= u);
        idx.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = Rng::seeded(4);
        let mut low = 0usize;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Top-10 of Zipf(1.0, 1000) holds ~39% of mass; uniform would be 1%.
        assert!(low as f64 / N as f64 > 0.3, "low fraction {low}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = Rng::seeded(4);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..=11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = Rng::seeded(4);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let g = Geometric::new(0.25);
        let mut rng = Rng::seeded(4);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| g.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_always_one() {
        let g = Geometric::new(1.0);
        let mut rng = Rng::seeded(4);
        for _ in 0..20 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let w = WeightedChoice::new(&[1.0, 3.0]);
        let mut rng = Rng::seeded(4);
        let n = 40_000;
        let ones = (0..n).filter(|_| w.sample_index(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((0.72..=0.78).contains(&frac), "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "alternatives")]
    fn weighted_choice_empty_panics() {
        WeightedChoice::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_zero_panics() {
        UniformU64::new(0);
    }

    #[test]
    fn uniform_in_range() {
        let u = UniformU64::new(17);
        let mut rng = Rng::seeded(4);
        for _ in 0..500 {
            assert!(u.sample(&mut rng) < 17);
        }
    }
}
