//! Stream analysis: footprints and reuse distances.
//!
//! Used to validate that synthetic benchmarks have the locality structure
//! they claim (tests, EXPERIMENTS.md) and available to downstream users
//! for characterizing their own traces.

use crate::access::MemAccess;
use std::collections::HashMap;

/// Summary statistics of an access stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Total accesses analyzed.
    pub accesses: u64,
    /// Stores among them.
    pub writes: u64,
    /// Distinct 64-byte lines touched.
    pub footprint_lines: u64,
    /// Histogram of LRU stack distances (bucketed by powers of two);
    /// `reuse_hist[k]` counts reuses with stack distance in
    /// `[2^k, 2^(k+1))`. Cold (first-touch) references are not counted.
    pub reuse_hist: Vec<u64>,
    /// First-touch (cold) references.
    pub cold: u64,
}

impl StreamStats {
    /// Footprint in bytes (`footprint_lines * 64`).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_lines * 64
    }

    /// Fraction of non-cold references with stack distance < `lines`.
    ///
    /// This approximates the hit rate of a fully-associative LRU cache of
    /// that many lines (Mattson's stack algorithm).
    pub fn hit_fraction_at(&self, lines: u64) -> f64 {
        let reuses: u64 = self.reuse_hist.iter().sum();
        if reuses + self.cold == 0 {
            return 0.0;
        }
        let mut within = 0u64;
        for (k, &count) in self.reuse_hist.iter().enumerate() {
            if (1u64 << k) < lines {
                within += count;
            }
        }
        within as f64 / (reuses + self.cold) as f64
    }
}

/// Computes [`StreamStats`] over an access sequence using an exact LRU
/// stack (O(n · footprint) worst case; intended for analysis, not the
/// simulation fast path).
pub fn analyze<'a, I>(accesses: I) -> StreamStats
where
    I: IntoIterator<Item = &'a MemAccess>,
{
    // LRU stack of line numbers, most recent at the back.
    let mut stack: Vec<u64> = Vec::new();
    let mut pos: HashMap<u64, usize> = HashMap::new();
    let mut stats = StreamStats {
        accesses: 0,
        writes: 0,
        footprint_lines: 0,
        reuse_hist: vec![0; 40],
        cold: 0,
    };
    for acc in accesses {
        stats.accesses += 1;
        if acc.kind.is_write() {
            stats.writes += 1;
        }
        let line = acc.addr.line(64).0;
        match pos.get(&line).copied() {
            Some(idx) => {
                let depth = stack.len() - 1 - idx;
                let bucket = (64 - (depth.max(1) as u64).leading_zeros() - 1) as usize;
                let bucket = bucket.min(stats.reuse_hist.len() - 1);
                stats.reuse_hist[bucket] += 1;
                // Move to top: remove and push (indices after idx shift).
                stack.remove(idx);
                for p in pos.values_mut() {
                    if *p > idx {
                        *p -= 1;
                    }
                }
                pos.insert(line, stack.len());
                stack.push(line);
            }
            None => {
                stats.cold += 1;
                stats.footprint_lines += 1;
                pos.insert(line, stack.len());
                stack.push(line);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, Asid};

    fn acc(line: u64) -> MemAccess {
        MemAccess::read(Asid::new(1), Address::new(line * 64))
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let accs = vec![acc(0), acc(1), acc(0), acc(2), acc(1)];
        let s = analyze(&accs);
        assert_eq!(s.footprint_lines, 3);
        assert_eq!(s.cold, 3);
        assert_eq!(s.accesses, 5);
    }

    #[test]
    fn reuse_distances_bucketized() {
        // Pattern 0,1,0: reuse of 0 at stack distance 1 -> bucket 0.
        let accs = vec![acc(0), acc(1), acc(0)];
        let s = analyze(&accs);
        assert_eq!(s.reuse_hist[0], 1);
        assert_eq!(s.reuse_hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn immediate_reuse_is_distance_one_bucket() {
        let accs = vec![acc(5), acc(5), acc(5)];
        let s = analyze(&accs);
        // Distance 0 clamped to 1 -> bucket 0.
        assert_eq!(s.reuse_hist[0], 2);
    }

    #[test]
    fn hit_fraction_monotone_in_capacity() {
        let accs: Vec<MemAccess> = (0..1000u64).map(|i| acc(i % 64)).collect();
        let s = analyze(&accs);
        let small = s.hit_fraction_at(8);
        let big = s.hit_fraction_at(128);
        assert!(big >= small);
        assert!(big > 0.9, "big {big}");
    }

    #[test]
    fn writes_counted() {
        let accs = vec![
            MemAccess::write(Asid::new(1), Address::new(0)),
            MemAccess::read(Asid::new(1), Address::new(64)),
        ];
        let s = analyze(&accs);
        assert_eq!(s.writes, 1);
        assert_eq!(s.footprint_bytes(), 128);
    }
}
