//! Named benchmark models calibrated to the paper's workloads.
//!
//! The paper evaluates on L1-D miss traces of SPEC CPU2000, NetBench and
//! MediaBench programs. Since those traces are unavailable, each benchmark
//! is modeled as a weighted mixture of access archetypes
//! ([`ComponentSpec`]) whose parameters were chosen to reproduce the
//! *qualitative* miss behaviour the paper reports:
//!
//! * `mcf` — dominated by pointer chasing over a huge footprint; misses
//!   ~70 % on a 1 MB L2 whether alone or shared (paper Table 1).
//! * `art` — a working set somewhat larger than 1 MB; mid-range solo miss
//!   rate that inflates sharply under sharing.
//! * `ammp`, `parser` — sub-megabyte hot sets; near-zero solo miss rates
//!   that are the main victims of inter-application interference.
//! * the 12-program mixed workload (SPEC + NetBench + MediaBench) spans
//!   streaming (CRC, DRR), table-lookup (NAT), block-loop media kernels
//!   (CJPEG, decode, epic) and general-purpose codes.
//!
//! All streams are deterministic given (benchmark, ASID, seed).

use crate::addr::{Address, Asid};
#[cfg(test)]
use crate::gen::TraceSource;
use crate::gen::{
    BoxedSource, LoopSource, MixSource, PointerChaseSource, StrideSource, WorkingSetSource,
};

/// One behavioural component of a benchmark model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComponentSpec {
    /// Strided streaming over `region_bytes` with `stride` bytes.
    Stride {
        /// Region length in bytes.
        region_bytes: u64,
        /// Stride between accesses in bytes.
        stride: u64,
        /// Store fraction.
        write_frac: f64,
    },
    /// Zipf-skewed reuse over a hot set.
    WorkingSet {
        /// Hot-set footprint in bytes.
        bytes: u64,
        /// Zipf exponent (0 = uniform).
        zipf_s: f64,
        /// Geometric run parameter (1.0 = no runs).
        run_p: f64,
        /// Store fraction.
        write_frac: f64,
    },
    /// Pointer chasing over a huge footprint.
    Chase {
        /// Footprint in bytes.
        footprint_bytes: u64,
        /// Store fraction.
        write_frac: f64,
    },
    /// Repeated sweeps of an array.
    Loop {
        /// Array length in bytes.
        bytes: u64,
        /// Accesses per line per sweep.
        touches_per_line: u32,
        /// Store fraction.
        write_frac: f64,
    },
}

impl ComponentSpec {
    /// Instantiates the component at `base` for `asid`.
    pub fn build(&self, asid: Asid, base: Address, seed: u64) -> BoxedSource {
        match *self {
            ComponentSpec::Stride {
                region_bytes,
                stride,
                write_frac,
            } => Box::new(StrideSource::new(
                asid,
                base,
                region_bytes,
                stride,
                write_frac,
                seed,
            )),
            ComponentSpec::WorkingSet {
                bytes,
                zipf_s,
                run_p,
                write_frac,
            } => Box::new(WorkingSetSource::new(
                asid, base, bytes, zipf_s, run_p, write_frac, seed,
            )),
            ComponentSpec::Chase {
                footprint_bytes,
                write_frac,
            } => Box::new(PointerChaseSource::new(
                asid,
                base,
                footprint_bytes,
                write_frac,
                seed,
            )),
            ComponentSpec::Loop {
                bytes,
                touches_per_line,
                write_frac,
            } => Box::new(LoopSource::new(
                asid,
                base,
                bytes,
                touches_per_line,
                write_frac,
                seed,
            )),
        }
    }

    /// The component's address-space footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        match *self {
            ComponentSpec::Stride { region_bytes, .. } => region_bytes,
            ComponentSpec::WorkingSet { bytes, .. } => bytes,
            ComponentSpec::Chase {
                footprint_bytes, ..
            } => footprint_bytes,
            ComponentSpec::Loop { bytes, .. } => bytes,
        }
    }
}

/// A complete benchmark model: weighted components plus mixing burst.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// Suite the paper draws it from.
    pub suite: Suite,
    /// Behavioural components with mixing weights.
    pub components: Vec<(ComponentSpec, f64)>,
    /// Burst length for the mixture.
    pub burst_len: u64,
}

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000.
    Spec,
    /// NetBench.
    NetBench,
    /// MediaBench.
    MediaBench,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Spec => f.write_str("SPEC"),
            Suite::NetBench => f.write_str("NetBench"),
            Suite::MediaBench => f.write_str("MediaBench"),
        }
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The benchmarks used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Art,
    Ammp,
    Mcf,
    Parser,
    Crafty,
    Gcc,
    Gzip,
    Twolf,
    Gap,
    Crc,
    Drr,
    Nat,
    Cjpeg,
    Decode,
    Epic,
}

impl Benchmark {
    /// All benchmarks known to the reproduction.
    pub const ALL: [Benchmark; 15] = [
        Benchmark::Art,
        Benchmark::Ammp,
        Benchmark::Mcf,
        Benchmark::Parser,
        Benchmark::Crafty,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Twolf,
        Benchmark::Gap,
        Benchmark::Crc,
        Benchmark::Drr,
        Benchmark::Nat,
        Benchmark::Cjpeg,
        Benchmark::Decode,
        Benchmark::Epic,
    ];

    /// The paper's initial 4-program SPEC workload (Table 1, Fig 5).
    pub const SPEC4: [Benchmark; 4] = [
        Benchmark::Art,
        Benchmark::Ammp,
        Benchmark::Mcf,
        Benchmark::Parser,
    ];

    /// The paper's 12-program mixed workload (Table 2, Fig 6, Tables 4/5).
    pub const MIXED12: [Benchmark; 12] = [
        Benchmark::Crafty,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Parser,
        Benchmark::Twolf,
        Benchmark::Gap,
        Benchmark::Crc,
        Benchmark::Drr,
        Benchmark::Nat,
        Benchmark::Cjpeg,
        Benchmark::Decode,
        Benchmark::Epic,
    ];

    /// Benchmark name as printed in the paper's tables and figures.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Parses a paper-style name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        let lower = name.to_ascii_lowercase();
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().to_ascii_lowercase() == lower)
    }

    /// The calibrated behavioural model.
    ///
    /// Rationale per benchmark is documented inline; footprints and weights
    /// were tuned against the solo/shared miss-rate bands of the paper's
    /// Table 1 on a 1 MB 4-way L2 (see `EXPERIMENTS.md`).
    pub fn spec(self) -> BenchmarkSpec {
        use ComponentSpec::{Chase, Loop, Stride, WorkingSet};
        match self {
            // art: neural-net simulation; hot weight arrays ~1.5 MB, scans.
            Benchmark::Art => BenchmarkSpec {
                name: "art",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 1280 * KB,
                            zipf_s: 1.25,
                            run_p: 0.25,
                            write_frac: 0.15,
                        },
                        0.96,
                    ),
                    (
                        Stride {
                            region_bytes: 8 * MB,
                            stride: 64,
                            write_frac: 0.05,
                        },
                        0.04,
                    ),
                ],
                burst_len: 64,
            },
            // ammp: molecular dynamics; compact hot set, high reuse.
            Benchmark::Ammp => BenchmarkSpec {
                name: "ammp",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 192 * KB,
                            zipf_s: 1.1,
                            run_p: 0.3,
                            write_frac: 0.2,
                        },
                        0.995,
                    ),
                    (
                        Stride {
                            region_bytes: 16 * MB,
                            stride: 64,
                            write_frac: 0.0,
                        },
                        0.005,
                    ),
                ],
                burst_len: 64,
            },
            // mcf: network-flow solver. Dominated by repeated sweeps of
            // the ~2 MB arc array — far bigger than a 1 MB L2 (hence the
            // ~0.68 miss rate of Table 1, stable under sharing) but
            // cacheable once a partition can hold the sweep, which is
            // what lets the molecular cache's Figure 5 deviation collapse
            // at the 4 MB threshold — plus a hot node spine and a
            // residual pointer-chase floor over the full input.
            Benchmark::Mcf => BenchmarkSpec {
                name: "mcf",
                suite: Suite::Spec,
                components: vec![
                    (
                        Loop {
                            bytes: 2 * MB,
                            touches_per_line: 1,
                            write_frac: 0.1,
                        },
                        0.55,
                    ),
                    (
                        WorkingSet {
                            bytes: 96 * KB,
                            zipf_s: 1.2,
                            run_p: 0.5,
                            write_frac: 0.1,
                        },
                        0.35,
                    ),
                    (
                        Chase {
                            footprint_bytes: 64 * MB,
                            write_frac: 0.1,
                        },
                        0.10,
                    ),
                ],
                burst_len: 32,
            },
            // parser: dictionary lookups (hot) + input text streaming.
            Benchmark::Parser => BenchmarkSpec {
                name: "parser",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 448 * KB,
                            zipf_s: 1.0,
                            run_p: 0.4,
                            write_frac: 0.1,
                        },
                        0.985,
                    ),
                    (
                        Stride {
                            region_bytes: 32 * MB,
                            stride: 64,
                            write_frac: 0.0,
                        },
                        0.015,
                    ),
                ],
                burst_len: 64,
            },
            // crafty: chess; hash tables with very high locality.
            Benchmark::Crafty => BenchmarkSpec {
                name: "crafty",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 640 * KB,
                            zipf_s: 0.9,
                            run_p: 0.6,
                            write_frac: 0.2,
                        },
                        0.97,
                    ),
                    (
                        Chase {
                            footprint_bytes: 8 * MB,
                            write_frac: 0.0,
                        },
                        0.03,
                    ),
                ],
                burst_len: 48,
            },
            // gcc: compiler; large, flat working set plus IR walks.
            Benchmark::Gcc => BenchmarkSpec {
                name: "gcc",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 1024 * KB,
                            zipf_s: 0.80,
                            run_p: 0.35,
                            write_frac: 0.25,
                        },
                        0.92,
                    ),
                    (
                        Chase {
                            footprint_bytes: 24 * MB,
                            write_frac: 0.05,
                        },
                        0.08,
                    ),
                ],
                burst_len: 32,
            },
            // gzip: sliding-window compression; stream + 256 KB window.
            Benchmark::Gzip => BenchmarkSpec {
                name: "gzip",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 320 * KB,
                            zipf_s: 0.8,
                            run_p: 0.2,
                            write_frac: 0.3,
                        },
                        0.75,
                    ),
                    (
                        Stride {
                            region_bytes: 64 * MB,
                            stride: 32,
                            write_frac: 0.1,
                        },
                        0.25,
                    ),
                ],
                burst_len: 96,
            },
            // twolf: place-and-route; compact hot net-list.
            Benchmark::Twolf => BenchmarkSpec {
                name: "twolf",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 256 * KB,
                            zipf_s: 1.0,
                            run_p: 0.5,
                            write_frac: 0.2,
                        },
                        0.99,
                    ),
                    (
                        Chase {
                            footprint_bytes: 4 * MB,
                            write_frac: 0.0,
                        },
                        0.01,
                    ),
                ],
                burst_len: 64,
            },
            // gap: group theory; medium set with pointer structures.
            Benchmark::Gap => BenchmarkSpec {
                name: "gap",
                suite: Suite::Spec,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 896 * KB,
                            zipf_s: 0.85,
                            run_p: 0.4,
                            write_frac: 0.2,
                        },
                        0.9,
                    ),
                    (
                        Chase {
                            footprint_bytes: 16 * MB,
                            write_frac: 0.05,
                        },
                        0.1,
                    ),
                ],
                burst_len: 40,
            },
            // CRC: checksum over packets; pure streaming, tiny state.
            Benchmark::Crc => BenchmarkSpec {
                name: "CRC",
                suite: Suite::NetBench,
                components: vec![
                    (
                        Stride {
                            region_bytes: 128 * MB,
                            stride: 64,
                            write_frac: 0.0,
                        },
                        0.92,
                    ),
                    (
                        WorkingSet {
                            bytes: 16 * KB,
                            zipf_s: 0.5,
                            run_p: 1.0,
                            write_frac: 0.1,
                        },
                        0.08,
                    ),
                ],
                burst_len: 128,
            },
            // DRR: deficit-round-robin scheduling; queues + packet stream.
            Benchmark::Drr => BenchmarkSpec {
                name: "DRR",
                suite: Suite::NetBench,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 384 * KB,
                            zipf_s: 0.7,
                            run_p: 0.3,
                            write_frac: 0.4,
                        },
                        0.65,
                    ),
                    (
                        Stride {
                            region_bytes: 96 * MB,
                            stride: 64,
                            write_frac: 0.2,
                        },
                        0.35,
                    ),
                ],
                burst_len: 64,
            },
            // NAT: address translation; hot lookup tables + header stream.
            Benchmark::Nat => BenchmarkSpec {
                name: "NAT",
                suite: Suite::NetBench,
                components: vec![
                    (
                        WorkingSet {
                            bytes: 128 * KB,
                            zipf_s: 1.15,
                            run_p: 0.8,
                            write_frac: 0.15,
                        },
                        0.8,
                    ),
                    (
                        Stride {
                            region_bytes: 64 * MB,
                            stride: 64,
                            write_frac: 0.05,
                        },
                        0.2,
                    ),
                ],
                burst_len: 32,
            },
            // CJPEG: JPEG encode; block loops over image rows.
            Benchmark::Cjpeg => BenchmarkSpec {
                name: "CJPEG",
                suite: Suite::MediaBench,
                components: vec![
                    (
                        Loop {
                            bytes: 512 * KB,
                            touches_per_line: 4,
                            write_frac: 0.3,
                        },
                        0.9,
                    ),
                    (
                        Stride {
                            region_bytes: 32 * MB,
                            stride: 64,
                            write_frac: 0.0,
                        },
                        0.1,
                    ),
                ],
                burst_len: 256,
            },
            // decode (MPEG): reference-frame loops, heavy per-line touches.
            Benchmark::Decode => BenchmarkSpec {
                name: "decode",
                suite: Suite::MediaBench,
                components: vec![
                    (
                        Loop {
                            bytes: 384 * KB,
                            touches_per_line: 8,
                            write_frac: 0.35,
                        },
                        0.85,
                    ),
                    (
                        Stride {
                            region_bytes: 48 * MB,
                            stride: 64,
                            write_frac: 0.1,
                        },
                        0.15,
                    ),
                ],
                burst_len: 256,
            },
            // epic: wavelet image compression; larger image sweeps.
            Benchmark::Epic => BenchmarkSpec {
                name: "epic",
                suite: Suite::MediaBench,
                components: vec![
                    (
                        Loop {
                            bytes: 1024 * KB,
                            touches_per_line: 2,
                            write_frac: 0.25,
                        },
                        0.8,
                    ),
                    (
                        WorkingSet {
                            bytes: 64 * KB,
                            zipf_s: 1.0,
                            run_p: 0.5,
                            write_frac: 0.2,
                        },
                        0.2,
                    ),
                ],
                burst_len: 128,
            },
        }
    }

    /// Builds the benchmark's access stream for `asid`.
    ///
    /// Component address ranges are placed in the application's own slice
    /// of the physical address space (`asid << 36`), modeling distinct
    /// per-process physical pages; different applications therefore never
    /// share tags but do contend for the same cache sets.
    pub fn source(self, asid: Asid, seed: u64) -> BoxedSource {
        let spec = self.spec();
        let app_base = (asid.raw() as u64) << 36;
        let mut components = Vec::with_capacity(spec.components.len());
        let mut weights = Vec::with_capacity(spec.components.len());
        let mut offset = 0u64;
        for (i, (comp, weight)) in spec.components.iter().enumerate() {
            let base = Address::new(app_base + offset);
            // Leave a guard gap so components never overlap.
            offset += comp.footprint_bytes().next_power_of_two().max(1 << 20) * 2;
            components.push(comp.build(asid, base, seed ^ ((i as u64 + 1) << 32)));
            weights.push(*weight);
        }
        if components.len() == 1 {
            components.pop().expect("one component")
        } else {
            Box::new(MixSource::new(
                asid,
                components,
                &weights,
                spec.burst_len,
                seed ^ 0xB0B0_B0B0,
            ))
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds `(asid, source)` pairs for a list of benchmarks, assigning
/// ASIDs 1..=n in order.
pub fn workload(benchmarks: &[Benchmark], seed: u64) -> Vec<(Asid, BoxedSource)> {
    benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let asid = Asid::new(i as u16 + 1);
            (asid, b.source(asid, seed.wrapping_add(i as u64 * 0x9E37)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build_and_stream() {
        for b in Benchmark::ALL {
            let mut src = b.source(Asid::new(1), 7);
            let accs = src.collect_n(1000);
            assert_eq!(accs.len(), 1000, "{b} stream too short");
            assert!(accs.iter().all(|a| a.asid == Asid::new(1)));
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("MCF"), Some(Benchmark::Mcf));
        assert_eq!(Benchmark::from_name("nonesuch"), None);
    }

    #[test]
    fn asid_separates_address_spaces() {
        let mut a = Benchmark::Art.source(Asid::new(1), 7);
        let mut b = Benchmark::Art.source(Asid::new(2), 7);
        let la = a.next_access().unwrap().addr.raw() >> 36;
        let lb = b.next_access().unwrap().addr.raw() >> 36;
        assert_ne!(la, lb);
    }

    #[test]
    fn workload_assigns_sequential_asids() {
        let w = workload(&Benchmark::SPEC4, 1);
        let asids: Vec<u16> = w.iter().map(|(a, _)| a.raw()).collect();
        assert_eq!(asids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn mcf_has_huge_footprint_art_moderate() {
        let mcf: u64 = Benchmark::Mcf
            .spec()
            .components
            .iter()
            .map(|(c, _)| c.footprint_bytes())
            .sum();
        let ammp_hot = Benchmark::Ammp
            .spec()
            .components
            .iter()
            .find_map(|(c, _)| match c {
                ComponentSpec::WorkingSet { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .expect("ammp has a working-set component");
        assert!(mcf > 50 * MB);
        assert!(ammp_hot < MB);
    }

    #[test]
    fn deterministic_across_builds() {
        let mut a = Benchmark::Gcc.source(Asid::new(3), 99);
        let mut b = Benchmark::Gcc.source(Asid::new(3), 99);
        for _ in 0..500 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn suites_display() {
        assert_eq!(Suite::Spec.to_string(), "SPEC");
        assert_eq!(Suite::NetBench.to_string(), "NetBench");
        assert_eq!(Suite::MediaBench.to_string(), "MediaBench");
    }
}
