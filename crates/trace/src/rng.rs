//! Deterministic pseudo-random number generation.
//!
//! The paper's *Random* and *Randy* replacement policies, and all synthetic
//! workload generators, depend on a stream of pseudo-random numbers. To keep
//! every experiment bit-exactly reproducible across platforms and
//! toolchains, this module implements its own small generators instead of
//! depending on an external crate whose output could change between
//! versions:
//!
//! * [`SplitMix64`] — used to seed other generators and for cheap one-shot
//!   hashing of seeds.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna),
//!   period 2^256−1, excellent equidistribution for simulation use.
//!
//! The paper itself notes that Random replacement quality "is highly
//! dependent on the entropy of the random number generator implemented in
//! hardware"; xoshiro256** comfortably exceeds what any hardware LFSR would
//! provide, which biases our reproduction *in favour of* the Random
//! baseline, not against it.

/// SplitMix64: a tiny, high-quality 64-bit mixer used for seeding.
///
/// ```
/// use molcache_trace::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the default simulation RNG.
///
/// ```
/// use molcache_trace::rng::Rng;
/// let mut r = Rng::seeded(42);
/// let x = r.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose state is derived from `seed` via SplitMix64
    /// (the seeding procedure recommended by the xoshiro authors).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one forbidden state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The RNG handle used throughout the workspace.
///
/// A thin wrapper around [`Xoshiro256StarStar`] adding the sampling helpers
/// simulators need (`gen_range`, `gen_bool`, `gen_f64`). Cloning an `Rng`
/// forks the stream deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    inner: Xoshiro256StarStar,
}

impl Rng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256StarStar::seeded(seed),
        }
    }

    /// Derives an independent child RNG; `label` separates sub-streams.
    pub fn fork(&mut self, label: u64) -> Rng {
        let a = self.next_u64();
        let mut sm = SplitMix64::new(a ^ label.wrapping_mul(0xA24B_AED4_963E_E407));
        Rng::seeded(sm.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and fast.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire: https://arxiv.org/abs/1805.10941
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::seeded(0xC0FF_EE00_D15E_A5E5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism check against itself (regression-lock the first draw).
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
    }

    #[test]
    fn xoshiro_is_deterministic_and_nonzero() {
        let mut r1 = Xoshiro256StarStar::seeded(99);
        let mut r2 = Xoshiro256StarStar::seeded(99);
        let mut any_nonzero = false;
        for _ in 0..100 {
            let v = r1.next_u64();
            assert_eq!(v, r2.next_u64());
            any_nonzero |= v != 0;
        }
        assert!(any_nonzero);
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = Rng::seeded(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        Rng::seeded(1).gen_range(0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::seeded(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_index(8)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 5 % slack.
            assert!((9_500..=10_500).contains(&c), "count {c} out of band");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seeded(5);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = Rng::seeded(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((24_000..=26_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seeded(42);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seeded(8);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Rng::seeded(9);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
