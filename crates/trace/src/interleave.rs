//! Interleaving per-application streams into a CMP-visible stream.
//!
//! The paper runs benchmarks concurrently on a CMP, so the shared L2
//! observes an interleaving of all applications' (post-L1) reference
//! streams. Two interleavings are provided:
//!
//! * [`RoundRobin`] — one access per application per turn; models equal
//!   per-core progress at reference granularity.
//! * [`Quantum`] — `q` consecutive accesses per application before
//!   switching; models coarser scheduling (and stresses partitions
//!   differently, since bursts from one application arrive back to back).

use crate::access::MemAccess;
use crate::addr::Asid;
use crate::error::TraceError;
use crate::gen::{BoxedSource, TraceSource};

/// A multi-application workload: the set of concurrently running streams.
pub struct Workload {
    sources: Vec<BoxedSource>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("apps", &self.sources.len())
            .finish()
    }
}

impl Workload {
    /// Creates a workload from per-application sources.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyWorkload`] when `sources` is empty and
    /// [`TraceError::DuplicateAsid`] when two sources share an ASID.
    pub fn new(sources: Vec<BoxedSource>) -> Result<Self, TraceError> {
        if sources.is_empty() {
            return Err(TraceError::EmptyWorkload);
        }
        for i in 0..sources.len() {
            for j in i + 1..sources.len() {
                if sources[i].asid() == sources[j].asid() {
                    return Err(TraceError::DuplicateAsid(sources[i].asid()));
                }
            }
        }
        Ok(Workload { sources })
    }

    /// The ASIDs of the participating applications, in source order.
    pub fn asids(&self) -> Vec<Asid> {
        self.sources.iter().map(|s| s.asid()).collect()
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Returns `true` when the workload has no applications (never true for
    /// a constructed `Workload`; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Round-robin interleaving: one access per app per turn.
    pub fn round_robin(self) -> RoundRobin {
        RoundRobin {
            sources: self.sources,
            next: 0,
            live: None,
        }
    }

    /// Quantum interleaving: `quantum` accesses per app before switching.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn quantum(self, quantum: u64) -> Quantum {
        assert!(quantum > 0, "quantum must be positive");
        Quantum {
            sources: self.sources,
            next: 0,
            remaining: quantum,
            quantum,
            live: None,
        }
    }
}

/// Round-robin interleaver (see [`Workload::round_robin`]).
pub struct RoundRobin {
    sources: Vec<BoxedSource>,
    next: usize,
    /// Bitmask-free liveness: indices of exhausted sources are skipped by
    /// retry; `live` caches whether any source still produces accesses.
    live: Option<bool>,
}

impl std::fmt::Debug for RoundRobin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundRobin")
            .field("apps", &self.sources.len())
            .field("next", &self.next)
            .finish()
    }
}

impl Iterator for RoundRobin {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        if self.live == Some(false) {
            return None;
        }
        for _ in 0..self.sources.len() {
            let idx = self.next;
            self.next = (self.next + 1) % self.sources.len();
            if let Some(acc) = self.sources[idx].next_access() {
                return Some(acc);
            }
        }
        self.live = Some(false);
        None
    }
}

/// Quantum interleaver (see [`Workload::quantum`]).
pub struct Quantum {
    sources: Vec<BoxedSource>,
    next: usize,
    remaining: u64,
    quantum: u64,
    live: Option<bool>,
}

impl std::fmt::Debug for Quantum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quantum")
            .field("apps", &self.sources.len())
            .field("quantum", &self.quantum)
            .finish()
    }
}

impl Iterator for Quantum {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        if self.live == Some(false) {
            return None;
        }
        for _ in 0..self.sources.len() {
            if self.remaining == 0 {
                self.next = (self.next + 1) % self.sources.len();
                self.remaining = self.quantum;
            }
            if let Some(acc) = self.sources[self.next].next_access() {
                self.remaining -= 1;
                return Some(acc);
            }
            // Current source exhausted: move on immediately.
            self.remaining = 0;
        }
        self.live = Some(false);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::gen::{ReplaySource, StrideSource};

    fn stream(asid: u16, n: u64) -> BoxedSource {
        let accs = (0..n)
            .map(|i| MemAccess::read(Asid::new(asid), Address::new(i * 64)))
            .collect();
        Box::new(ReplaySource::new(Asid::new(asid), accs))
    }

    #[test]
    fn empty_workload_rejected() {
        assert_eq!(
            Workload::new(vec![]).unwrap_err(),
            TraceError::EmptyWorkload
        );
    }

    #[test]
    fn duplicate_asid_rejected() {
        let err = Workload::new(vec![stream(1, 2), stream(1, 2)]).unwrap_err();
        assert_eq!(err, TraceError::DuplicateAsid(Asid::new(1)));
    }

    #[test]
    fn round_robin_alternates() {
        let w = Workload::new(vec![stream(1, 3), stream(2, 3)]).unwrap();
        let asids: Vec<u16> = w.round_robin().map(|a| a.asid.raw()).collect();
        assert_eq!(asids, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn round_robin_drains_unequal_lengths() {
        let w = Workload::new(vec![stream(1, 1), stream(2, 4)]).unwrap();
        let asids: Vec<u16> = w.round_robin().map(|a| a.asid.raw()).collect();
        assert_eq!(asids, vec![1, 2, 2, 2, 2]);
    }

    #[test]
    fn quantum_runs_in_bursts() {
        let w = Workload::new(vec![stream(1, 4), stream(2, 4)]).unwrap();
        let asids: Vec<u16> = w.quantum(2).map(|a| a.asid.raw()).collect();
        assert_eq!(asids, vec![1, 1, 2, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn quantum_skips_exhausted() {
        let w = Workload::new(vec![stream(1, 1), stream(2, 3)]).unwrap();
        let asids: Vec<u16> = w.quantum(2).map(|a| a.asid.raw()).collect();
        assert_eq!(asids, vec![1, 2, 2, 2]);
    }

    #[test]
    fn infinite_sources_interleave() {
        let a: BoxedSource = Box::new(StrideSource::new(
            Asid::new(1),
            Address::new(0),
            1 << 16,
            64,
            0.0,
            1,
        ));
        let b: BoxedSource = Box::new(StrideSource::new(
            Asid::new(2),
            Address::new(1 << 30),
            1 << 16,
            64,
            0.0,
            2,
        ));
        let w = Workload::new(vec![a, b]).unwrap();
        let first_100: Vec<MemAccess> = w.round_robin().take(100).collect();
        assert_eq!(first_100.len(), 100);
        let ones = first_100.iter().filter(|a| a.asid.raw() == 1).count();
        assert_eq!(ones, 50);
    }
}
