//! # molcache-bench — experiment harness
//!
//! One module per table/figure of the paper's evaluation (§4). Each
//! experiment returns an [`ExperimentRecord`] and can print a
//! paper-style table; the `repro` binary drives them all:
//!
//! ```text
//! cargo run -p molcache-bench --release --bin repro -- all
//! ```
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::table1`] | Table 1 — inter-application interference |
//! | [`experiments::fig5`] | Figure 5 — avg deviation vs size (graphs A & B) |
//! | [`experiments::table2`] | Table 2 — 12-benchmark mixed workload |
//! | [`experiments::table4`] | Tables 3+4 — CACTI power comparison |
//! | [`experiments::fig6`] | Figure 6 — hits-per-molecule, Random vs Randy |
//! | [`experiments::table5`] | Table 5 — power-deviation product |
//! | [`experiments::ablations`] | §3.4 design-choice ablations |
//!
//! [`ExperimentRecord`]: molcache_metrics::record::ExperimentRecord

pub mod experiments;
pub mod harness;
pub mod machine;
pub mod report;
pub mod stopwatch;
pub mod tourney;
pub mod workloads;

pub use harness::{
    molecular_config, run_workload_on, run_workload_warmed, Engine, ExperimentScale,
};
pub use machine::MachineInfo;
pub use report::{compare, BenchDoc, WorkloadResult, BENCH_SCHEMA, REGRESSION_TOLERANCE};
pub use tourney::{TourneyDoc, TourneyEntry, TOURNEY_SCHEMA};
