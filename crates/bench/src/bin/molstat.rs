//! `molstat` — partition-timeline inspector for the molecular cache.
//!
//! Runs the Table 2 mixed workload (12 benchmarks over the 6 MB
//! molecular cache) cold — no warmup — with a telemetry recorder
//! attached, then prints the per-partition epoch timeline, the resize
//! event log and the latency histogram, or exports the whole time-series
//! as JSON.
//!
//! ```text
//! molstat                                # randy timeline, 200K refs
//! molstat --policy randy,random --jobs 2 # one run per policy, fanned out
//! molstat --stages --power               # per-stage cycles/events/energy
//! molstat --refs 60000 --period 2000 --epoch 5000 --json > series.json
//! molstat --serve serve.json             # render a molserve replay record
//! molstat --tourney TOURNEY_2026-08-08.json  # render a policy tournament
//! ```
//!
//! `--serve FILE` is a standalone viewer mode: it renders a
//! `molcache-serve-v1` document (written by `molserve --json`) as
//! per-tenant hit-rate and per-cluster contention tables and exits
//! without running any simulation. `--tourney FILE` does the same for a
//! `molcache-tourney-v1` record written by `moltourney`: per-workload
//! league tables plus the cross-workload summary.
//!
//! One run per listed policy; `--jobs N` fans the runs across workers.
//! Runs are merged back in policy-list order, so the output (text and
//! JSON) is identical for any `--jobs` value.
//!
//! `--stages` prints the pipeline-stage breakdown of the whole run and
//! self-checks the staging contract — the per-stage cycles must sum to
//! the total access latency the statistics reported — exiting 1 on any
//! mismatch, which makes it usable as a CI smoke check. The table carries
//! a `host-ns` column: in builds with the `stage-profiler` feature it
//! holds the sampled wall time per stage (every 64th access timed) and a
//! second exit-gated self-check requires the sampled stage wall-times to
//! sum to no more than the run's measured wall time; default builds show
//! `-` and stay bit-identical.

use molcache_bench::experiments::table2;
use molcache_bench::harness::{run_workload_recorded, Engine};
use molcache_bench::tourney::TourneyDoc;
use molcache_core::{MemoStats, MolecularCache, RegionPolicy, StageWallProfile};
use molcache_power::calibrate::molecule_report;
use molcache_power::tech::TechNode;
use molcache_power::EnergyMeter;
use molcache_serve::ServeDoc;
use molcache_sim::cmp::RunSummary;
use molcache_sim::{Activity, CacheModel};
use molcache_telemetry::runs_to_json;
use molcache_trace::presets::Benchmark;

#[derive(Debug)]
struct Args {
    policies: Vec<RegionPolicy>,
    refs: u64,
    epoch: u64,
    period: u64,
    seed: u64,
    jobs: usize,
    json: bool,
    power: bool,
    stages: bool,
    memo: bool,
    serve: Option<String>,
    tourney: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: molstat [--policy randy,random,lru-direct] [--refs N]\n\
         \u{20}             [--epoch N] [--period N] [--seed N] [--jobs N]\n\
         \u{20}             [--power] [--stages] [--json]\n\
         \u{20} --refs    references to simulate (default 200000)\n\
         \u{20} --epoch   accesses per telemetry epoch (default 10000)\n\
         \u{20} --period  initial per-app resize period (default 5000)\n\
         \u{20} --power   price epoch activity into energy (70nm CACTI model)\n\
         \u{20} --stages  print the pipeline-stage breakdown and self-check\n\
         \u{20}           that stage cycles sum to the total access latency\n\
         \u{20} --memo    print the memoization front-end's effectiveness\n\
         \u{20}           (hits, lookups, hit rate, stale entries, generation\n\
         \u{20}           bumps; needs a build with the memo-front feature)\n\
         \u{20} --json    print the merged time-series as JSON on stdout\n\
         \u{20} --serve FILE  render a molserve replay record (molcache-serve-v1\n\
         \u{20}           JSON from `molserve --json`) and exit: per-tenant\n\
         \u{20}           hit-rate table plus per-cluster contention counters\n\
         \u{20} --tourney FILE  render a policy-tournament record\n\
         \u{20}           (molcache-tourney-v1 JSON from `moltourney`) and exit:\n\
         \u{20}           per-workload league tables plus cross-workload means"
    );
    std::process::exit(2);
}

fn parse_policy(name: &str) -> RegionPolicy {
    match name.to_ascii_lowercase().as_str() {
        "random" => RegionPolicy::Random,
        "randy" => RegionPolicy::Randy,
        "lru-direct" | "lrudirect" => RegionPolicy::LruDirect,
        _ => usage(),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        policies: vec![RegionPolicy::Randy],
        refs: 200_000,
        epoch: 10_000,
        period: 5_000,
        seed: 7,
        jobs: 1,
        json: false,
        power: false,
        stages: false,
        memo: false,
        serve: None,
        tourney: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--policy" => args.policies = value().split(',').map(parse_policy).collect(),
            "--refs" => args.refs = value().parse().unwrap_or_else(|_| usage()),
            "--epoch" => args.epoch = value().parse().unwrap_or_else(|_| usage()),
            "--period" => args.period = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--jobs" => args.jobs = value().parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = true,
            "--power" => args.power = true,
            "--stages" => args.stages = true,
            "--memo" => args.memo = true,
            "--serve" => args.serve = Some(value()),
            "--tourney" => args.tourney = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.policies.is_empty() || args.refs == 0 || args.epoch == 0 || args.period == 0 {
        usage();
    }
    args
}

struct RunResult {
    policy: RegionPolicy,
    summary: RunSummary,
    description: String,
    resize_rounds: u64,
    free_molecules: usize,
    activity: Activity,
    /// Wall-clock time of the whole run (host observability only; never
    /// part of the deterministic text/JSON comparisons).
    wall_ns: u64,
    /// Sampled host-time stage split — `Some` only in builds with the
    /// `stage-profiler` feature, rendered as `-` otherwise.
    wall_profile: Option<StageWallProfile>,
    /// Memo front-end counters — `Some` only in builds with the
    /// `memo-front` feature.
    memo: Option<MemoStats>,
}

/// Renders the memo front-end's effectiveness for one run.
/// `epoch_memo_hits` is the per-epoch hit series carried (JSON-excluded)
/// on the recorder's epoch samples.
fn report_memo(run: &RunResult, epoch_memo_hits: &[u64]) {
    let Some(s) = run.memo else {
        println!(
            "memo front-end ({}): not compiled in (build with the \
             memo-front feature)",
            run.policy
        );
        return;
    };
    println!("memo front-end ({}):", run.policy);
    if !s.enabled {
        println!("  disabled at runtime");
        return;
    }
    println!(
        "  {} hits / {} lookups ({:.1}% hit rate), {} stale entries",
        s.hits,
        s.lookups(),
        s.hit_rate() * 100.0,
        s.stale,
    );
    println!(
        "  {} slots, generation {} after {} structural bumps",
        s.slots, s.generation, s.generation_bumps,
    );
    if !epoch_memo_hits.is_empty() {
        let total: u64 = epoch_memo_hits.iter().sum();
        let peak = epoch_memo_hits.iter().copied().max().unwrap_or(0);
        println!(
            "  per-epoch hits: {} epochs, {} total, peak {} in one epoch",
            epoch_memo_hits.len(),
            total,
            peak,
        );
    }
}

/// Renders the run's pipeline-stage breakdown and verifies the staging
/// contract: stage cycles must sum to the total latency the statistics
/// reported. Returns `false` (after printing the discrepancy) on a
/// violated contract.
fn report_stages(run: &RunResult, meter: Option<&EnergyMeter>) -> bool {
    let energy = meter.map(|m| m.stage_energy_nj(&run.activity));
    println!("pipeline stages ({}):", run.policy);
    print!(
        "  {:<12} {:>14} {:>14} {:>12} {:>10} {:>12}",
        "stage", "cycles", "asid-compares", "tag-probes", "frames", "host-ns"
    );
    if energy.is_some() {
        print!(" {:>14}", "energy-nJ");
    }
    println!();
    for (stage, totals) in run.activity.stages.iter() {
        let host = match &run.wall_profile {
            Some(p) => p.stage_ns_of(stage).to_string(),
            None => "-".to_string(),
        };
        print!(
            "  {:<12} {:>14} {:>14} {:>12} {:>10} {:>12}",
            stage.name(),
            totals.cycles,
            totals.asid_compares,
            totals.tag_probes,
            totals.frames_touched,
            host,
        );
        if let Some(e) = &energy {
            print!(" {:>14.1}", e.stage(stage));
        }
        println!();
    }
    let stage_cycles = run.activity.stages.total_cycles();
    let latency = run.summary.total_latency();
    let mut ok = if stage_cycles == latency {
        println!("  stage cycles {stage_cycles} == total access latency: ok");
        true
    } else {
        eprintln!(
            "molstat: staging contract violated for {}: stage cycles {stage_cycles} != total access latency {latency}",
            run.policy
        );
        false
    };
    // Host-time sanity: the sampled per-stage wall times cover a subset
    // of the run's accesses, so their sum can never exceed the measured
    // wall time of the whole run.
    if let Some(profile) = &run.wall_profile {
        let sampled = profile.total_sampled_ns();
        if sampled <= run.wall_ns {
            println!(
                "  sampled stage wall {sampled} ns <= run wall {} ns: ok",
                run.wall_ns
            );
        } else {
            eprintln!(
                "molstat: stage wall-time self-check failed for {}: sampled {sampled} ns > run wall {} ns",
                run.policy, run.wall_ns
            );
            ok = false;
        }
    }
    ok
}

/// Renders a `molcache-serve-v1` replay record: run parameters,
/// per-tenant hit-rate table and per-cluster contention counters.
fn report_serve(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = ServeDoc::from_json(&text).map_err(|e| format!("invalid record {path}: {e}"))?;
    println!(
        "molserve replay: {} tenants on {} threads over {} shards, \
         {} refs/tenant, seed {}",
        doc.tenants, doc.threads, doc.shards, doc.refs_per_tenant, doc.seed,
    );
    println!(
        "  wall {:.1} ms, {:.0} accesses/sec, imbalance {:.3}",
        doc.wall_ns as f64 / 1e6,
        doc.accesses_per_sec,
        doc.imbalance,
    );
    println!();
    println!("  tenant  benchmark   shard   accesses      hit%   writebacks   avg-lat");
    for t in &doc.per_tenant {
        println!(
            "  {:>6}  {:<10} {:>5} {:>10}   {:>6.2}% {:>12} {:>9.1}",
            t.asid,
            t.benchmark,
            t.shard,
            t.stats.accesses,
            t.stats.hit_rate() * 100.0,
            t.stats.writebacks,
            t.stats.avg_latency(),
        );
    }
    println!();
    println!("  shard   acquisitions  contended  cont%   wait(us)  maxq   accesses    hit%");
    for s in &doc.per_shard {
        println!(
            "  {:>5} {:>14} {:>10} {:>5.1}% {:>10.1} {:>5} {:>10}  {:>5.1}%",
            s.shard,
            s.acquisitions,
            s.contended,
            s.contention_rate() * 100.0,
            s.lock_wait_ns as f64 / 1e3,
            s.max_queue_depth,
            s.accesses,
            s.hit_rate() * 100.0,
        );
    }
    Ok(())
}

/// Renders a `molcache-tourney-v1` policy-tournament record: run
/// parameters, the per-workload league tables and the cross-workload
/// summary.
fn report_tourney(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = TourneyDoc::from_json(&text).map_err(|e| format!("invalid record {path}: {e}"))?;
    println!(
        "policy tournament {}: {} policies x {} workloads, {} refs/cell, seed {}{}",
        doc.date,
        doc.policies().len(),
        doc.workloads().len(),
        doc.refs,
        doc.seed,
        if doc.smoke { " [smoke]" } else { "" },
    );
    println!();
    print!("{}", doc.render());
    Ok(())
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.serve {
        if let Err(msg) = report_serve(path) {
            eprintln!("molstat: {msg}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(path) = &args.tourney {
        if let Err(msg) = report_tourney(path) {
            eprintln!("molstat: {msg}");
            std::process::exit(1);
        }
        return;
    }
    let (refs, seed, period) = (args.refs, args.seed, args.period);

    let results = Engine::new(args.jobs).run_recorded(
        args.policies.clone(),
        args.epoch,
        move |policy, sink| {
            let mut cache: MolecularCache =
                table2::molecular_6mb_with_period(policy, seed, period).with_sink(sink.clone());
            // No-op in default builds; with the `stage-profiler` feature
            // every 64th access is timed per stage for the host-ns column.
            cache.enable_stage_profiler(64);
            let wall = std::time::Instant::now();
            let summary = run_workload_recorded(&Benchmark::MIXED12, &mut cache, refs, seed, &sink);
            let wall_ns = wall.elapsed().as_nanos() as u64;
            RunResult {
                policy,
                summary,
                description: cache.describe(),
                resize_rounds: cache.resize_rounds(),
                free_molecules: cache.free_molecules(),
                activity: cache.activity(),
                wall_ns,
                wall_profile: cache.stage_wall_profile(),
                memo: cache.memo_stats(),
            }
        },
    );

    let meter = args.power.then(|| {
        EnergyMeter::for_molecular(&molecule_report(&TechNode::nm70()), &TechNode::nm70())
    });
    let mut recorders = Vec::new();
    let mut runs = Vec::new();
    for (run, mut recorder) in results {
        recorder.set_label(format!("{} seed {}", run.description, seed));
        if let Some(meter) = meter {
            recorder.set_energy_meter(meter);
        }
        recorders.push(recorder);
        runs.push(run);
    }

    if args.json {
        if args.stages {
            // Keep stdout pure JSON; the contract check still gates the
            // exit status so `--stages --json` works as a CI smoke.
            for run in &runs {
                let stage_cycles = run.activity.stages.total_cycles();
                let latency = run.summary.total_latency();
                if stage_cycles != latency {
                    eprintln!(
                        "molstat: staging contract violated for {}: stage cycles \
                         {stage_cycles} != total access latency {latency}",
                        run.policy
                    );
                    std::process::exit(1);
                }
            }
        }
        match runs_to_json(&recorders) {
            Ok(doc) => println!("{doc}"),
            Err(e) => {
                eprintln!("telemetry export failed: {e:?}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut contract_ok = true;
    for (run, recorder) in runs.iter().zip(&recorders) {
        println!("{}", recorder.render());
        println!(
            "{}: {} refs, global miss rate {:.4}, avg latency {:.1} cycles, \
             {} resize rounds, {} free molecules",
            run.policy,
            run.summary.accesses(),
            run.summary.global.miss_rate(),
            run.summary.avg_latency(),
            run.resize_rounds,
            run.free_molecules,
        );
        if args.stages {
            contract_ok &= report_stages(run, meter.as_ref());
        }
        if args.memo {
            let epoch_hits: Vec<u64> = recorder.epochs().iter().map(|e| e.memo_hits).collect();
            report_memo(run, &epoch_hits);
        }
        println!();
    }
    if !contract_ok {
        std::process::exit(1);
    }
}
