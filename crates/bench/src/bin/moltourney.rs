//! `moltourney` — the cross-workload resize-policy tournament.
//!
//! Runs every resize policy against every suite workload through the
//! parallel `Engine`, scores each cell on power-deviation product and
//! per-app goal attainment, and writes a schema-versioned
//! `TOURNEY_<date>.json` (`molcache-tourney-v1`) that
//! `molstat --tourney` re-renders.
//!
//! ```text
//! moltourney                      # full tournament, writes results/TOURNEY_<date>.json
//! moltourney --smoke              # reduced scale for CI
//! moltourney --policies paper-algorithm1,memshare-pressure --workloads 3
//! ```
//!
//! Scoring is pure simulation — no wall-clock enters the record — so
//! the JSON is bit-reproducible from `(policies, workloads, refs,
//! seed)` on any host, and the worker count only changes how fast the
//! grid fills in, never what it holds.

use molcache_bench::harness::Engine;
use molcache_bench::report::today_utc;
use molcache_bench::tourney::{score_cell, TourneyDoc};
use molcache_bench::workloads::{build_workload, tourney_workloads};
use molcache_core::policy::POLICY_NAMES;

struct Args {
    smoke: bool,
    refs: u64,
    seed: u64,
    policies: Vec<String>,
    workloads: Vec<String>,
    jobs: usize,
    out_dir: String,
    out_file: Option<String>,
    write: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: moltourney [--smoke] [--refs N] [--seed N] [--jobs N]\n\
         \u{20}                [--policies NAME[,NAME...]] [--workloads LIST|N]\n\
         \u{20}                [--out DIR] [--out-file NAME] [--no-write]\n\
         \u{20} --smoke        reduced scale (CI): fewer refs per cell\n\
         \u{20} --refs         accesses per (policy, workload) cell (default 120000)\n\
         \u{20} --policies     comma list of resize policies (default: all)\n\
         \u{20} --workloads    comma list of workload names, or a count N\n\
         \u{20}                taking the first N of the suite (default: all)\n\
         \u{20} --jobs         worker threads (default: host parallelism)\n\
         \u{20} --out          directory for TOURNEY_<date>.json (default results)\n\
         \u{20} --out-file     record file name inside the out dir\n\
         \u{20} --no-write     skip writing the record"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        refs: 120_000,
        seed: 7,
        policies: POLICY_NAMES.iter().map(|s| s.to_string()).collect(),
        workloads: tourney_workloads(),
        jobs: std::thread::available_parallelism().map_or(4, usize::from),
        out_dir: "results".into(),
        out_file: None,
        write: true,
    };
    let mut refs_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--refs" => {
                args.refs = value().parse().unwrap_or_else(|_| usage());
                refs_set = true;
            }
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--jobs" => args.jobs = value().parse().unwrap_or_else(|_| usage()),
            "--policies" => args.policies = value().split(',').map(str::to_string).collect(),
            "--workloads" => {
                let v = value();
                args.workloads = match v.parse::<usize>() {
                    Ok(n) => {
                        let suite = tourney_workloads();
                        if n == 0 || n > suite.len() {
                            usage();
                        }
                        suite.into_iter().take(n).collect()
                    }
                    Err(_) => v.split(',').map(str::to_string).collect(),
                };
            }
            "--out" => args.out_dir = value(),
            "--out-file" => args.out_file = Some(value()),
            "--no-write" => args.write = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.smoke && !refs_set {
        args.refs = 20_000;
    }
    if args.refs == 0 || args.policies.is_empty() || args.workloads.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();

    // Fail fast on unknown names, before any cell runs.
    for p in &args.policies {
        if !POLICY_NAMES.contains(&p.as_str()) {
            eprintln!(
                "moltourney: unknown policy '{p}' (known: {})",
                POLICY_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
    for w in &args.workloads {
        if build_workload(w, 1, args.seed).is_none() {
            eprintln!(
                "moltourney: unknown workload '{w}' (known: {})",
                tourney_workloads().join(", ")
            );
            std::process::exit(2);
        }
    }

    let cells: Vec<(String, String)> = args
        .policies
        .iter()
        .flat_map(|p| args.workloads.iter().map(move |w| (p.clone(), w.clone())))
        .collect();
    println!(
        "moltourney: {} policies x {} workloads = {} cells, {} refs/cell, {} jobs{}",
        args.policies.len(),
        args.workloads.len(),
        cells.len(),
        args.refs,
        args.jobs,
        if args.smoke { " [smoke]" } else { "" },
    );

    let refs = args.refs;
    let seed = args.seed;
    let engine = Engine::new(args.jobs);
    let entries = engine.run(cells, |(policy, workload)| {
        let built = build_workload(&workload, refs, seed).expect("validated above");
        score_cell(&policy, built).expect("validated above")
    });

    let doc = TourneyDoc {
        date: today_utc(),
        smoke: args.smoke,
        refs: args.refs,
        seed: args.seed,
        entries,
    };

    println!();
    print!("{}", doc.render());

    let json = match doc.to_json() {
        Ok(json) => json,
        Err(e) => {
            eprintln!("moltourney: TOURNEY record serialization failed: {e}");
            std::process::exit(1);
        }
    };
    if args.write {
        let file_name = args.out_file.clone().unwrap_or_else(|| doc.file_name());
        let path = std::path::Path::new(&args.out_dir).join(file_name);
        if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("moltourney: cannot create {}: {e}", args.out_dir);
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("moltourney: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
    }
}
