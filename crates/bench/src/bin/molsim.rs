//! `molsim` — drive any cache model from the command line.
//!
//! ```text
//! molsim --cache molecular --size 2MB --policy randy --goal 0.10 \
//!        --apps art,mcf --refs 1000000
//! molsim --cache setassoc --size 1MB --assoc 4 --apps ammp --refs 500000
//! molsim --cache molecular --size 2MB --din trace.din --refs 100000
//! ```
//!
//! Applications come from the built-in benchmark presets (`--apps`) or a
//! Dinero-format trace file (`--din`, one application). Prints per-app
//! miss rates, region state (molecular), activity counters and — with
//! `--power` — dynamic power at the chosen frequency.

use molcache_bench::harness::{asid_of, Engine};
use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_power::accounting::EnergyMeter;
use molcache_power::cacti::analyze;
use molcache_power::calibrate::molecule_report;
use molcache_power::leakage::leakage_w;
use molcache_power::tech::TechNode;
use molcache_sim::cmp::run_accesses;
use molcache_sim::replacement::Policy;
use molcache_sim::{CacheConfig, CacheModel, SetAssocCache};
use molcache_trace::din::DinSource;
use molcache_trace::gen::BoxedSource;
use molcache_trace::interleave::Workload;
use molcache_trace::presets::Benchmark;

#[derive(Debug)]
struct Args {
    cache: String,
    size: u64,
    assoc: u32,
    policy: RegionPolicy,
    goal: f64,
    apps: Vec<Benchmark>,
    din: Option<String>,
    refs: u64,
    seed: u64,
    power: bool,
    freq_mhz: f64,
    analyze: bool,
    jobs: usize,
}

fn parse_size(s: &str) -> Option<u64> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = if let Some(v) = lower.strip_suffix("mb") {
        (v, 1 << 20)
    } else if let Some(v) = lower.strip_suffix("kb") {
        (v, 1 << 10)
    } else {
        (lower.as_str(), 1)
    };
    digits.trim().parse::<u64>().ok().map(|n| n * mult)
}

fn usage() -> ! {
    eprintln!(
        "usage: molsim --cache molecular|setassoc [--size 2MB] [--assoc 4]\n\
         \u{20}             [--policy random|randy|lru-direct] [--goal 0.10]\n\
         \u{20}             [--apps art,mcf,...] [--din FILE] [--refs N]\n\
         \u{20}             [--seed N] [--power] [--freq MHZ] [--analyze] [--jobs N]\n\
         known apps: {}",
        Benchmark::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cache: "molecular".into(),
        size: 2 << 20,
        assoc: 4,
        policy: RegionPolicy::Randy,
        goal: 0.10,
        apps: vec![Benchmark::Art, Benchmark::Mcf],
        din: None,
        refs: 1_000_000,
        seed: 42,
        power: false,
        freq_mhz: 200.0,
        analyze: false,
        jobs: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--cache" => args.cache = value(),
            "--size" => args.size = parse_size(&value()).unwrap_or_else(|| usage()),
            "--assoc" => args.assoc = value().parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                args.policy = match value().to_ascii_lowercase().as_str() {
                    "random" => RegionPolicy::Random,
                    "randy" => RegionPolicy::Randy,
                    "lru-direct" | "lrudirect" => RegionPolicy::LruDirect,
                    _ => usage(),
                }
            }
            "--goal" => args.goal = value().parse().unwrap_or_else(|_| usage()),
            "--apps" => {
                args.apps = value()
                    .split(',')
                    .map(|name| Benchmark::from_name(name).unwrap_or_else(|| usage()))
                    .collect();
            }
            "--din" => args.din = Some(value()),
            "--refs" => args.refs = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--power" => args.power = true,
            "--analyze" => args.analyze = true,
            "--freq" => args.freq_mhz = value().parse().unwrap_or_else(|_| usage()),
            "--jobs" => {
                args.jobs = value().parse().unwrap_or_else(|_| usage());
                if args.jobs == 0 {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn build_sources(args: &Args) -> Vec<BoxedSource> {
    if let Some(path) = &args.din {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        });
        vec![Box::new(DinSource::new(
            std::io::BufReader::new(file),
            asid_of(0),
        ))]
    } else {
        args.apps
            .iter()
            .enumerate()
            .map(|(i, b)| b.source(asid_of(i), args.seed))
            .collect()
    }
}

fn report<C: CacheModel>(cache: &C, args: &Args, summary: &molcache_sim::cmp::RunSummary) {
    println!("cache: {}", cache.describe());
    println!(
        "refs: {}  global miss rate: {:.4}  avg latency: {:.1} cycles",
        summary.accesses(),
        summary.global.miss_rate(),
        summary.avg_latency()
    );
    for (asid, stats) in &summary.per_app {
        println!(
            "  {asid}: {} accesses, miss rate {:.4}, {} writebacks",
            stats.accesses,
            stats.miss_rate(),
            stats.writebacks
        );
    }
    let a = cache.activity();
    println!(
        "activity: {:.1} probes/access, {} fills, {} writebacks, {} Ulmo searches",
        a.probes_per_access(),
        a.line_fills,
        a.writebacks,
        a.ulmo_searches
    );
    if args.power {
        let node = TechNode::nm70();
        let dynamic = if args.cache == "molecular" {
            EnergyMeter::for_molecular(&molecule_report(&node), &node)
                .power_at_mhz(&a, args.freq_mhz)
        } else {
            let cfg = CacheConfig::new(args.size, args.assoc, 64).expect("validated");
            EnergyMeter::for_traditional(&analyze(&cfg, &node)).power_at_mhz(&a, args.freq_mhz)
        };
        println!(
            "power @{:.0} MHz: dynamic {:.2} W, leakage {:.2} W",
            args.freq_mhz,
            dynamic,
            leakage_w(args.size, &node)
        );
    }
}

fn analyze_stream(args: &Args) {
    use molcache_trace::gen::TraceSource;
    let sources = build_sources(args);
    let limit = args.refs.min(200_000);
    println!("stream analysis (first {limit} refs per app):");
    // Each stream is analyzed independently; --jobs fans them across
    // workers while keeping the report in app order.
    let lines = Engine::new(args.jobs).run(sources, |mut src| {
        let accs = src.collect_n(limit as usize);
        let stats = molcache_trace::stats::analyze(&accs);
        format!(
            "  {}: {} refs, footprint {} KB, {:.1}% writes, LRU hit@1K lines {:.1}%, @16K {:.1}%",
            src.asid(),
            stats.accesses,
            stats.footprint_bytes() >> 10,
            100.0 * stats.writes as f64 / stats.accesses.max(1) as f64,
            100.0 * stats.hit_fraction_at(1 << 10),
            100.0 * stats.hit_fraction_at(16 << 10),
        )
    });
    for line in lines {
        println!("{line}");
    }
}

fn main() {
    let args = parse_args();
    if args.analyze {
        analyze_stream(&args);
    }
    let sources = build_sources(&args);
    let workload = Workload::new(sources).unwrap_or_else(|e| {
        eprintln!("bad workload: {e}");
        std::process::exit(1);
    });
    let stream = workload.round_robin();

    match args.cache.as_str() {
        "molecular" => {
            let tile_bytes = args.size / 4;
            let config = MolecularConfig::builder()
                .molecule_size(8 * 1024)
                .tile_molecules((tile_bytes / 8192).max(1) as usize)
                .tiles_per_cluster(4)
                .clusters(1)
                .policy(args.policy)
                .miss_rate_goal(args.goal)
                .trigger(ResizeTrigger::GlobalAdaptive {
                    initial_period: 25_000,
                })
                .seed(args.seed)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("bad molecular config: {e}");
                    std::process::exit(1);
                });
            let mut cache = MolecularCache::new(config);
            let summary = run_accesses(stream, &mut cache, args.refs);
            report(&cache, &args, &summary);
            println!("regions:");
            for snap in cache.snapshots() {
                println!(
                    "  {}: {} molecules / {} rows, goal {:.0}%, lifetime miss {:.4}, HPM {:.3e}",
                    snap.asid,
                    snap.molecules,
                    snap.rows,
                    snap.goal * 100.0,
                    snap.lifetime_miss_rate(),
                    snap.hits_per_molecule
                );
            }
        }
        "setassoc" => {
            let cfg = CacheConfig::new(args.size, args.assoc, 64).unwrap_or_else(|e| {
                eprintln!("bad cache geometry: {e}");
                std::process::exit(1);
            });
            let mut cache = SetAssocCache::new(cfg, Policy::Lru);
            let summary = run_accesses(stream, &mut cache, args.refs);
            report(&cache, &args, &summary);
        }
        _ => usage(),
    }
}
