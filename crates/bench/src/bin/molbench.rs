//! `molbench` — wall-clock performance harness for the molecular cache.
//!
//! Runs a fixed suite of workloads through the simulator, measures
//! ns/access and accesses/sec with warm-up and repeated samples
//! (min/median/mean over individually-timed iterations), and emits a
//! schema-versioned `BENCH_<date>.json` (`molcache-bench-v1`) carrying
//! the machine info next to the numbers. The suite:
//!
//! | workload | what it drives |
//! |---|---|
//! | `single:<bm>` | one benchmark's stream through a 1 MB molecular cache |
//! | `miss_storm` | uniform-random lines over a region spanning all tiles (~0% hit) |
//! | `mixed12` | the Table 2 MIXED12 workload through the 6 MB cache |
//! | `access_batch` | the same MIXED12 stream via `access_batch` chunks |
//! | `engine_sweep_x4` | four SPEC4 experiments fanned out through `Engine` |
//! | `serve_mt:<n>` | 4-tenant molserve replay on n OS threads (smoke: n=1) |
//!
//! ```text
//! molbench                                   # full suite, writes results/BENCH_<date>.json
//! molbench --smoke                           # reduced scale for CI
//! molbench --compare results/BENCH_baseline.json   # exit 1 on >20% regression
//! ```
//!
//! Built with `--features stage-profiler`, a separate profiled pass also
//! reports where the *host* nanoseconds go across the five pipeline
//! stages, next to the simulated-cycle split; default builds print the
//! split as unavailable and stay bit-identical on the access path.

use molcache_bench::experiments::table2;
use molcache_bench::harness::{molecular_cache, run_workload_on, Engine};
use molcache_bench::machine::MachineInfo;
use molcache_bench::report::{
    compare, floor_check, regressions, render_comparison, scale_fairness_warning, today_utc,
    BenchDoc, StageProfileRecord, WorkloadResult, REGRESSION_TOLERANCE,
};
use molcache_bench::stopwatch::{machine_line, measure, measure_paired, section, Timing};
use molcache_bench::workloads::{
    cache_1mb, miss_storm_cache, miss_storm_requests, mixed12_requests, single_requests, SINGLES,
};
use molcache_core::{MolecularCache, RegionPolicy};
use molcache_serve::{replay, CacheService, ReplayOptions};
use molcache_sim::{CacheModel, Request};
use molcache_trace::presets::Benchmark;
use std::time::{Duration, Instant};

/// Worker count of the `engine_sweep_x4` workload (fixed, not
/// host-derived: workload definitions must be identical across machines
/// for `--compare` to match them up).
const SWEEP_JOBS: usize = 4;

/// Chunk size of the `access_batch` workload — matches the batched
/// driver in `molcache_sim::cmp`.
const BATCH_CHUNK: usize = 1024;

use molcache_bench::workloads::SERVE_TENANTS;

/// Workload-name prefixes the `--floor` gate holds to a strict win: the
/// single-stream workloads (the memo front-end's beneficiaries) and the
/// Ulmo-dominated `miss_storm` (the cached search lists' beneficiary).
const FLOOR_PREFIXES: &[&str] = &["single:", "miss_storm"];

/// Noise allowance of the `--floor` gate, as a fraction of the floor
/// throughput. On miss-dominated workloads memo-on vs memo-off is a
/// tie in expectation (the miss-path overhaul left the memo nothing to
/// shortcut there), and same-job best-of-N still swings ±5–10 % on the
/// shared bimodally-throttled hosts — a literally strict floor would
/// fail at random on a tie, so the gate fails only on a shortfall past
/// this allowance (a structural pessimization on these paths costs far
/// more; pre-overhaul the miss pipeline was ~5× slower).
const FLOOR_TOLERANCE: f64 = 0.10;

/// Thread counts the `serve_mt` family sweeps in a full run. Smoke runs
/// keep only the single-thread variant, which is what the CI baseline
/// gates — multi-thread wall-clock depends on the host's core count.
const SERVE_THREADS: [usize; 3] = [1, 2, 4];

#[derive(Debug, Clone)]
struct Args {
    smoke: bool,
    refs: u64,
    samples: usize,
    budget: Duration,
    seed: u64,
    out_dir: String,
    out_file: Option<String>,
    write: bool,
    compare_to: Option<String>,
    floor: Option<String>,
    tolerance: f64,
    profile_every: u64,
    memo: bool,
    paired_floor: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: molbench [--smoke] [--refs N] [--samples N] [--budget-ms N]\n\
         \u{20}              [--seed N] [--out DIR] [--out-file NAME] [--no-write]\n\
         \u{20}              [--compare FILE] [--floor FILE] [--tolerance F]\n\
         \u{20}              [--no-memo] [--paired-floor] [--profile-every N]\n\
         \u{20} --smoke         reduced scale (CI): fewer refs, tighter budget\n\
         \u{20} --refs          accesses per timed iteration (default 100000)\n\
         \u{20} --samples       max timed iterations per workload (default 15)\n\
         \u{20} --budget-ms     per-workload sampling budget (default 1500)\n\
         \u{20} --out           directory for BENCH_<date>.json (default results)\n\
         \u{20} --out-file      record file name inside the out dir (default\n\
         \u{20}                 BENCH_<date>.json; use to keep several same-day\n\
         \u{20}                 records apart, e.g. BENCH_<date>-memo-off.json)\n\
         \u{20} --no-write      skip writing the BENCH_<date>.json record\n\
         \u{20} --no-memo       disable the memoization front-end for the run\n\
         \u{20}                 (measures the raw staged pipeline)\n\
         \u{20} --compare FILE  diff against a baseline record; exit 1 when any\n\
         \u{20}                 workload regresses by more than the tolerance\n\
         \u{20} --floor FILE    exit 1 when any single:* or miss_storm workload is\n\
         \u{20}                 >10% slower than in FILE (CI's strict-win gate,\n\
         \u{20}                 with a noise allowance for tied workloads)\n\
         \u{20} --paired-floor  re-run the floor-gated workloads memo-on vs\n\
         \u{20}                 memo-off with interleaved samples in this process\n\
         \u{20}                 and exit 1 past the same 10% allowance (immune to\n\
         \u{20}                 cross-run host drift; CI's memo gate)\n\
         \u{20} --tolerance F   regression tolerance (default 0.20 = 20%)\n\
         \u{20} --profile-every sample stride of the stage profiler (default 64;\n\
         \u{20}                 needs a build with --features stage-profiler)"
    );
    std::process::exit(2);
}

/// The paired memo floor gate (`--paired-floor`): re-runs every
/// floor-gated workload twice — memoization on and off — with samples
/// interleaved inside this very process, so both sides of each
/// comparison see the same host frequency mode (see
/// `stopwatch::measure_paired`; cross-run A/B records on the shared
/// hosts drift by ±15 %-class, which dwarfs the margins under test on
/// miss-dominated workloads). Fails when memo-on's best sample falls
/// more than `FLOOR_TOLERANCE` below memo-off's on any gated workload.
/// Returns the violating workload names.
fn paired_floor_gate(args: &Args) -> Vec<String> {
    section("paired memo floor");
    let mut violations = Vec::new();
    let mut gate =
        |name: &str, reqs: &[Request], mut on: MolecularCache, mut off: MolecularCache| {
            let (t_on, t_off) = measure_paired(
                args.samples,
                args.budget,
                &mut || {
                    for req in reqs {
                        std::hint::black_box(on.access(*req));
                    }
                },
                &mut || {
                    for req in reqs {
                        std::hint::black_box(off.access(*req));
                    }
                },
            );
            let aps = |t: &Timing| args.refs as f64 / t.min_ns().max(1) as f64 * 1e9;
            let (aps_on, aps_off) = (aps(&t_on), aps(&t_off));
            let ok = aps_on >= aps_off * (1.0 - FLOOR_TOLERANCE);
            println!(
                "{name:<24} memo-on {aps_on:>12.0} acc/s   memo-off {aps_off:>12.0} acc/s   {}",
                if ok { "ok" } else { "BELOW FLOOR" }
            );
            if !ok {
                violations.push(name.to_string());
            }
        };

    for bm in SINGLES {
        let reqs = single_requests(bm, args.refs, args.seed);
        let name = format!("single:{}", bm.name().to_ascii_lowercase());
        let mut on = cache_1mb(args.seed);
        on.set_memo_front(true);
        let mut off = cache_1mb(args.seed);
        off.set_memo_front(false);
        gate(&name, &reqs, on, off);
    }
    let reqs = miss_storm_requests(args.refs, args.seed);
    gate(
        "miss_storm",
        &reqs,
        miss_storm_cache(args.seed, true),
        miss_storm_cache(args.seed, false),
    );
    violations
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        refs: 100_000,
        samples: 15,
        budget: Duration::from_millis(1_500),
        seed: 7,
        out_dir: "results".into(),
        out_file: None,
        write: true,
        compare_to: None,
        floor: None,
        tolerance: REGRESSION_TOLERANCE,
        profile_every: 64,
        memo: true,
        paired_floor: false,
    };
    let mut refs_set = false;
    let mut budget_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--refs" => {
                args.refs = value().parse().unwrap_or_else(|_| usage());
                refs_set = true;
            }
            "--samples" => args.samples = value().parse().unwrap_or_else(|_| usage()),
            "--budget-ms" => {
                args.budget = Duration::from_millis(value().parse().unwrap_or_else(|_| usage()));
                budget_set = true;
            }
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out_dir = value(),
            "--out-file" => args.out_file = Some(value()),
            "--no-write" => args.write = false,
            "--no-memo" => args.memo = false,
            "--paired-floor" => args.paired_floor = true,
            "--compare" => args.compare_to = Some(value()),
            "--floor" => args.floor = Some(value()),
            "--tolerance" => args.tolerance = value().parse().unwrap_or_else(|_| usage()),
            "--profile-every" => args.profile_every = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.smoke {
        if !refs_set {
            args.refs = 20_000;
        }
        // Keep the full sample count at smoke scale: the gate statistic
        // is best-of-N, and a deeper N is what makes it noise-robust.
        if !budget_set {
            args.budget = Duration::from_millis(600);
        }
    }
    if args.refs == 0 || args.samples == 0 || args.tolerance < 0.0 {
        usage();
    }
    args
}

/// One line of memo front-end effectiveness for a finished workload.
fn memo_line(cache: &MolecularCache) -> String {
    match cache.memo_stats() {
        Some(s) if s.enabled => format!(
            "  memo: {} hits / {} lookups ({:.1}% hit rate), {} stale, {} generation bumps",
            s.hits,
            s.lookups(),
            s.hit_rate() * 100.0,
            s.stale,
            s.generation_bumps,
        ),
        Some(_) => "  memo: disabled (--no-memo)".into(),
        None => "  memo: not compiled in (built without the memo-front feature)".into(),
    }
}

/// Runs the whole suite, printing one human + one `#BENCH` line per
/// workload, and returns the normalized results in suite order.
fn run_suite(args: &Args) -> Vec<WorkloadResult> {
    let mut results = Vec::new();
    let mut record = |name: &str, accesses: u64, t: &Timing| {
        println!("{}", machine_line(name, Some(accesses), t));
        results.push(WorkloadResult::from_timing(name, accesses, t));
    };

    section("single-stream");
    for bm in SINGLES {
        let reqs = single_requests(bm, args.refs, args.seed);
        let mut cache = cache_1mb(args.seed);
        cache.set_memo_front(args.memo);
        let t = measure(args.samples, args.budget, &mut || {
            for req in &reqs {
                std::hint::black_box(cache.access(*req));
            }
        });
        record(
            &format!("single:{}", bm.name().to_ascii_lowercase()),
            args.refs,
            &t,
        );
        println!("{}", memo_line(&cache));
    }

    section("miss_storm");
    // The dedicated Ulmo gate statistic: the region is grown to span
    // every tile of the cluster, then bombarded with uniform-random
    // lines, so virtually every access misses the home tile and drives
    // the cross-tile search over all three remote tiles.
    let reqs = miss_storm_requests(args.refs, args.seed);
    let mut cache = miss_storm_cache(args.seed, args.memo);
    let t = measure(args.samples, args.budget, &mut || {
        for req in &reqs {
            std::hint::black_box(cache.access(*req));
        }
    });
    record("miss_storm", args.refs, &t);
    println!("{}", memo_line(&cache));

    section("mixed12");
    let reqs = mixed12_requests(args.refs, args.seed);
    let mut cache = table2::molecular_6mb(RegionPolicy::Randy, args.seed);
    cache.set_memo_front(args.memo);
    let t = measure(args.samples, args.budget, &mut || {
        for req in &reqs {
            std::hint::black_box(cache.access(*req));
        }
    });
    record("mixed12", args.refs, &t);
    println!("{}", memo_line(&cache));

    section("access_batch");
    let mut cache = table2::molecular_6mb(RegionPolicy::Randy, args.seed);
    cache.set_memo_front(args.memo);
    let t = measure(args.samples, args.budget, &mut || {
        for chunk in reqs.chunks(BATCH_CHUNK) {
            std::hint::black_box(cache.access_batch(chunk));
        }
    });
    record("access_batch", args.refs, &t);
    println!("{}", memo_line(&cache));

    section("engine");
    let per_item = (args.refs / SWEEP_JOBS as u64).max(1);
    let seed = args.seed;
    let memo = args.memo;
    let t = measure(args.samples, args.budget, &mut || {
        let engine = Engine::new(SWEEP_JOBS);
        let summaries = engine.run(vec![1u64, 2, 3, 4], |item| {
            let mut cache = molecular_cache(1 << 20, 1, 4, RegionPolicy::Randy, 0.1, item);
            cache.set_memo_front(memo);
            run_workload_on(
                &Benchmark::SPEC4,
                &mut cache,
                per_item,
                seed.wrapping_add(item),
            )
        });
        std::hint::black_box(summaries);
    });
    record("engine_sweep_x4", per_item * SWEEP_JOBS as u64, &t);

    section("serve_mt");
    // Interleaved multi-tenant replay through the sharded service: the
    // trace set and the per-shard caches are identical across thread
    // counts (the replay is deterministic by construction), so the
    // variants differ only in wall-clock. Each timed iteration builds a
    // fresh service so every sample replays against cold shards.
    let per_tenant = (args.refs / SERVE_TENANTS as u64).max(1);
    let traces = molcache_trace::tenants::tenant_traces(SERVE_TENANTS, per_tenant, args.seed);
    let memo = args.memo;
    let serve_seed = args.seed;
    let threads: &[usize] = if args.smoke {
        &SERVE_THREADS[..1]
    } else {
        &SERVE_THREADS
    };
    for &n in threads {
        let t = measure(args.samples, args.budget, &mut || {
            let service = CacheService::new(SERVE_TENANTS, |i| {
                let mut cache = molecular_cache(
                    1 << 20,
                    1,
                    4,
                    RegionPolicy::Randy,
                    0.1,
                    serve_seed.wrapping_add(i as u64),
                );
                cache.set_memo_front(memo);
                cache
            });
            let report = replay(
                &service,
                &traces,
                ReplayOptions {
                    threads: n,
                    chunk: 256,
                },
            )
            .expect("replay traffic is well-formed");
            std::hint::black_box(report);
        });
        record(
            &format!("serve_mt:{n}"),
            per_tenant * SERVE_TENANTS as u64,
            &t,
        );
    }

    results
}

/// Runs the profiled MIXED12 pass and renders the host-time split next
/// to the simulated-cycle split. Returns the record for the JSON doc, or
/// `None` when the binary was built without the `stage-profiler`
/// feature.
fn run_stage_profile(args: &Args) -> Option<StageProfileRecord> {
    section("stage wall-time profile");
    let reqs = mixed12_requests(args.refs, args.seed);
    let mut cache = table2::molecular_6mb(RegionPolicy::Randy, args.seed);
    cache.set_memo_front(args.memo);
    cache.enable_stage_profiler(args.profile_every);
    let wall = Instant::now();
    for req in &reqs {
        std::hint::black_box(cache.access(*req));
    }
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let Some(profile) = cache.stage_wall_profile() else {
        println!(
            "stage profiler not compiled in; rebuild with \
             `--features stage-profiler` for the host-time split"
        );
        return None;
    };
    let activity = cache.activity();
    let sim_total = activity.stages.total_cycles().max(1);
    let host_total = profile.total_sampled_ns().max(1);
    println!(
        "mixed12, {} accesses, every {}th sampled ({} sampled, {} ns wall):",
        args.refs, args.profile_every, profile.sampled_accesses, wall_ns
    );
    println!(
        "  {:<12} {:>14} {:>7} {:>14} {:>7}",
        "stage", "sim-cycles", "sim-%", "host-ns", "host-%"
    );
    for (stage, totals) in activity.stages.iter() {
        let host_ns = profile.stage_ns_of(stage);
        println!(
            "  {:<12} {:>14} {:>6.1}% {:>14} {:>6.1}%",
            stage.name(),
            totals.cycles,
            totals.cycles as f64 * 100.0 / sim_total as f64,
            host_ns,
            host_ns as f64 * 100.0 / host_total as f64,
        );
    }
    Some(StageProfileRecord {
        sample_every: profile.sample_every,
        sampled_accesses: profile.sampled_accesses,
        stages: profile
            .iter()
            .map(|(stage, ns)| (stage.name().to_string(), ns))
            .collect(),
    })
}

fn main() {
    let args = parse_args();
    let machine = MachineInfo::detect();
    println!(
        "molbench: {} ({} cores), {}, rev {}{}",
        machine.cpu_model,
        machine.cores,
        machine.rustc,
        machine.git_sha,
        if args.smoke { " [smoke]" } else { "" },
    );

    let workloads = run_suite(&args);
    let stage_profile = run_stage_profile(&args);

    let doc = BenchDoc {
        date: today_utc(),
        smoke: args.smoke,
        memo: Some(cfg!(feature = "memo-front") && args.memo),
        machine,
        workloads,
        stage_profile,
    };

    println!();
    for w in &doc.workloads {
        println!(
            "{:<24} {:>10.1} ns/access (median)   {:>12.0} accesses/sec (best)",
            w.name, w.median_ns_per_access, w.accesses_per_sec
        );
    }

    let json = match doc.to_json() {
        Ok(json) => json,
        Err(e) => {
            eprintln!("molbench: BENCH record serialization failed: {e}");
            std::process::exit(1);
        }
    };
    if args.write {
        let file_name = args.out_file.clone().unwrap_or_else(|| doc.file_name());
        let path = std::path::Path::new(&args.out_dir).join(file_name);
        if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("molbench: cannot create {}: {e}", args.out_dir);
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("molbench: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
    }

    if let Some(baseline_path) = &args.compare_to {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("molbench: cannot read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline = match BenchDoc::from_json(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("molbench: invalid baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        // Stderr, never stdout: piped-JSON workflows must not see it.
        if let Some(warning) = scale_fairness_warning(&baseline, &doc) {
            eprintln!("{warning}");
        }
        let deltas = compare(&baseline, &doc, args.tolerance);
        println!(
            "\ncomparison against {baseline_path} ({}, {}):",
            baseline.date, baseline.machine.cpu_model
        );
        print!("{}", render_comparison(&deltas, args.tolerance));
        let failed = regressions(&deltas);
        if !failed.is_empty() {
            eprintln!(
                "molbench: {} workload(s) regressed beyond {:.0}%",
                failed.len(),
                args.tolerance * 100.0
            );
            std::process::exit(1);
        }
        println!("no regressions beyond {:.0}%", args.tolerance * 100.0);
    }

    if let Some(floor_path) = &args.floor {
        let text = match std::fs::read_to_string(floor_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("molbench: cannot read floor record {floor_path}: {e}");
                std::process::exit(1);
            }
        };
        let floor = match BenchDoc::from_json(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("molbench: invalid floor record {floor_path}: {e}");
                std::process::exit(1);
            }
        };
        if let Some(warning) = scale_fairness_warning(&floor, &doc) {
            eprintln!("{warning}");
        }
        let violations = floor_check(&floor, &doc, FLOOR_PREFIXES, FLOOR_TOLERANCE);
        if violations.is_empty() {
            println!("\nno single:*/miss_storm workload below the floor record {floor_path}");
        } else {
            for v in &violations {
                eprintln!(
                    "molbench: {} fell below the floor record: {} acc/s vs {} acc/s",
                    v.name,
                    v.current_aps
                        .map_or("missing".to_string(), |aps| format!("{aps:.0}")),
                    v.floor_aps.round(),
                );
            }
            eprintln!(
                "molbench: {} floor-gated workload(s) slower than {floor_path}",
                violations.len()
            );
            std::process::exit(1);
        }
    }

    if args.paired_floor {
        let violations = paired_floor_gate(&args);
        if violations.is_empty() {
            println!("\npaired memo floor clean: no single:*/miss_storm workload below memo-off");
        } else {
            for name in &violations {
                eprintln!("molbench: {name} fell below the paired memo-off floor");
            }
            eprintln!(
                "molbench: {} workload(s) below the paired memo floor",
                violations.len()
            );
            std::process::exit(1);
        }
    }
}
