//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [table1|fig5|table2|table4|fig6|table5|ablations|all]
//!       [--scale smoke|quick|paper] [--refs N] [--json DIR] [--jobs N]
//! ```
//!
//! With `--json DIR` each experiment also writes a machine-readable
//! record as `DIR/<id>.json`. With `--jobs N` independent experiment
//! points fan out over N worker threads; the output is byte-identical
//! to `--jobs 1` because every point owns its cache and trace sources
//! and results are merged in a fixed order.

use molcache_bench::experiments::{ablations, fig5, fig6, table1, table2, table4, table5};
use molcache_bench::{Engine, ExperimentScale};
use std::io::Write as _;

struct Options {
    targets: Vec<String>,
    scale: ExperimentScale,
    json_dir: Option<String>,
    jobs: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        targets: Vec::new(),
        scale: ExperimentScale::Quick,
        json_dir: None,
        jobs: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                opts.scale = match v.as_str() {
                    "smoke" => ExperimentScale::Smoke,
                    "quick" => ExperimentScale::Quick,
                    "paper" => ExperimentScale::Paper,
                    other => {
                        eprintln!("unknown scale `{other}` (smoke|quick|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--refs" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) => opts.scale = ExperimentScale::Custom(n),
                    Err(_) => {
                        eprintln!("--refs expects a number, got `{v}`");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => opts.jobs = n,
                    _ => {
                        eprintln!("--jobs expects a positive number, got `{v}`");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => opts.json_dir = args.next(),
            other => opts.targets.push(other.to_string()),
        }
    }
    if opts.targets.is_empty() {
        opts.targets.push("all".to_string());
    }
    opts
}

fn write_json(dir: &Option<String>, id: &str, json: String) {
    let Some(dir) = dir else { return };
    let path = std::path::Path::new(dir).join(format!("{id}.json"));
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|_| std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn main() {
    let opts = parse_args();
    let scale = opts.scale;
    let engine = Engine::new(opts.jobs);
    let all = opts.targets.iter().any(|t| t == "all");
    let wants = |name: &str| all || opts.targets.iter().any(|t| t == name);
    let start = std::time::Instant::now();

    if wants("table1") {
        let t = table1::run_with(scale, &engine);
        println!("{}", t.render());
        write_json(&opts.json_dir, "table1", t.record().to_json());
    }
    if wants("fig5") {
        for graph in [fig5::Graph::A, fig5::Graph::B] {
            let f = fig5::run_with(graph, scale, &engine);
            println!("{}", f.render());
            write_json(&opts.json_dir, &f.record().id.clone(), f.record().to_json());
        }
    }
    // Table 2 feeds Table 5; run them together so the measurement is shared.
    let mut t2_cache = None;
    if wants("table2") {
        let t = table2::run_with(scale, &engine);
        println!("{}", t.render());
        write_json(&opts.json_dir, "table2", t.record().to_json());
        t2_cache = Some(t);
    }
    if wants("table4") {
        let t = table4::run_with(scale, &engine);
        println!("{}", t.render());
        write_json(&opts.json_dir, "table4", t.record().to_json());
    }
    if wants("fig6") {
        let f = fig6::run_with(scale, &engine);
        println!("{}", f.render());
        write_json(&opts.json_dir, "fig6", f.record().to_json());
    }
    if wants("table5") {
        let t = match &t2_cache {
            Some(t2) => table5::run_from_table2(t2),
            None => table5::run_with(scale, &engine),
        };
        println!("{}", t.render());
        write_json(&opts.json_dir, "table5", t.record().to_json());
    }
    if wants("ablations") {
        println!("{}", ablations::run_with(scale, &engine));
        write_json(
            &opts.json_dir,
            "ablations",
            ablations::record_with(scale, &engine).to_json(),
        );
    }
    eprintln!(
        "done in {:.1}s ({} references per experiment, {} jobs)",
        start.elapsed().as_secs_f64(),
        scale.references(),
        engine.jobs()
    );
}
