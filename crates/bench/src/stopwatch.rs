//! Wall-clock benchmark runner shared by the `benches/` targets and the
//! `molbench` harness.
//!
//! The workspace builds without crates.io access, so timing is done with
//! `std::time::Instant` instead of an external harness. [`measure`] warms
//! up once, then times each further iteration *individually* and keeps
//! the per-sample durations, so callers get min/median/mean statistics
//! instead of one mean over a single timing window — and the final
//! iteration's overshoot past the budget is a full sample of its own
//! rather than silently skewing a window-wide mean.
//!
//! [`bench`] and [`bench_throughput`] keep their original signatures for
//! the `benches/` targets; both now route through [`measure`] and print a
//! trailing machine-readable `#BENCH` line ([`machine_line`]) that shares
//! its [`Timing`] plumbing with `molbench`'s `BENCH_*.json` records.

use std::time::{Duration, Instant};

/// Per-sample cap for the convenience runners: enough resolution for
/// median statistics, small enough that fast bodies don't build
/// million-entry vectors before the budget check.
const MAX_SAMPLES: usize = 512;

/// The individually-timed iterations of one benchmark body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Timing {
    /// Duration of each timed iteration in nanoseconds, in run order.
    pub samples_ns: Vec<u64>,
}

impl Timing {
    /// Wraps an explicit sample list (tests, replayed records).
    pub fn from_samples(samples_ns: Vec<u64>) -> Timing {
        Timing { samples_ns }
    }

    /// Number of timed iterations.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Fastest iteration in nanoseconds (0 when no samples exist).
    pub fn min_ns(&self) -> u64 {
        self.samples_ns.iter().copied().min().unwrap_or(0)
    }

    /// Slowest iteration in nanoseconds (0 when no samples exist).
    pub fn max_ns(&self) -> u64 {
        self.samples_ns.iter().copied().max().unwrap_or(0)
    }

    /// Mean iteration time in nanoseconds over the individual samples.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().map(|&ns| ns as f64).sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Median iteration time in nanoseconds (midpoint average for even
    /// sample counts).
    pub fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] as f64 + sorted[mid] as f64) / 2.0
        } else {
            sorted[mid] as f64
        }
    }

    /// Total nanoseconds across all timed iterations.
    pub fn total_ns(&self) -> u64 {
        self.samples_ns.iter().sum()
    }
}

/// Runs `f` once untimed as warm-up, then times each further iteration
/// individually until `budget` worth of samples has accumulated or
/// `max_samples` samples exist — always taking at least one sample.
/// Only whole-sample time counts toward the budget and the statistics.
pub fn measure<F: FnMut()>(max_samples: usize, budget: Duration, f: &mut F) -> Timing {
    f(); // Warm-up iteration, excluded from timing.
    let max_samples = max_samples.max(1);
    let budget = budget.as_nanos();
    let mut samples_ns = Vec::new();
    let mut total: u128 = 0;
    loop {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos();
        total += ns;
        samples_ns.push(u64::try_from(ns).unwrap_or(u64::MAX));
        if samples_ns.len() >= max_samples || total >= budget {
            break;
        }
    }
    Timing { samples_ns }
}

/// Paired variant of [`measure`] for A/B floor gates on hosts whose
/// clock frequency drifts between slow modes: warms both closures up,
/// then alternates single timed samples of `a` and `b` so the two
/// sides see the same host conditions sample for sample — cross-run
/// A/B comparisons on such hosts swing by ±15 %-class, which is
/// exactly the drift the interleaving cancels. `budget` bounds the
/// combined timed work; each side always gets at least one sample and
/// both always end with equally many.
pub fn measure_paired<A: FnMut(), B: FnMut()>(
    max_samples: usize,
    budget: Duration,
    a: &mut A,
    b: &mut B,
) -> (Timing, Timing) {
    a(); // Warm-up iterations, excluded from timing.
    b();
    let max_samples = max_samples.max(1);
    let budget = budget.as_nanos();
    let (mut sa, mut sb) = (Vec::new(), Vec::new());
    let mut total: u128 = 0;
    loop {
        let start = Instant::now();
        a();
        let ns = start.elapsed().as_nanos();
        total += ns;
        sa.push(u64::try_from(ns).unwrap_or(u64::MAX));

        let start = Instant::now();
        b();
        let ns = start.elapsed().as_nanos();
        total += ns;
        sb.push(u64::try_from(ns).unwrap_or(u64::MAX));

        if sa.len() >= max_samples || total >= budget {
            break;
        }
    }
    (Timing::from_samples(sa), Timing::from_samples(sb))
}

/// One machine-readable result line, shared by the `benches/` targets
/// and `molbench`:
///
/// ```text
/// #BENCH name=<..> samples=<..> min_ns=<..> median_ns=<..> mean_ns=<..>
/// #BENCH name=<..> ... elems=<..> melem_per_s=<..>
/// ```
///
/// Throughput (present when `elements` per iteration is stated) is
/// derived from the median sample, the statistic least disturbed by
/// scheduler noise.
pub fn machine_line(name: &str, elements: Option<u64>, t: &Timing) -> String {
    let mut line = format!(
        "#BENCH name={} samples={} min_ns={} median_ns={:.0} mean_ns={:.0}",
        name,
        t.count(),
        t.min_ns(),
        t.median_ns(),
        t.mean_ns(),
    );
    if let Some(elems) = elements {
        let median = t.median_ns();
        let rate = if median > 0.0 {
            elems as f64 * 1e3 / median
        } else {
            0.0
        };
        line.push_str(&format!(" elems={elems} melem_per_s={rate:.3}"));
    }
    line
}

fn human(ns: f64) -> String {
    format!("{:.2?}", Duration::from_nanos(ns.max(0.0) as u64))
}

/// Runs `f` repeatedly for at least `budget` (at least one timed
/// iteration) and prints min/median/mean time per iteration plus the
/// machine-readable `#BENCH` line.
pub fn bench<F: FnMut()>(name: &str, budget: Duration, mut f: F) {
    let t = measure(MAX_SAMPLES, budget, &mut f);
    println!(
        "{name:<44} {:>5} samples   min {:>10}   median {:>10}   mean {:>10}",
        t.count(),
        human(t.min_ns() as f64),
        human(t.median_ns()),
        human(t.mean_ns()),
    );
    println!("{}", machine_line(name, None, &t));
}

/// Like [`bench`], but also reports throughput for a body that processes
/// `elements` items per iteration.
pub fn bench_throughput<F: FnMut()>(name: &str, elements: u64, budget: Duration, mut f: F) {
    let t = measure(MAX_SAMPLES, budget, &mut f);
    let median = t.median_ns();
    let rate = if median > 0.0 {
        elements as f64 * 1e3 / median
    } else {
        0.0
    };
    println!(
        "{name:<44} {:>5} samples   min {:>10}   median {:>10}   mean {:>10}   {rate:>8.2} Melem/s",
        t.count(),
        human(t.min_ns() as f64),
        human(t.median_ns()),
        human(t.mean_ns()),
    );
    println!("{}", machine_line(name, Some(elements), &t));
}

/// Prints a section header so multi-group bench binaries stay readable.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_body_and_returns() {
        let mut n = 0u32;
        bench("noop", Duration::from_millis(1), || n += 1);
        assert!(n >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn throughput_handles_fast_bodies() {
        bench_throughput("noop", 100, Duration::from_millis(1), || {
            std::hint::black_box(0u64);
        });
    }

    #[test]
    fn measure_collects_individual_samples() {
        let mut runs = 0u32;
        let t = measure(8, Duration::from_secs(60), &mut || runs += 1);
        assert_eq!(t.count(), 8, "sample cap bounds the run");
        assert_eq!(runs, 9, "8 timed samples plus one warm-up");
        assert!(t.min_ns() <= t.max_ns());
        assert!(t.total_ns() >= t.max_ns());
    }

    #[test]
    fn measure_respects_budget() {
        let t = measure(usize::MAX, Duration::from_millis(5), &mut || {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(t.count() >= 1);
        assert!(t.count() <= 4, "budget stops sampling: {}", t.count());
    }

    #[test]
    fn timing_statistics() {
        let t = Timing::from_samples(vec![40, 10, 20, 30]);
        assert_eq!(t.min_ns(), 10);
        assert_eq!(t.max_ns(), 40);
        assert_eq!(t.mean_ns(), 25.0);
        assert_eq!(t.median_ns(), 25.0, "midpoint of 20 and 30");
        let odd = Timing::from_samples(vec![7, 1, 9]);
        assert_eq!(odd.median_ns(), 7.0);
        assert_eq!(Timing::default().median_ns(), 0.0);
        assert_eq!(Timing::default().mean_ns(), 0.0);
        assert_eq!(Timing::default().min_ns(), 0);
    }

    #[test]
    fn measure_paired_alternates_and_balances_samples() {
        let (mut na, mut nb) = (0u32, 0u32);
        let (ta, tb) = measure_paired(4, Duration::from_secs(3600), &mut || na += 1, &mut || {
            nb += 1
        });
        // One warm-up each plus exactly max_samples timed iterations.
        assert_eq!(na, 5);
        assert_eq!(nb, 5);
        assert_eq!(ta.count(), 4);
        assert_eq!(tb.count(), 4);

        // A zero budget still takes one interleaved sample per side.
        let (ta, tb) = measure_paired(64, Duration::ZERO, &mut || {}, &mut || {});
        assert_eq!(ta.count(), 1);
        assert_eq!(tb.count(), 1);
    }

    #[test]
    fn machine_line_shape() {
        let t = Timing::from_samples(vec![1_000, 3_000]);
        assert_eq!(
            machine_line("x", None, &t),
            "#BENCH name=x samples=2 min_ns=1000 median_ns=2000 mean_ns=2000"
        );
        let with_rate = machine_line("x", Some(1_000), &t);
        assert!(
            with_rate.ends_with("elems=1000 melem_per_s=500.000"),
            "{with_rate}"
        );
        let empty = machine_line("x", Some(5), &Timing::default());
        assert!(empty.contains("melem_per_s=0.000"), "{empty}");
    }
}
