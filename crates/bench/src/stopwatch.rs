//! Tiny wall-clock benchmark runner for the `benches/` targets.
//!
//! The workspace builds without crates.io access, so the bench targets
//! time themselves with `std::time::Instant` instead of an external
//! harness: warm up once, then repeat the body until a time budget is
//! spent, and report mean wall-clock per iteration (and throughput when
//! the caller states elements per iteration). No statistics beyond the
//! mean — these benches exist to catch order-of-magnitude regressions
//! and to exercise the full experiment pipelines, not to resolve 1%
//! deltas.

use std::time::{Duration, Instant};

/// Runs `f` repeatedly for at least `budget` (at least one timed
/// iteration) and prints the mean time per iteration.
pub fn bench<F: FnMut()>(name: &str, budget: Duration, mut f: F) {
    f(); // Warm-up iteration, excluded from timing.
    let start = Instant::now();
    let mut iters: u32 = 0;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let per = start.elapsed() / iters;
    println!("{name:<44} {iters:>7} iters   {per:>12.2?}/iter");
}

/// Like [`bench`], but also reports throughput for a body that processes
/// `elements` items per iteration.
pub fn bench_throughput<F: FnMut()>(name: &str, elements: u64, budget: Duration, mut f: F) {
    f();
    let start = Instant::now();
    let mut iters: u32 = 0;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    let per = elapsed / iters;
    let rate = (elements as f64 * f64::from(iters)) / elapsed.as_secs_f64() / 1e6;
    println!("{name:<44} {iters:>7} iters   {per:>12.2?}/iter   {rate:>8.2} Melem/s");
}

/// Prints a section header so multi-group bench binaries stay readable.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_body_and_returns() {
        let mut n = 0u32;
        bench("noop", Duration::from_millis(1), || n += 1);
        assert!(n >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn throughput_handles_fast_bodies() {
        bench_throughput("noop", 100, Duration::from_millis(1), || {
            std::hint::black_box(0u64);
        });
    }
}
