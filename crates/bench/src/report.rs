//! `BENCH_*.json` — the `molcache-bench-v1` performance-trajectory
//! record, and the `--compare` regression math.
//!
//! A bench record is one dated snapshot of the simulator's wall-clock
//! performance: per-workload ns/access statistics (min/median/mean over
//! the individually-timed samples of [`crate::stopwatch::measure`]),
//! throughput in accesses/sec derived from the median sample, the
//! [`MachineInfo`] that produced the numbers, and — when the
//! `stage-profiler` feature ran — the sampled host-time split across the
//! pipeline stages. Records serialize through the workspace's hand-rolled
//! JSON ([`molcache_metrics::json`]) and round-trip exactly.
//!
//! [`compare`] turns two records into per-workload deltas;
//! `molbench --compare` exits non-zero when any workload regresses more
//! than [`REGRESSION_TOLERANCE`] or disappears from the suite, which is
//! what makes the checked-in `results/BENCH_baseline.json` a CI gate
//! rather than documentation.

use crate::machine::MachineInfo;
use crate::stopwatch::Timing;
use molcache_metrics::json::{parse, JsonError, Value};

/// Schema tag every bench record carries.
pub const BENCH_SCHEMA: &str = "molcache-bench-v1";

/// Default throughput-regression tolerance of the `--compare` gate: a
/// workload fails when its accesses/sec falls *strictly more* than 20 %
/// below the baseline.
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// Measured performance of one suite workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Stable workload name (`single:ammp`, `mixed12`, ...). Names key
    /// the `--compare` match, so they must not encode machine facts.
    pub name: String,
    /// Accesses driven per timed iteration.
    pub accesses_per_iter: u64,
    /// Timed iterations collected.
    pub samples: usize,
    /// Fastest iteration, normalized per access.
    pub min_ns_per_access: f64,
    /// Median iteration, normalized per access.
    pub median_ns_per_access: f64,
    /// Mean iteration, normalized per access.
    pub mean_ns_per_access: f64,
    /// Best-sample throughput, derived from the fastest iteration.
    /// The regression gate compares this statistic: host noise (noisy
    /// neighbors, CPU steal, frequency scaling) only ever *adds* time,
    /// so the fastest of N samples is far more stable across runs than
    /// the median — a real code regression still slows every sample,
    /// including the best one.
    pub accesses_per_sec: f64,
}

impl WorkloadResult {
    /// Normalizes a [`Timing`] into per-access statistics.
    pub fn from_timing(name: &str, accesses_per_iter: u64, t: &Timing) -> WorkloadResult {
        let per = |ns: f64| {
            if accesses_per_iter == 0 {
                0.0
            } else {
                ns / accesses_per_iter as f64
            }
        };
        let min = per(t.min_ns() as f64);
        WorkloadResult {
            name: name.to_string(),
            accesses_per_iter,
            samples: t.count(),
            min_ns_per_access: min,
            median_ns_per_access: per(t.median_ns()),
            mean_ns_per_access: per(t.mean_ns()),
            accesses_per_sec: if min > 0.0 { 1e9 / min } else { 0.0 },
        }
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            (
                "accesses_per_iter".into(),
                Value::Number(self.accesses_per_iter as f64),
            ),
            ("samples".into(), Value::Number(self.samples as f64)),
            (
                "ns_per_access".into(),
                Value::Object(vec![
                    ("min".into(), Value::Number(self.min_ns_per_access)),
                    ("median".into(), Value::Number(self.median_ns_per_access)),
                    ("mean".into(), Value::Number(self.mean_ns_per_access)),
                ]),
            ),
            (
                "accesses_per_sec".into(),
                Value::Number(self.accesses_per_sec),
            ),
        ])
    }

    fn from_value(v: &Value) -> Option<WorkloadResult> {
        let ns = v.get("ns_per_access")?;
        Some(WorkloadResult {
            name: v.get("name")?.as_str()?.to_string(),
            accesses_per_iter: v.get("accesses_per_iter")?.as_f64()? as u64,
            samples: v.get("samples")?.as_f64()? as usize,
            min_ns_per_access: ns.get("min")?.as_f64()?,
            median_ns_per_access: ns.get("median")?.as_f64()?,
            mean_ns_per_access: ns.get("mean")?.as_f64()?,
            accesses_per_sec: v.get("accesses_per_sec")?.as_f64()?,
        })
    }
}

/// Sampled host-time stage split stored in a bench record when the
/// `stage-profiler` feature ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfileRecord {
    /// Sampling stride the profiler ran with.
    pub sample_every: u64,
    /// Accesses actually timed.
    pub sampled_accesses: u64,
    /// `(stage name, wall nanoseconds)` in pipeline order.
    pub stages: Vec<(String, u64)>,
}

impl StageProfileRecord {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "sample_every".into(),
                Value::Number(self.sample_every as f64),
            ),
            (
                "sampled_accesses".into(),
                Value::Number(self.sampled_accesses as f64),
            ),
            (
                "stages".into(),
                Value::Array(
                    self.stages
                        .iter()
                        .map(|(name, ns)| {
                            Value::Object(vec![
                                ("stage".into(), Value::String(name.clone())),
                                ("wall_ns".into(), Value::Number(*ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Option<StageProfileRecord> {
        let stages = v
            .get("stages")?
            .as_array()?
            .iter()
            .map(|s| {
                Some((
                    s.get("stage")?.as_str()?.to_string(),
                    s.get("wall_ns")?.as_f64()? as u64,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(StageProfileRecord {
            sample_every: v.get("sample_every")?.as_f64()? as u64,
            sampled_accesses: v.get("sampled_accesses")?.as_f64()? as u64,
            stages,
        })
    }
}

/// One dated `molcache-bench-v1` record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// UTC date the record was taken (`YYYY-MM-DD`).
    pub date: String,
    /// Whether this was a `--smoke` (reduced-scale) run.
    pub smoke: bool,
    /// Whether the memoization front-end was active for the run. `None`
    /// on records predating the flag (readers treat unknown as "the
    /// build default"); serialized only when known, so old baselines
    /// keep round-tripping byte-exactly.
    pub memo: Option<bool>,
    /// Host that produced the numbers.
    pub machine: MachineInfo,
    /// One entry per suite workload, in suite order.
    pub workloads: Vec<WorkloadResult>,
    /// Host-time stage split, when the profiler feature ran.
    pub stage_profile: Option<StageProfileRecord>,
}

impl BenchDoc {
    /// The file name a record is stored under (`BENCH_<date>.json`).
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// The workload named `name`, if the record holds it.
    pub fn workload(&self, name: &str) -> Option<&WorkloadResult> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// The record as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schema".into(), Value::String(BENCH_SCHEMA.into())),
            ("date".into(), Value::String(self.date.clone())),
            ("smoke".into(), Value::Bool(self.smoke)),
        ];
        if let Some(memo) = self.memo {
            fields.push(("memo".into(), Value::Bool(memo)));
        }
        fields.extend([
            ("machine".into(), self.machine.to_value()),
            (
                "workloads".into(),
                Value::Array(
                    self.workloads
                        .iter()
                        .map(WorkloadResult::to_value)
                        .collect(),
                ),
            ),
        ]);
        if let Some(profile) = &self.stage_profile {
            fields.push(("stage_profile".into(), profile.to_value()));
        }
        Value::Object(fields)
    }

    /// Pretty-printed JSON of the record.
    pub fn to_json(&self) -> Result<String, JsonError> {
        self.to_value().to_json()
    }

    /// Parses a record, rejecting unknown schemas and malformed shapes.
    pub fn from_json(text: &str) -> Result<BenchDoc, String> {
        let v = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema field")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (want {BENCH_SCHEMA})"
            ));
        }
        let machine = v
            .get("machine")
            .and_then(MachineInfo::from_value)
            .ok_or("missing or malformed machine object")?;
        let workloads = v
            .get("workloads")
            .and_then(Value::as_array)
            .ok_or("missing workloads array")?
            .iter()
            .map(WorkloadResult::from_value)
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed workload entry")?;
        let stage_profile = match v.get("stage_profile") {
            Some(p) => Some(StageProfileRecord::from_value(p).ok_or("malformed stage_profile")?),
            None => None,
        };
        Ok(BenchDoc {
            date: v
                .get("date")
                .and_then(Value::as_str)
                .ok_or("missing date field")?
                .to_string(),
            smoke: matches!(v.get("smoke"), Some(Value::Bool(true))),
            memo: match v.get("memo") {
                Some(Value::Bool(b)) => Some(*b),
                _ => None,
            },
            machine,
            workloads,
            stage_profile,
        })
    }
}

/// Outcome of comparing one workload of a fresh run against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDelta {
    /// Workload name (from the baseline record).
    pub name: String,
    /// Baseline throughput in accesses/sec.
    pub baseline_aps: f64,
    /// Current throughput, `None` when the workload vanished from the
    /// fresh run.
    pub current_aps: Option<f64>,
    /// `current / baseline`, `None` when the workload is missing or the
    /// baseline throughput is zero (no meaningful ratio exists).
    pub ratio: Option<f64>,
    /// Whether this workload fails the gate.
    pub regressed: bool,
}

/// Per-workload throughput deltas of `current` against `baseline`.
///
/// A workload **regresses** when its accesses/sec falls strictly more
/// than `tolerance` below the baseline — a drop of exactly `tolerance`
/// still passes — or when it is missing from the current run (a
/// silently-shrinking suite must not read as "no regressions"). A
/// zero-throughput baseline cannot regress: there is no ratio to fall
/// below, so the delta carries `ratio: None` and passes. Workloads that
/// exist only in the current run are new coverage and produce no delta.
pub fn compare(baseline: &BenchDoc, current: &BenchDoc, tolerance: f64) -> Vec<WorkloadDelta> {
    baseline
        .workloads
        .iter()
        .map(|base| {
            let cur = current.workload(&base.name);
            match cur {
                None => WorkloadDelta {
                    name: base.name.clone(),
                    baseline_aps: base.accesses_per_sec,
                    current_aps: None,
                    ratio: None,
                    regressed: true,
                },
                Some(cur) => {
                    let (ratio, regressed) = if base.accesses_per_sec > 0.0 {
                        let ratio = cur.accesses_per_sec / base.accesses_per_sec;
                        (Some(ratio), ratio < 1.0 - tolerance)
                    } else {
                        (None, false)
                    };
                    WorkloadDelta {
                        name: base.name.clone(),
                        baseline_aps: base.accesses_per_sec,
                        current_aps: Some(cur.accesses_per_sec),
                        ratio,
                        regressed,
                    }
                }
            }
        })
        .collect()
}

/// The deltas that fail the gate.
pub fn regressions(deltas: &[WorkloadDelta]) -> Vec<&WorkloadDelta> {
    deltas.iter().filter(|d| d.regressed).collect()
}

/// The warning `--compare` emits when a smoke run is diffed against a
/// full-scale baseline (or vice versa): workloads with fixed
/// per-iteration setup (engine_sweep) amortize differently across
/// scales, so deltas are only fair scale-against-scale. Returns `None`
/// when the scales match. Centralized here so the routing is testable —
/// `molbench` must print it to **stderr**, never into the stdout JSON
/// pipelines consume.
pub fn scale_fairness_warning(baseline: &BenchDoc, current: &BenchDoc) -> Option<String> {
    if baseline.smoke == current.smoke {
        return None;
    }
    let label = |smoke: bool| if smoke { "smoke" } else { "full" };
    Some(format!(
        "molbench: warning: comparing a {} run against a {} baseline — \
         deltas are not scale-fair",
        label(current.smoke),
        label(baseline.smoke),
    ))
}

/// One workload that fell below its floor record (see [`floor_check`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FloorViolation {
    /// Workload name.
    pub name: String,
    /// Throughput of the floor record, in accesses/sec.
    pub floor_aps: f64,
    /// Throughput of the current run; `None` when the workload vanished.
    pub current_aps: Option<f64>,
}

/// The strict-win CI gate: every workload of `floor` whose name starts
/// with any of `prefixes` must be at least as fast in `current`, up to
/// a small `tolerance` (fraction of the floor throughput) absorbing
/// shared-host measurement noise. Used with `floor` = the
/// previous-build record and `current` = the optimized one — memo-on
/// vs memo-off since PR 7, and since the miss-path overhaul also the
/// miss-heavy workloads (`single:*` plus `miss_storm`), so neither the
/// memoization front-end nor the cached search lists can silently
/// become a pessimization on the paths they exist to accelerate.
///
/// The tolerance exists because the miss-path overhaul itself shrank
/// the margins it gates: with the miss pipeline ~5× faster, memo-on vs
/// memo-off is a tie in expectation on miss-dominated workloads
/// (`single:crc`, `miss_storm`), and same-job run-to-run noise on the
/// shared bimodally-throttled hosts swings best-of-N by ±5–10 %. A
/// literally strict floor would fail at random on a tie; the allowance
/// keeps the gate deterministic while still catching any structural
/// pessimization (pre-overhaul, breaking these paths cost 5×, not
/// 10 %). A workload missing from `current` is a violation;
/// zero-throughput floor entries cannot be fallen below.
pub fn floor_check(
    floor: &BenchDoc,
    current: &BenchDoc,
    prefixes: &[&str],
    tolerance: f64,
) -> Vec<FloorViolation> {
    floor
        .workloads
        .iter()
        .filter(|w| prefixes.iter().any(|p| w.name.starts_with(p)))
        .filter_map(|base| match current.workload(&base.name) {
            None => Some(FloorViolation {
                name: base.name.clone(),
                floor_aps: base.accesses_per_sec,
                current_aps: None,
            }),
            Some(cur) if cur.accesses_per_sec < base.accesses_per_sec * (1.0 - tolerance) => {
                Some(FloorViolation {
                    name: base.name.clone(),
                    floor_aps: base.accesses_per_sec,
                    current_aps: Some(cur.accesses_per_sec),
                })
            }
            Some(_) => None,
        })
        .collect()
}

/// Renders the comparison as the table `molbench --compare` prints.
pub fn render_comparison(deltas: &[WorkloadDelta], tolerance: f64) -> String {
    let mut out = format!(
        "{:<24} {:>14} {:>14} {:>8}  verdict (tolerance -{:.0}%)\n",
        "workload",
        "baseline acc/s",
        "current acc/s",
        "delta",
        tolerance * 100.0
    );
    for d in deltas {
        let current = match d.current_aps {
            Some(aps) => format!("{aps:.0}"),
            None => "missing".to_string(),
        };
        let delta = match d.ratio {
            Some(r) => format!("{:+.1}%", (r - 1.0) * 100.0),
            None => "-".to_string(),
        };
        let verdict = if d.regressed { "REGRESSED" } else { "ok" };
        out.push_str(&format!(
            "{:<24} {:>14.0} {:>14} {:>8}  {}\n",
            d.name, d.baseline_aps, current, delta, verdict
        ));
    }
    out
}

/// Today's UTC date as `YYYY-MM-DD` (the workspace builds without
/// chrono, so the civil-date conversion is hand-rolled).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    date_from_unix(secs)
}

/// `YYYY-MM-DD` (UTC) of a Unix timestamp in seconds.
pub fn date_from_unix(secs: u64) -> String {
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), via Howard Hinnant's
/// `civil_from_days` algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dates_from_unix_seconds() {
        assert_eq!(date_from_unix(0), "1970-01-01");
        assert_eq!(date_from_unix(86_399), "1970-01-01");
        assert_eq!(date_from_unix(86_400), "1970-01-02");
        assert_eq!(date_from_unix(1_704_067_200), "2024-01-01");
        // Leap day: 2024-02-29 00:00:00 UTC.
        assert_eq!(date_from_unix(1_709_164_800), "2024-02-29");
    }

    #[test]
    fn workload_from_timing_normalizes_per_access() {
        let t = Timing::from_samples(vec![2_000_000, 1_000_000, 3_000_000]);
        let w = WorkloadResult::from_timing("mixed12", 1_000, &t);
        assert_eq!(w.samples, 3);
        assert_eq!(w.min_ns_per_access, 1_000.0);
        assert_eq!(w.median_ns_per_access, 2_000.0);
        assert_eq!(w.mean_ns_per_access, 2_000.0);
        // Gate throughput comes from the best sample, not the median.
        assert_eq!(w.accesses_per_sec, 1e9 / 1_000.0);
    }

    #[test]
    fn zero_work_produces_zero_throughput_not_infinity() {
        let w = WorkloadResult::from_timing("empty", 0, &Timing::default());
        assert_eq!(w.accesses_per_sec, 0.0);
        assert_eq!(w.median_ns_per_access, 0.0);
    }
}
