//! Table 1 — inter-application interference on a shared 1 MB 4-way L2.
//!
//! The paper runs art/ammp/parser/mcf solo, in pairs, and all four
//! concurrently, showing that an application's miss rate depends on who
//! it shares the cache with. This experiment reproduces the table's
//! rows: solo miss rate per benchmark, each pair, and the four-way run.

use crate::harness::{asid_of, run_workload_on, Engine, ExperimentScale};
use molcache_metrics::record::{ConfigResult, ExperimentRecord, Metric};
use molcache_metrics::table::{fmt_f64, Table};
use molcache_sim::{CacheConfig, SetAssocCache};
use molcache_trace::presets::Benchmark;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Benchmarks running concurrently.
    pub apps: Vec<Benchmark>,
    /// Miss rate per benchmark, in `apps` order.
    pub miss_rates: Vec<f64>,
}

/// Full result of the Table 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Solo rows, pair rows, then the all-four row.
    pub rows: Vec<Row>,
    /// References simulated per row.
    pub references: u64,
}

fn shared_l2() -> SetAssocCache {
    SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).expect("1MB 4-way is valid"))
}

/// Runs the Table 1 experiment serially.
pub fn run(scale: ExperimentScale) -> Table1 {
    run_with(scale, &Engine::serial())
}

/// Runs the Table 1 experiment, fanning the rows (each an independent
/// cache + workload) across the engine's workers.
pub fn run_with(scale: ExperimentScale, engine: &Engine) -> Table1 {
    let refs = scale.references();
    let singles = Benchmark::SPEC4;

    // Row descriptors: solos, pairs (the paper's combinations), all four.
    let mut groups: Vec<Vec<Benchmark>> = singles.iter().map(|b| vec![*b]).collect();
    for i in 0..singles.len() {
        for j in (i + 1)..singles.len() {
            groups.push(vec![singles[i], singles[j]]);
        }
    }
    groups.push(singles.to_vec());

    let rows = engine.run(groups, |apps| {
        let mut cache = shared_l2();
        let summary = run_workload_on(&apps, &mut cache, refs, 42);
        let miss_rates = (0..apps.len())
            .map(|i| summary.app_miss_rate(asid_of(i)))
            .collect();
        Row { apps, miss_rates }
    });

    Table1 {
        rows,
        references: refs,
    }
}

impl Table1 {
    /// The miss rate of `bench` in the row where exactly `with` runs
    /// alongside it (empty `with` = solo row).
    pub fn miss_rate_of(&self, bench: Benchmark, with: &[Benchmark]) -> Option<f64> {
        self.rows.iter().find_map(|row| {
            if row.apps.len() != with.len() + 1 {
                return None;
            }
            let pos = row.apps.iter().position(|b| *b == bench)?;
            let others: Vec<Benchmark> = row.apps.iter().copied().filter(|b| *b != bench).collect();
            let matches = with.iter().all(|w| others.contains(w)) && others.len() == with.len();
            if matches {
                Some(row.miss_rates[pos])
            } else {
                None
            }
        })
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "1st app",
            "2nd concurrently executing app",
            "miss rate of app1",
            "miss rate of app2",
        ]);
        for row in &self.rows {
            match row.apps.len() {
                1 => {
                    t.row(vec![
                        row.apps[0].name().into(),
                        "-".into(),
                        fmt_f64(row.miss_rates[0], 3),
                        "-".into(),
                    ]);
                }
                2 => {
                    t.row(vec![
                        row.apps[0].name().into(),
                        row.apps[1].name().into(),
                        fmt_f64(row.miss_rates[0], 3),
                        fmt_f64(row.miss_rates[1], 3),
                    ]);
                }
                _ => {
                    for (i, b) in row.apps.iter().enumerate() {
                        t.row(vec![
                            b.name().into(),
                            "all four".into(),
                            fmt_f64(row.miss_rates[i], 3),
                            "-".into(),
                        ]);
                    }
                }
            }
        }
        t.render()
    }

    /// Machine-readable record.
    pub fn record(&self) -> ExperimentRecord {
        let mut results = Vec::new();
        for row in &self.rows {
            let label = row
                .apps
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join("+");
            results.push(ConfigResult {
                label,
                metrics: row
                    .apps
                    .iter()
                    .zip(&row.miss_rates)
                    .map(|(b, mr)| Metric::new(format!("miss_rate_{}", b.name()), *mr))
                    .collect(),
            });
        }
        ExperimentRecord {
            id: "table1".into(),
            workload: "art/ammp/mcf/parser on shared 1MB 4-way L2".into(),
            references: self.references,
            results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_shape_matches_paper() {
        let t = run(ExperimentScale::Smoke);
        // 4 solos + 6 pairs + 1 quad.
        assert_eq!(t.rows.len(), 11);
        let solo_parser = t.miss_rate_of(Benchmark::Parser, &[]).unwrap();
        let quad_parser = t
            .miss_rate_of(
                Benchmark::Parser,
                &[Benchmark::Art, Benchmark::Ammp, Benchmark::Mcf],
            )
            .unwrap();
        assert!(
            quad_parser > solo_parser,
            "parser must suffer under sharing: solo {solo_parser} quad {quad_parser}"
        );
        let solo_mcf = t.miss_rate_of(Benchmark::Mcf, &[]).unwrap();
        assert!(solo_mcf > 0.4, "mcf misses heavily even alone: {solo_mcf}");
    }

    #[test]
    fn render_and_record() {
        let t = run(ExperimentScale::Custom(20_000));
        let text = t.render();
        assert!(text.contains("all four"));
        let rec = t.record();
        assert_eq!(rec.id, "table1");
        assert_eq!(rec.results.len(), 11);
    }
}
