//! Tables 3 & 4 — CACTI power comparison.
//!
//! Table 3 lists the configurations (8 MB traditional caches with four
//! ports vs the 8 MB molecular cache: 8 KB molecules, 512 KB tiles, four
//! clusters of four tiles, one port per tile cluster). Table 4 reports,
//! at each traditional cache's operating frequency: the traditional
//! cache's power, the molecular cache's *worst-case* power (all molecules
//! of a tile enabled) and its *average* power under the mixed workload
//! (measured molecule-probe activity).

use crate::harness::{asid_of, run_workload_warmed, Engine, ExperimentScale};
use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_metrics::record::{ConfigResult, ExperimentRecord, Metric};
use molcache_metrics::table::{fmt_f64, Table};
use molcache_power::accounting::EnergyMeter;
use molcache_power::cacti::analyze;
use molcache_power::calibrate::{
    molecular_worst_power_w, molecule_report, paper_table4, table3_traditional,
};
use molcache_power::tech::TechNode;
use molcache_sim::{Activity, CacheModel};
use molcache_trace::presets::Benchmark;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Traditional-cache label (e.g. `"8MB 4way"`).
    pub label: String,
    /// Model operating frequency (MHz).
    pub freq_mhz: f64,
    /// Traditional cache power at that frequency (W).
    pub traditional_w: f64,
    /// Molecular worst-case power at that frequency (W).
    pub mol_worst_w: f64,
    /// Molecular average power under the mixed workload (W).
    pub mol_avg_w: f64,
    /// The paper's corresponding values, for the report.
    pub paper_freq_mhz: f64,
    /// Paper traditional power (W).
    pub paper_power_w: f64,
    /// Paper molecular worst-case power (W).
    pub paper_mol_worst_w: f64,
}

/// Full Table 4 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// One row per traditional configuration.
    pub rows: Vec<Row>,
    /// Average molecular energy per access measured on the workload (nJ).
    pub mol_avg_energy_nj: f64,
    /// References simulated for the activity measurement.
    pub references: u64,
}

/// Builds the Table 3 molecular cache: 8 MB, 4 clusters x 4 tiles x
/// 512 KB, Randy replacement, 25 % goal (the mixed-workload setting).
pub fn molecular_8mb(seed: u64) -> MolecularCache {
    let mut builder = MolecularConfig::builder();
    builder
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(4)
        .policy(RegionPolicy::Randy)
        .miss_rate_goal(0.25)
        .trigger(ResizeTrigger::GlobalAdaptive {
            initial_period: 25_000,
        })
        .seed(seed);
    // Spread the 12 applications over the four clusters (3 per cluster).
    for (i, _b) in Benchmark::MIXED12.iter().enumerate() {
        builder.assign_app_to_cluster(asid_of(i), i / 3);
    }
    MolecularCache::new(builder.build().expect("table 3 geometry is valid"))
}

/// Measures the mixed workload's molecular activity (for the average
/// power column).
pub fn measure_activity(scale: ExperimentScale) -> Activity {
    let mut cache = molecular_8mb(7);
    run_workload_warmed(&Benchmark::MIXED12, &mut cache, scale.references(), 7);
    cache.activity()
}

/// Runs the power comparison serially.
pub fn run(scale: ExperimentScale) -> Table4 {
    run_with(scale, &Engine::serial())
}

/// Runs the power comparison. The workload activity measurement is one
/// simulation and stays serial; the per-frequency CACTI rows are fanned
/// across the engine's workers.
pub fn run_with(scale: ExperimentScale, engine: &Engine) -> Table4 {
    let node = TechNode::nm70();
    let activity = measure_activity(scale);
    let meter = EnergyMeter::for_molecular(&molecule_report(&node), &node);
    let mol_avg_energy_nj = meter.energy_per_access_nj(&activity);

    let rows = engine.run(paper_table4().to_vec(), |anchor| {
        let report = analyze(&table3_traditional(anchor.assoc), &node);
        let freq = report.frequency_mhz();
        Row {
            label: anchor.name.to_string(),
            freq_mhz: freq,
            traditional_w: report.power_at_mhz(freq),
            mol_worst_w: molecular_worst_power_w(8 << 10, 512 << 10, &node, freq),
            mol_avg_w: mol_avg_energy_nj * freq / 1000.0,
            paper_freq_mhz: anchor.freq_mhz,
            paper_power_w: anchor.power_w,
            paper_mol_worst_w: anchor.mol_worst_w,
        }
    });
    Table4 {
        rows,
        mol_avg_energy_nj,
        references: scale.references(),
    }
}

impl Table4 {
    /// The molecular power advantage vs the 8 MB 4-way (the paper's
    /// headline 29 %).
    pub fn advantage_vs_4way(&self) -> f64 {
        let row = self
            .rows
            .iter()
            .find(|r| r.label.contains("4way"))
            .expect("4-way row present");
        1.0 - row.mol_worst_w / row.traditional_w
    }

    /// Renders Table 3 (configuration listing) and Table 4.
    pub fn render(&self) -> String {
        let mut t3 = Table::new(vec!["Parameter", "Molecular Cache", "Traditional Cache"]);
        t3.row(vec!["Total Cache Size".into(), "8MB".into(), "8MB".into()]);
        t3.row(vec!["Molecule Size".into(), "8KB".into(), "-".into()]);
        t3.row(vec!["Tile Size".into(), "512KB".into(), "-".into()]);
        t3.row(vec!["No. of tile-clusters".into(), "4".into(), "-".into()]);
        t3.row(vec![
            "No. of tiles per cluster".into(),
            "4".into(),
            "-".into(),
        ]);
        t3.row(vec![
            "No. of Read-Write ports".into(),
            "1 per tile cluster".into(),
            "4".into(),
        ]);
        t3.row(vec![
            "Associativity".into(),
            "adaptive".into(),
            "DM, 2, 4, 8".into(),
        ]);

        let mut t4 = Table::new(vec![
            "Cache type",
            "Freq (MHz)",
            "Power (W)",
            "mol worst (W)",
            "mol avg (W)",
            "paper: MHz/W/molW",
        ]);
        for r in &self.rows {
            t4.row(vec![
                r.label.clone(),
                fmt_f64(r.freq_mhz, 0),
                fmt_f64(r.traditional_w, 2),
                fmt_f64(r.mol_worst_w, 2),
                fmt_f64(r.mol_avg_w, 2),
                format!(
                    "{:.0}/{:.2}/{:.2}",
                    r.paper_freq_mhz, r.paper_power_w, r.paper_mol_worst_w
                ),
            ]);
        }
        format!(
            "Table 3 (configurations)\n{}\nTable 4 (CACTI @70nm)\n{}\nmolecular advantage vs 8MB 4way: {:.1}% (paper: 29%)\n",
            t3.render(),
            t4.render(),
            self.advantage_vs_4way() * 100.0
        )
    }

    /// Machine-readable record.
    pub fn record(&self) -> ExperimentRecord {
        ExperimentRecord {
            id: "table4".into(),
            workload: "mixed 12-benchmark activity on 8MB molecular".into(),
            references: self.references,
            results: self
                .rows
                .iter()
                .map(|r| ConfigResult {
                    label: r.label.clone(),
                    metrics: vec![
                        Metric::new("freq_mhz", r.freq_mhz),
                        Metric::new("traditional_w", r.traditional_w),
                        Metric::new("mol_worst_w", r.mol_worst_w),
                        Metric::new("mol_avg_w", r.mol_avg_w),
                    ],
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_in_paper_band() {
        let t = run(ExperimentScale::Custom(60_000));
        let adv = t.advantage_vs_4way();
        assert!(
            (0.18..=0.45).contains(&adv),
            "advantage {adv} outside band (paper: 0.29)"
        );
    }

    #[test]
    fn average_below_worst_case() {
        let t = run(ExperimentScale::Custom(60_000));
        for r in &t.rows {
            assert!(
                r.mol_avg_w <= r.mol_worst_w * 1.05,
                "{}: avg {} should not exceed worst {}",
                r.label,
                r.mol_avg_w,
                r.mol_worst_w
            );
        }
    }

    #[test]
    fn render_mentions_both_tables() {
        let t = run(ExperimentScale::Custom(30_000));
        let s = t.render();
        assert!(s.contains("Table 3"));
        assert!(s.contains("Table 4"));
        assert!(s.contains("advantage"));
    }
}
