//! Figure 5 — average deviation from the miss-rate goal vs cache size.
//!
//! Four SPEC benchmarks (art, ammp, mcf, parser) share caches of 1, 2, 4
//! and 8 MB. Baselines: shared direct-mapped, 2-, 4- and 8-way LRU
//! caches. Molecular caches use 4 tiles (tile = size/4) with Random and
//! Randy replacement. Graph A sets a 10 % miss-rate goal for all four
//! benchmarks; Graph B sets it for art, ammp and parser only (mcf, which
//! can never reach 10 %, is left unconstrained), which is what moves the
//! molecular cache's effectiveness threshold from 4 MB down to 2 MB.

use crate::harness::{asid_of, run_workload_warmed, Engine, ExperimentScale};
use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_metrics::deviation::{average_deviation, MissRateGoal};
use molcache_metrics::record::{ConfigResult, ExperimentRecord, Metric};
use molcache_metrics::table::{fmt_f64, Table};
use molcache_sim::replacement::Policy;
use molcache_sim::{CacheConfig, SetAssocCache};
use molcache_trace::presets::Benchmark;
use molcache_trace::Asid;

/// Which goal assignment a graph uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Graph {
    /// 10 % goal for all four benchmarks.
    A,
    /// 10 % goal for art/ammp/parser; mcf unconstrained.
    B,
}

/// The cache configurations compared in the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Shared set-associative LRU cache with this associativity.
    Traditional(u32),
    /// Molecular cache with this replacement policy.
    Molecular(RegionPolicy),
}

impl Config {
    /// All six configurations, in the figure's legend order.
    pub const ALL: [Config; 6] = [
        Config::Traditional(1),
        Config::Traditional(2),
        Config::Traditional(4),
        Config::Traditional(8),
        Config::Molecular(RegionPolicy::Random),
        Config::Molecular(RegionPolicy::Randy),
    ];

    /// Legend label.
    pub fn label(&self) -> String {
        match self {
            Config::Traditional(1) => "Direct Mapped".into(),
            Config::Traditional(a) => format!("{a}-way associative"),
            Config::Molecular(p) => format!("Molecular ({p})"),
        }
    }
}

/// One measured point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Cache size in bytes.
    pub size_bytes: u64,
    /// Configuration measured.
    pub config: Config,
    /// Average deviation from the goal.
    pub avg_deviation: f64,
    /// Per-application miss rates (workload order art, ammp, mcf, parser).
    pub miss_rates: Vec<f64>,
}

/// The full figure: one series per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Which graph (goal assignment).
    pub graph: Graph,
    /// Measured points (size-major, config-minor).
    pub points: Vec<Point>,
    /// References simulated per point.
    pub references: u64,
}

/// The sizes swept in the figure.
pub const SIZES: [u64; 4] = [1 << 20, 2 << 20, 4 << 20, 8 << 20];

/// The miss-rate goal of the figure.
pub const GOAL: f64 = 0.10;

/// ASID of mcf in the SPEC4 workload order (art, ammp, mcf, parser).
fn mcf_asid() -> Asid {
    let pos = Benchmark::SPEC4
        .iter()
        .position(|b| *b == Benchmark::Mcf)
        .expect("mcf in SPEC4");
    asid_of(pos)
}

fn goals_for(graph: Graph) -> (MissRateGoal, Vec<Asid>) {
    let scored: Vec<Asid> = match graph {
        Graph::A => (0..4).map(asid_of).collect(),
        Graph::B => (0..4).map(asid_of).filter(|a| *a != mcf_asid()).collect(),
    };
    (MissRateGoal::uniform(GOAL), scored)
}

/// Builds the figure's molecular cache: 1 cluster of 4 tiles, 8 KB
/// molecules. Under Graph B, mcf gets a high attainable goal so
/// Algorithm 1 stops feeding it molecules it cannot convert into hits.
pub fn molecular_for(graph: Graph, size: u64, policy: RegionPolicy) -> MolecularCache {
    let mut builder = MolecularConfig::builder();
    builder
        .molecule_size(8 * 1024)
        .tile_molecules((size / 4 / 8192) as usize)
        .tiles_per_cluster(4)
        .clusters(1)
        .policy(policy)
        .miss_rate_goal(GOAL)
        .trigger(ResizeTrigger::GlobalAdaptive {
            initial_period: 25_000,
        })
        .seed(42);
    if graph == Graph::B {
        builder.app_goal(mcf_asid(), 0.75);
    }
    MolecularCache::new(builder.build().expect("figure geometry is valid"))
}

/// Runs one configuration at one size and returns its point.
pub fn run_point(graph: Graph, size: u64, config: Config, scale: ExperimentScale) -> Point {
    let refs = scale.references();
    let (goals, scored) = goals_for(graph);
    let miss_rates: Vec<f64> = match config {
        Config::Traditional(assoc) => {
            let cfg = CacheConfig::new(size, assoc, 64).expect("figure geometry valid");
            let mut cache = SetAssocCache::new(cfg, Policy::Lru);
            let summary = run_workload_warmed(&Benchmark::SPEC4, &mut cache, refs, 42);
            (0..4).map(|i| summary.app_miss_rate(asid_of(i))).collect()
        }
        Config::Molecular(policy) => {
            let mut cache = molecular_for(graph, size, policy);
            let summary = run_workload_warmed(&Benchmark::SPEC4, &mut cache, refs, 42);
            (0..4).map(|i| summary.app_miss_rate(asid_of(i))).collect()
        }
    };
    let avg = average_deviation(
        scored
            .iter()
            .map(|a| (*a, miss_rates[(a.raw() - 1) as usize])),
        &goals,
    );
    Point {
        size_bytes: size,
        config,
        avg_deviation: avg,
        miss_rates,
    }
}

/// Runs the full figure for one graph serially.
pub fn run(graph: Graph, scale: ExperimentScale) -> Fig5 {
    run_with(graph, scale, &Engine::serial())
}

/// Runs the full figure for one graph, fanning the 24 (size, config)
/// points across the engine's workers.
pub fn run_with(graph: Graph, scale: ExperimentScale, engine: &Engine) -> Fig5 {
    let mut grid = Vec::new();
    for size in SIZES {
        for config in Config::ALL {
            grid.push((size, config));
        }
    }
    let points = engine.run(grid, |(size, config)| run_point(graph, size, config, scale));
    Fig5 {
        graph,
        points,
        references: scale.references(),
    }
}

impl Fig5 {
    /// Deviation of one configuration at one size.
    pub fn deviation(&self, size: u64, config: Config) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.size_bytes == size && p.config == config)
            .map(|p| p.avg_deviation)
    }

    /// Renders the figure as a series table (sizes as columns).
    pub fn render(&self) -> String {
        let mut headers = vec!["configuration".to_string()];
        headers.extend(SIZES.iter().map(|s| format!("{}MB", s >> 20)));
        let mut t = Table::new(headers);
        for config in Config::ALL {
            let mut row = vec![config.label()];
            for size in SIZES {
                row.push(fmt_f64(self.deviation(size, config).unwrap_or(f64::NAN), 3));
            }
            t.row(row);
        }
        let series: Vec<(String, Vec<f64>)> = Config::ALL
            .iter()
            .map(|c| {
                (
                    c.label(),
                    SIZES
                        .iter()
                        .map(|s| self.deviation(*s, *c).unwrap_or(f64::NAN))
                        .collect(),
                )
            })
            .collect();
        let chart = molcache_metrics::chart::series_chart(
            "deviation vs size",
            &SIZES
                .iter()
                .map(|s| format!("{}MB", s >> 20))
                .collect::<Vec<_>>(),
            &series,
            10,
        );
        format!(
            "Figure 5 Graph {:?} (avg deviation from {}% goal)\n{}\n{}",
            self.graph,
            (GOAL * 100.0) as u32,
            t.render(),
            chart
        )
    }

    /// Machine-readable record.
    pub fn record(&self) -> ExperimentRecord {
        ExperimentRecord {
            id: format!("fig5{}", if self.graph == Graph::A { "a" } else { "b" }),
            workload: "art/ammp/mcf/parser, shared caches 1-8MB".into(),
            references: self.references,
            results: self
                .points
                .iter()
                .map(|p| ConfigResult {
                    label: format!("{} @{}MB", p.config.label(), p.size_bytes >> 20),
                    metrics: vec![Metric::new("avg_deviation", p.avg_deviation)],
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_deviation_decreases_with_size() {
        let small = run_point(
            Graph::A,
            1 << 20,
            Config::Traditional(4),
            ExperimentScale::Custom(150_000),
        );
        let big = run_point(
            Graph::A,
            8 << 20,
            Config::Traditional(4),
            ExperimentScale::Custom(150_000),
        );
        assert!(
            big.avg_deviation < small.avg_deviation,
            "big {} vs small {}",
            big.avg_deviation,
            small.avg_deviation
        );
    }

    #[test]
    fn molecular_tracks_goal_at_large_size() {
        let p = run_point(
            Graph::A,
            8 << 20,
            Config::Molecular(RegionPolicy::Randy),
            ExperimentScale::Custom(400_000),
        );
        // mcf can never reach 10%, so its deviation (~0.6) dominates;
        // the other three should sit near the goal.
        for (i, b) in Benchmark::SPEC4.iter().enumerate() {
            if *b == Benchmark::Mcf {
                continue;
            }
            assert!(
                (p.miss_rates[i] - GOAL).abs() < 0.12,
                "{b} miss rate {} should be near the goal",
                p.miss_rates[i]
            );
        }
    }

    #[test]
    fn graph_b_excludes_mcf_from_scoring() {
        let (_, scored_a) = goals_for(Graph::A);
        let (_, scored_b) = goals_for(Graph::B);
        assert_eq!(scored_a.len(), 4);
        assert_eq!(scored_b.len(), 3);
        assert!(!scored_b.contains(&mcf_asid()));
    }

    #[test]
    fn labels() {
        assert_eq!(Config::Traditional(1).label(), "Direct Mapped");
        assert_eq!(Config::Traditional(8).label(), "8-way associative");
        assert_eq!(
            Config::Molecular(RegionPolicy::Randy).label(),
            "Molecular (Randy)"
        );
    }
}
