//! Figure 6 — hits per molecule (HPM), Random vs Randy.
//!
//! Runs the 12-benchmark mixed workload on the 6 MB molecular cache under
//! both replacement policies and reports per-application HPM, the
//! overall miss rates and the molecule usage. The paper finds Randy's HPM
//! higher for most applications, its overall miss rate ~9 % lower, and
//! its molecule usage ~5 % higher.

use crate::experiments::table2::molecular_6mb;
use crate::harness::{asid_of, run_workload_warmed, Engine, ExperimentScale};
use molcache_core::RegionPolicy;
use molcache_metrics::record::{ConfigResult, ExperimentRecord, Metric};
use molcache_metrics::table::Table;
use molcache_trace::presets::Benchmark;

/// Per-policy measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResult {
    /// The replacement policy.
    pub policy: RegionPolicy,
    /// HPM per application in [`Benchmark::MIXED12`] order.
    pub hpm: Vec<f64>,
    /// Overall miss rate.
    pub overall_miss_rate: f64,
    /// Time-averaged molecules used, summed over regions.
    pub molecules_used: f64,
}

/// The full Figure 6 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// Random's measurements.
    pub random: PolicyResult,
    /// Randy's measurements.
    pub randy: PolicyResult,
    /// References simulated per policy.
    pub references: u64,
}

fn run_policy(policy: RegionPolicy, refs: u64) -> PolicyResult {
    let mut cache = molecular_6mb(policy, 7);
    let summary = run_workload_warmed(&Benchmark::MIXED12, &mut cache, refs, 7);
    let snapshots = cache.snapshots();
    let hpm = (0..12)
        .map(|i| {
            snapshots
                .iter()
                .find(|s| s.asid == asid_of(i))
                .map(|s| s.hits_per_molecule)
                .unwrap_or(0.0)
        })
        .collect();
    let molecules_used = snapshots.iter().map(|s| s.avg_molecules).sum();
    PolicyResult {
        policy,
        hpm,
        overall_miss_rate: summary.global.miss_rate(),
        molecules_used,
    }
}

/// Runs the figure serially.
pub fn run(scale: ExperimentScale) -> Fig6 {
    run_with(scale, &Engine::serial())
}

/// Runs the figure, measuring the two policies concurrently.
pub fn run_with(scale: ExperimentScale, engine: &Engine) -> Fig6 {
    let refs = scale.references();
    let mut results = engine.run(vec![RegionPolicy::Random, RegionPolicy::Randy], |p| {
        run_policy(p, refs)
    });
    let randy = results.pop().expect("randy result");
    let random = results.pop().expect("random result");
    Fig6 {
        random,
        randy,
        references: refs,
    }
}

impl Fig6 {
    /// Number of applications where Randy's HPM beats Random's.
    pub fn randy_wins(&self) -> usize {
        self.randy
            .hpm
            .iter()
            .zip(&self.random.hpm)
            .filter(|(randy, random)| randy > random)
            .count()
    }

    /// Relative overall miss-rate improvement of Randy over Random
    /// (positive = Randy better; paper: ~9 %).
    pub fn randy_miss_improvement(&self) -> f64 {
        if self.random.overall_miss_rate == 0.0 {
            return 0.0;
        }
        1.0 - self.randy.overall_miss_rate / self.random.overall_miss_rate
    }

    /// Relative extra molecule usage of Randy (paper: ~5 %).
    pub fn randy_extra_molecules(&self) -> f64 {
        if self.random.molecules_used == 0.0 {
            return 0.0;
        }
        self.randy.molecules_used / self.random.molecules_used - 1.0
    }

    /// Renders the per-benchmark HPM table (log-scale plot data).
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["Benchmark", "HPM Random", "HPM Randy", "winner"]);
        for (i, b) in Benchmark::MIXED12.iter().enumerate() {
            let (rnd, rdy) = (self.random.hpm[i], self.randy.hpm[i]);
            t.row(vec![
                b.name().into(),
                format!("{rnd:.3e}"),
                format!("{rdy:.3e}"),
                if rdy > rnd { "Randy" } else { "Random" }.into(),
            ]);
        }
        format!(
            "Figure 6 (hits per molecule, mixed workload)\n{}\nRandy wins {}/12; overall miss rate improvement {:.1}% (paper ~9%); extra molecules {:.1}% (paper ~5%)\n",
            t.render(),
            self.randy_wins(),
            self.randy_miss_improvement() * 100.0,
            self.randy_extra_molecules() * 100.0
        )
    }

    /// Machine-readable record.
    pub fn record(&self) -> ExperimentRecord {
        let per_policy = |r: &PolicyResult| ConfigResult {
            label: format!("Molecular ({})", r.policy),
            metrics: {
                let mut m = vec![
                    Metric::new("overall_miss_rate", r.overall_miss_rate),
                    Metric::new("molecules_used", r.molecules_used),
                ];
                for (i, b) in Benchmark::MIXED12.iter().enumerate() {
                    m.push(Metric::new(format!("hpm_{}", b.name()), r.hpm[i]));
                }
                m
            },
        };
        ExperimentRecord {
            id: "fig6".into(),
            workload: "12-benchmark mixed on 6MB molecular".into(),
            references: self.references,
            results: vec![per_policy(&self.random), per_policy(&self.randy)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpm_positive_for_active_apps() {
        let f = run(ExperimentScale::Custom(120_000));
        let active_random = f.random.hpm.iter().filter(|h| **h > 0.0).count();
        assert!(
            active_random >= 10,
            "most apps should score: {active_random}"
        );
        assert!(f.random.molecules_used > 0.0);
        assert!(f.randy.molecules_used > 0.0);
    }

    #[test]
    fn render_contains_all_benchmarks() {
        let f = run(ExperimentScale::Custom(60_000));
        let s = f.render();
        for b in Benchmark::MIXED12 {
            assert!(s.contains(b.name()), "missing {b}");
        }
    }
}
