//! Design-choice ablations called out in §3.4 of the paper.
//!
//! The paper motivates several choices with one-line experimental
//! observations; these ablations make them measurable:
//!
//! * **Resize trigger** — constant vs global-adaptive vs
//!   per-application-adaptive periods ("adaptive schemes perform better
//!   than constant address schemes").
//! * **Initial allocation** — 2 molecules vs half a tile ("when small
//!   initial partition size is used frequent repartitions are required").
//! * **Growth chunk** — single-molecule increments vs chunked growth
//!   ("single molecule increments are less effective").
//! * **Line-size factor** — 1/2/4-line region blocks on a streaming
//!   workload (§3.2's spatial-locality motivation).
//! * **Replacement scheme** — Random vs Randy vs the future-work
//!   LRU-Direct scheme (§5: "a different scheme for replacements such as
//!   an LRU-Direct scheme needs to be evaluated").

use crate::harness::{asid_of, run_workload_on, run_workload_warmed, Engine, ExperimentScale};
use molcache_core::{
    InitialAllocation, MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger,
};
use molcache_metrics::deviation::{average_deviation, MissRateGoal};
use molcache_metrics::record::{ConfigResult, ExperimentRecord, Metric};
use molcache_metrics::table::{fmt_f64, Table};
use molcache_trace::presets::Benchmark;

const GOAL: f64 = 0.10;

fn base_builder(size: u64) -> MolecularConfigBuilderWrap {
    MolecularConfigBuilderWrap { size }
}

struct MolecularConfigBuilderWrap {
    size: u64,
}

impl MolecularConfigBuilderWrap {
    fn build<F>(&self, customize: F) -> MolecularCache
    where
        F: FnOnce(&mut molcache_core::MolecularConfigBuilder),
    {
        let mut b = MolecularConfig::builder();
        b.molecule_size(8 * 1024)
            .tile_molecules((self.size / 4 / 8192) as usize)
            .tiles_per_cluster(4)
            .clusters(1)
            .policy(RegionPolicy::Randy)
            .miss_rate_goal(GOAL)
            .seed(42);
        customize(&mut b);
        MolecularCache::new(b.build().expect("ablation geometry is valid"))
    }
}

/// One ablation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Variant label.
    pub label: String,
    /// Average deviation from the goal over the SPEC4 workload.
    pub avg_deviation: f64,
    /// Resize rounds executed.
    pub resize_rounds: u64,
    /// Failed (molecule-starved) allocations.
    pub failed_allocations: u64,
}

fn measure(mut cache: MolecularCache, refs: u64, label: String) -> AblationResult {
    let summary = run_workload_warmed(&Benchmark::SPEC4, &mut cache, refs, 42);
    let goals = MissRateGoal::uniform(GOAL);
    let avg = average_deviation(
        (0..4).map(|i| (asid_of(i), summary.app_miss_rate(asid_of(i)))),
        &goals,
    );
    AblationResult {
        label,
        avg_deviation: avg,
        resize_rounds: cache.resize_rounds(),
        failed_allocations: cache.failed_allocations(),
    }
}

/// Ablation A: resize trigger schemes on a 2 MB molecular cache.
pub fn resize_triggers(scale: ExperimentScale) -> Vec<AblationResult> {
    let refs = scale.references();
    let variants: Vec<(&str, ResizeTrigger)> = vec![
        ("constant(25k)", ResizeTrigger::Constant { period: 25_000 }),
        (
            "global-adaptive(25k)",
            ResizeTrigger::GlobalAdaptive {
                initial_period: 25_000,
            },
        ),
        (
            "per-app-adaptive(25k)",
            ResizeTrigger::PerAppAdaptive {
                initial_period: 25_000,
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(label, trigger)| {
            let cache = base_builder(2 << 20).build(|b| {
                b.trigger(trigger);
            });
            measure(cache, refs, label.to_string())
        })
        .collect()
}

/// Ablation B: initial allocation (2 molecules vs half tile vs 32).
pub fn initial_allocation(scale: ExperimentScale) -> Vec<AblationResult> {
    let refs = scale.references();
    let variants: Vec<(&str, InitialAllocation)> = vec![
        ("2 molecules", InitialAllocation::Molecules(2)),
        ("half tile", InitialAllocation::HalfTile),
        ("32 molecules", InitialAllocation::Molecules(32)),
    ];
    variants
        .into_iter()
        .map(|(label, alloc)| {
            let cache = base_builder(2 << 20).build(|b| {
                b.initial_allocation(alloc);
            });
            measure(cache, refs, label.to_string())
        })
        .collect()
}

/// Ablation C: growth chunk (single-molecule vs quarter-tile chunks).
pub fn growth_chunk(scale: ExperimentScale) -> Vec<AblationResult> {
    let refs = scale.references();
    [1usize, 4, 16]
        .into_iter()
        .map(|chunk| {
            let cache = base_builder(2 << 20).build(|b| {
                b.max_allocation(chunk);
            });
            measure(cache, refs, format!("max_allocation={chunk}"))
        })
        .collect()
}

/// Ablation D: region line-size factor on a streaming-heavy application
/// (CRC). Returns `(factor, miss_rate)` pairs — spatial locality should
/// make larger blocks pay off.
pub fn line_size_factor(scale: ExperimentScale) -> Vec<(u32, f64)> {
    let refs = scale.references();
    [1u32, 2, 4]
        .into_iter()
        .map(|factor| {
            let mut cache = base_builder(2 << 20).build(|b| {
                b.app_line_factor(asid_of(0), factor);
            });
            let summary = run_workload_on(&[Benchmark::Crc], &mut cache, refs, 42);
            (factor, summary.app_miss_rate(asid_of(0)))
        })
        .collect()
}

/// Ablation E (the paper's §5 future work): replacement schemes on the
/// SPEC4 workload at 2 MB — Random, Randy, and LRU-Direct.
pub fn replacement_schemes(scale: ExperimentScale) -> Vec<AblationResult> {
    let refs = scale.references();
    [
        RegionPolicy::Random,
        RegionPolicy::Randy,
        RegionPolicy::LruDirect,
    ]
    .into_iter()
    .map(|policy| {
        let cache = base_builder(2 << 20).build(|b| {
            b.policy(policy);
        });
        measure(cache, refs, policy.to_string())
    })
    .collect()
}

/// Ablation F: molecule size (the paper's §3 building-block range is
/// 8-32 KB). Smaller molecules give finer allocation granularity and
/// cheaper probes; larger ones reduce per-access probe counts. Total
/// capacity is held at 2 MB.
pub fn molecule_size(scale: ExperimentScale) -> Vec<AblationResult> {
    let refs = scale.references();
    [8u64, 16, 32]
        .into_iter()
        .map(|kb| {
            let bytes = kb * 1024;
            let mut b = MolecularConfig::builder();
            b.molecule_size(bytes)
                .tile_molecules(((2 << 20) / 4 / bytes) as usize)
                .tiles_per_cluster(4)
                .clusters(1)
                .policy(RegionPolicy::Randy)
                .miss_rate_goal(GOAL)
                .seed(42);
            let cache = MolecularCache::new(b.build().expect("molecule sweep geometry"));
            measure(cache, refs, format!("{kb}KB molecules"))
        })
        .collect()
}

/// Ablation G: configured way size (`row_max`) of the Randy replacement
/// view — the trade between per-row isolation (more rows) and
/// associativity per row (fewer rows).
pub fn row_max(scale: ExperimentScale) -> Vec<AblationResult> {
    let refs = scale.references();
    [2usize, 4, 8, 16]
        .into_iter()
        .map(|rows| {
            let cache = base_builder(2 << 20).build(|b| {
                b.row_max(rows);
            });
            measure(cache, refs, format!("row_max={rows}"))
        })
        .collect()
}

/// Renders the standard ablation table (variant, deviation, resize and
/// starvation counters).
fn ablation_table(first_col: &str, rows: Vec<AblationResult>) -> String {
    let mut t = Table::new(vec![first_col, "avg deviation", "resizes", "starved"]);
    for r in rows {
        t.row(vec![
            r.label,
            fmt_f64(r.avg_deviation, 3),
            r.resize_rounds.to_string(),
            r.failed_allocations.to_string(),
        ]);
    }
    t.render()
}

/// A deferred ablation section (title plus the family run producing it).
type Section = Box<dyn FnOnce() -> String + Send>;

/// Runs every ablation serially and renders a combined report.
pub fn run(scale: ExperimentScale) -> String {
    run_with(scale, &Engine::serial())
}

/// Runs every ablation, fanning the independent families across the
/// engine's workers, and renders the combined report. Section order (and
/// every byte of the report) is independent of the worker count.
pub fn run_with(scale: ExperimentScale, engine: &Engine) -> String {
    let sections: Vec<Section> = vec![
        Box::new(move || {
            format!(
                "Ablation A: resize triggers (2MB)\n{}\n",
                ablation_table("variant", resize_triggers(scale))
            )
        }),
        Box::new(move || {
            format!(
                "Ablation B: initial allocation\n{}\n",
                ablation_table("variant", initial_allocation(scale))
            )
        }),
        Box::new(move || {
            format!(
                "Ablation C: growth chunk\n{}\n",
                ablation_table("variant", growth_chunk(scale))
            )
        }),
        Box::new(move || {
            let mut t = Table::new(vec!["line factor", "CRC miss rate"]);
            for (factor, mr) in line_size_factor(scale) {
                t.row(vec![format!("{factor}x64B"), fmt_f64(mr, 3)]);
            }
            format!("Ablation D: line-size factor\n{}\n", t.render())
        }),
        Box::new(move || {
            format!(
                "Ablation E: replacement schemes (incl. future-work LRU-Direct)\n{}\n",
                ablation_table("scheme", replacement_schemes(scale))
            )
        }),
        Box::new(move || {
            format!(
                "Ablation F: molecule size (2MB total)\n{}\n",
                ablation_table("variant", molecule_size(scale))
            )
        }),
        Box::new(move || {
            format!(
                "Ablation G: configured way size (row_max)\n{}",
                ablation_table("variant", row_max(scale))
            )
        }),
    ];
    engine.run(sections, |section| section()).concat()
}

/// Machine-readable record of all ablations (serial).
pub fn record(scale: ExperimentScale) -> ExperimentRecord {
    record_with(scale, &Engine::serial())
}

/// Machine-readable record of all ablations, with the families fanned
/// across the engine's workers.
pub fn record_with(scale: ExperimentScale, engine: &Engine) -> ExperimentRecord {
    fn deviation_results(prefix: &str, rows: Vec<AblationResult>) -> Vec<ConfigResult> {
        rows.into_iter()
            .map(|r| ConfigResult {
                label: format!("{prefix}:{}", r.label),
                metrics: vec![Metric::new("avg_deviation", r.avg_deviation)],
            })
            .collect()
    }
    fn resize_results(prefix: &str, rows: Vec<AblationResult>) -> Vec<ConfigResult> {
        rows.into_iter()
            .map(|r| ConfigResult {
                label: format!("{prefix}:{}", r.label),
                metrics: vec![
                    Metric::new("avg_deviation", r.avg_deviation),
                    Metric::new("resize_rounds", r.resize_rounds as f64),
                ],
            })
            .collect()
    }

    type Family = Box<dyn FnOnce() -> Vec<ConfigResult> + Send>;
    let families: Vec<Family> = vec![
        Box::new(move || resize_results("trigger", resize_triggers(scale))),
        Box::new(move || resize_results("initial", initial_allocation(scale))),
        Box::new(move || deviation_results("chunk", growth_chunk(scale))),
        Box::new(move || {
            line_size_factor(scale)
                .into_iter()
                .map(|(factor, mr)| ConfigResult {
                    label: format!("line_factor:{factor}"),
                    metrics: vec![Metric::new("crc_miss_rate", mr)],
                })
                .collect()
        }),
        Box::new(move || deviation_results("scheme", replacement_schemes(scale))),
        Box::new(move || deviation_results("molecule", molecule_size(scale))),
        Box::new(move || deviation_results("rows", row_max(scale))),
    ];
    let results = engine.run(families, |family| family()).concat();
    ExperimentRecord {
        id: "ablations".into(),
        workload: "SPEC4 on 2MB molecular / CRC streaming".into(),
        references: scale.references(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_produce_three_variants() {
        let rs = resize_triggers(ExperimentScale::Custom(250_000));
        assert_eq!(rs.len(), 3);
        assert!(rs.iter().all(|r| r.resize_rounds > 0));
    }

    #[test]
    fn small_initial_allocation_resizes_more() {
        let rs = initial_allocation(ExperimentScale::Custom(120_000));
        let two = rs.iter().find(|r| r.label.starts_with("2 ")).unwrap();
        let half = rs.iter().find(|r| r.label.contains("half")).unwrap();
        // The paper: small initial partitions need frequent repartitions
        // early on. At minimum both must have resized; typically the
        // 2-molecule start needs at least as many rounds.
        assert!(two.resize_rounds >= half.resize_rounds / 2);
    }

    #[test]
    fn line_factor_reduces_streaming_misses() {
        let pts = line_size_factor(ExperimentScale::Custom(120_000));
        let mr1 = pts.iter().find(|(f, _)| *f == 1).unwrap().1;
        let mr4 = pts.iter().find(|(f, _)| *f == 4).unwrap().1;
        assert!(
            mr4 < mr1,
            "4-line blocks must cut the streaming miss rate: {mr4} vs {mr1}"
        );
    }

    #[test]
    fn combined_report_renders() {
        let s = run(ExperimentScale::Custom(60_000));
        assert!(s.contains("Ablation A"));
        assert!(s.contains("Ablation D"));
        assert!(s.contains("Ablation E"));
        assert!(s.contains("LRU-Direct"));
    }

    #[test]
    fn molecule_sizes_all_run() {
        let rs = molecule_size(ExperimentScale::Custom(120_000));
        assert_eq!(rs.len(), 3);
        for r in &rs {
            assert!(r.avg_deviation.is_finite());
            assert!(r.resize_rounds > 0);
        }
    }

    #[test]
    fn row_max_sweep_runs() {
        let rs = row_max(ExperimentScale::Custom(120_000));
        assert_eq!(rs.len(), 4);
        assert!(rs.iter().all(|r| r.avg_deviation.is_finite()));
    }

    #[test]
    fn lru_direct_is_competitive() {
        let rs = replacement_schemes(ExperimentScale::Custom(200_000));
        assert_eq!(rs.len(), 3);
        let randy = rs.iter().find(|r| r.label == "Randy").unwrap();
        let lru = rs.iter().find(|r| r.label == "LRU-Direct").unwrap();
        // LRU-Direct should be in the same deviation regime as Randy
        // (within 2x), not pathological.
        assert!(
            lru.avg_deviation < randy.avg_deviation * 2.0 + 0.05,
            "LRU-Direct {:.3} vs Randy {:.3}",
            lru.avg_deviation,
            randy.avg_deviation
        );
    }
}
