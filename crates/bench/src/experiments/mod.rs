//! One module per reproduced table/figure.

pub mod ablations;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;
