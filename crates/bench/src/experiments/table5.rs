//! Table 5 — the power-deviation product.
//!
//! Combines Table 2's deviations with Table 4's powers: for the 8 MB
//! 4-way and 8-way caches, `power x deviation` vs the 6 MB molecular
//! cache (Randy) evaluated at the same frequency. The paper's values:
//! 1.890 vs 0.909 (4-way) and 0.870 vs 0.425 (8-way).

use crate::experiments::table2::{self, Config as T2Config};
use crate::harness::{Engine, ExperimentScale};
use molcache_core::RegionPolicy;
use molcache_metrics::deviation::{average_overshoot, MissRateGoal};
use molcache_metrics::power_deviation::{power_deviation_product, refined_power_deviation_product};
use molcache_metrics::record::{ConfigResult, ExperimentRecord, Metric};
use molcache_metrics::table::{fmt_f64, Table};
use molcache_power::cacti::analyze;
use molcache_power::calibrate::{molecular_worst_power_w, table3_traditional};
use molcache_power::tech::TechNode;

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Traditional cache label.
    pub label: String,
    /// Traditional power-deviation product.
    pub traditional_pdp: f64,
    /// Molecular (Randy) power-deviation product at the same frequency.
    pub molecular_pdp: f64,
    /// Refined (overshoot-only) PDP of the traditional cache — the §5
    /// future-work metric.
    pub traditional_refined: f64,
    /// Refined PDP of the molecular cache.
    pub molecular_refined: f64,
    /// Paper's values `(traditional, molecular)`.
    pub paper: (f64, f64),
}

/// The full Table 5 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// 4-way and 8-way rows.
    pub rows: Vec<Row>,
    /// References simulated for the deviations.
    pub references: u64,
}

/// Runs Table 5 from a fresh Table 2 measurement.
pub fn run(scale: ExperimentScale) -> Table5 {
    let t2 = table2::run(scale);
    run_from_table2(&t2)
}

/// Like [`run`], but the underlying Table 2 measurement uses the engine.
pub fn run_with(scale: ExperimentScale, engine: &Engine) -> Table5 {
    let t2 = table2::run_with(scale, engine);
    run_from_table2(&t2)
}

/// Computes Table 5 given a Table 2 result (avoids re-running the
/// workload when both tables are produced together).
pub fn run_from_table2(t2: &table2::Table2) -> Table5 {
    let node = TechNode::nm70();
    let dev_mol = t2
        .deviation(T2Config::Molecular(RegionPolicy::Randy))
        .expect("molecular Randy row present");
    let goals = MissRateGoal::uniform(table2::GOAL);
    let overshoot_of = |cfg: T2Config| -> f64 {
        let row = t2
            .rows
            .iter()
            .find(|r| r.config == cfg)
            .expect("row present");
        average_overshoot(
            row.miss_rates
                .iter()
                .enumerate()
                .map(|(i, mr)| (molcache_trace::Asid::new(i as u16 + 1), *mr)),
            &goals,
        )
    };
    let over_mol = overshoot_of(T2Config::Molecular(RegionPolicy::Randy));
    let paper = [(4u32, 1.890, 0.909), (8u32, 0.870, 0.425)];
    let rows = paper
        .into_iter()
        .map(|(assoc, paper_trad, paper_mol)| {
            let report = analyze(&table3_traditional(assoc), &node);
            let freq = report.frequency_mhz();
            let p_trad = report.power_at_mhz(freq);
            let p_mol = molecular_worst_power_w(8 << 10, 512 << 10, &node, freq);
            let dev_trad = t2
                .deviation(T2Config::Traditional(8 << 20, assoc))
                .expect("traditional row present");
            let over_trad = overshoot_of(T2Config::Traditional(8 << 20, assoc));
            Row {
                label: format!("8MB {assoc}way"),
                traditional_pdp: power_deviation_product(p_trad, dev_trad),
                molecular_pdp: power_deviation_product(p_mol, dev_mol),
                traditional_refined: refined_power_deviation_product(p_trad, over_trad),
                molecular_refined: refined_power_deviation_product(p_mol, over_mol),
                paper: (paper_trad, paper_mol),
            }
        })
        .collect();
    Table5 {
        rows,
        references: t2.references,
    }
}

impl Table5 {
    /// Whether the molecular cache wins every row (the paper's claim:
    /// "consistently better").
    pub fn molecular_consistently_better(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.molecular_pdp < r.traditional_pdp)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Cache Type",
            "Power-Deviation Product",
            "PDP of Mol. cache",
            "refined (trad/mol)",
            "paper (trad/mol)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                fmt_f64(r.traditional_pdp, 3),
                fmt_f64(r.molecular_pdp, 3),
                format!("{:.3}/{:.3}", r.traditional_refined, r.molecular_refined),
                format!("{:.3}/{:.3}", r.paper.0, r.paper.1),
            ]);
        }
        format!(
            "Table 5 (power-deviation product; refined = overshoot-only, §5)\n{}",
            t.render()
        )
    }

    /// Machine-readable record.
    pub fn record(&self) -> ExperimentRecord {
        ExperimentRecord {
            id: "table5".into(),
            workload: "mixed workload deviations x Table 4 powers".into(),
            references: self.references,
            results: self
                .rows
                .iter()
                .map(|r| ConfigResult {
                    label: r.label.clone(),
                    metrics: vec![
                        Metric::new("traditional_pdp", r.traditional_pdp),
                        Metric::new("molecular_pdp", r.molecular_pdp),
                        Metric::new("traditional_refined_pdp", r.traditional_refined),
                        Metric::new("molecular_refined_pdp", r.molecular_refined),
                    ],
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rows_with_positive_products() {
        let t = run(ExperimentScale::Custom(80_000));
        assert_eq!(t.rows.len(), 2);
        for r in &t.rows {
            assert!(r.traditional_pdp > 0.0);
            assert!(r.molecular_pdp > 0.0);
        }
    }

    #[test]
    fn render_includes_paper_reference() {
        let t = run(ExperimentScale::Custom(60_000));
        assert!(t.render().contains("1.890"));
    }
}
