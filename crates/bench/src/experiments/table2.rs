//! Table 2 — 12-benchmark mixed workload (SPEC + NetBench + MediaBench).
//!
//! The applications are split into three groups of four; each group is
//! assigned one 2 MB tile cluster of a 6 MB molecular cache (4 tiles of
//! 512 KB each). The miss-rate goal is 25 %. Baselines: shared 4 MB and
//! 8 MB caches at 4- and 8-way. The paper's result: the 6 MB molecular
//! cache with Randy replacement beats even the 8 MB 8-way, while Random
//! replacement trails the 4 MB 4-way.

use crate::harness::{asid_of, run_workload_warmed, Engine, ExperimentScale};
use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_metrics::deviation::{average_deviation, MissRateGoal};
use molcache_metrics::record::{ConfigResult, ExperimentRecord, Metric};
use molcache_metrics::table::{fmt_f64, Table};
use molcache_sim::replacement::Policy;
use molcache_sim::{CacheConfig, SetAssocCache};
use molcache_trace::presets::Benchmark;

/// The miss-rate goal of the experiment.
pub const GOAL: f64 = 0.25;

/// A configuration compared in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Shared LRU cache (size bytes, associativity).
    Traditional(u64, u32),
    /// 6 MB molecular cache (3 clusters x 4 tiles x 512 KB).
    Molecular(RegionPolicy),
}

impl Config {
    /// The paper's six rows.
    pub const ALL: [Config; 6] = [
        Config::Traditional(4 << 20, 4),
        Config::Traditional(4 << 20, 8),
        Config::Traditional(8 << 20, 4),
        Config::Traditional(8 << 20, 8),
        Config::Molecular(RegionPolicy::Randy),
        Config::Molecular(RegionPolicy::Random),
    ];

    /// Row label as printed in the paper.
    pub fn label(&self) -> String {
        match self {
            Config::Traditional(size, assoc) => {
                format!("{}MB {}way", size >> 20, assoc)
            }
            Config::Molecular(p) => format!("6MB Molecular {p}"),
        }
    }
}

/// One row's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The configuration measured.
    pub config: Config,
    /// Average deviation from the 25 % goal over the 12 applications.
    pub avg_deviation: f64,
    /// Per-application miss rates in [`Benchmark::MIXED12`] order.
    pub miss_rates: Vec<f64>,
}

/// The full Table 2 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// All rows in paper order.
    pub rows: Vec<Row>,
    /// References simulated per row.
    pub references: u64,
}

/// Builds the paper's 6 MB molecular cache with the three sequential
/// four-application groups ("without giving consideration to the nature
/// of the mix").
pub fn molecular_6mb(policy: RegionPolicy, seed: u64) -> MolecularCache {
    molecular_6mb_with_period(policy, seed, 25_000)
}

/// [`molecular_6mb`] with an explicit initial per-app resize period —
/// short experiments (CI smoke runs, `molstat` timelines) need the
/// trigger to fire well before the paper's 25 K-access window.
pub fn molecular_6mb_with_period(
    policy: RegionPolicy,
    seed: u64,
    initial_period: u64,
) -> MolecularCache {
    let mut builder = MolecularConfig::builder();
    builder
        .molecule_size(8 * 1024)
        .tile_molecules(64) // 512 KB tiles
        .tiles_per_cluster(4)
        .clusters(3)
        .policy(policy)
        .miss_rate_goal(GOAL)
        .trigger(ResizeTrigger::PerAppAdaptive { initial_period })
        .seed(seed);
    for (i, _b) in Benchmark::MIXED12.iter().enumerate() {
        builder.assign_app_to_cluster(asid_of(i), i / 4);
    }
    MolecularCache::new(builder.build().expect("table 2 geometry is valid"))
}

/// Runs one configuration.
pub fn run_config(config: Config, scale: ExperimentScale) -> Row {
    let refs = scale.references();
    let miss_rates: Vec<f64> = match config {
        Config::Traditional(size, assoc) => {
            let cfg = CacheConfig::new(size, assoc, 64).expect("table 2 geometry");
            let mut cache = SetAssocCache::new(cfg, Policy::Lru);
            let summary = run_workload_warmed(&Benchmark::MIXED12, &mut cache, refs, 7);
            (0..12).map(|i| summary.app_miss_rate(asid_of(i))).collect()
        }
        Config::Molecular(policy) => {
            let mut cache = molecular_6mb(policy, 7);
            let summary = run_workload_warmed(&Benchmark::MIXED12, &mut cache, refs, 7);
            (0..12).map(|i| summary.app_miss_rate(asid_of(i))).collect()
        }
    };
    let goals = MissRateGoal::uniform(GOAL);
    let avg = average_deviation((0..12).map(|i| (asid_of(i), miss_rates[i])), &goals);
    Row {
        config,
        avg_deviation: avg,
        miss_rates,
    }
}

/// Runs the whole table serially.
pub fn run(scale: ExperimentScale) -> Table2 {
    run_with(scale, &Engine::serial())
}

/// Runs the whole table, fanning the six configurations across the
/// engine's workers.
pub fn run_with(scale: ExperimentScale, engine: &Engine) -> Table2 {
    Table2 {
        rows: engine.run(Config::ALL.to_vec(), |c| run_config(c, scale)),
        references: scale.references(),
    }
}

impl Table2 {
    /// Deviation of one configuration.
    pub fn deviation(&self, config: Config) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.config == config)
            .map(|r| r.avg_deviation)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["Cache Type", "Average Deviation"]);
        for row in &self.rows {
            t.row(vec![row.config.label(), fmt_f64(row.avg_deviation, 6)]);
        }
        format!("Table 2 (miss rate goal 25%)\n{}", t.render())
    }

    /// Machine-readable record.
    pub fn record(&self) -> ExperimentRecord {
        ExperimentRecord {
            id: "table2".into(),
            workload: "12-benchmark mixed (SPEC+NetBench+MediaBench)".into(),
            references: self.references,
            results: self
                .rows
                .iter()
                .map(|r| {
                    let mut metrics = vec![Metric::new("avg_deviation", r.avg_deviation)];
                    for (i, b) in Benchmark::MIXED12.iter().enumerate() {
                        metrics.push(Metric::new(
                            format!("miss_rate_{}", b.name()),
                            r.miss_rates[i],
                        ));
                    }
                    ConfigResult {
                        label: r.config.label(),
                        metrics,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_assigned_sequentially() {
        let cache = molecular_6mb(RegionPolicy::Randy, 1);
        let cfg = cache.config();
        assert_eq!(cfg.app_cluster(asid_of(0)), Some(0));
        assert_eq!(cfg.app_cluster(asid_of(3)), Some(0));
        assert_eq!(cfg.app_cluster(asid_of(4)), Some(1));
        assert_eq!(cfg.app_cluster(asid_of(11)), Some(2));
        assert_eq!(cfg.total_bytes(), 6 << 20);
    }

    #[test]
    fn rows_have_twelve_miss_rates() {
        let row = run_config(
            Config::Traditional(4 << 20, 4),
            ExperimentScale::Custom(60_000),
        );
        assert_eq!(row.miss_rates.len(), 12);
        assert!(row.avg_deviation >= 0.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Config::Traditional(8 << 20, 8).label(), "8MB 8way");
        assert_eq!(
            Config::Molecular(RegionPolicy::Randy).label(),
            "6MB Molecular Randy"
        );
    }
}
