//! Shared workload builders for the wall-clock harness (`molbench`) and
//! the policy tournament (`moltourney`).
//!
//! Both drivers run the same suite — `single:<bm>`, `mixed12`,
//! `miss_storm`, `serve_mt` — and their numbers are only comparable if
//! the request streams and cache geometries are built identically, so
//! the builders live here rather than in either binary. Every builder
//! is a pure function of `(refs, seed)`: two calls with the same
//! arguments produce bit-identical streams on any host.

use crate::experiments::table2;
use crate::harness::molecular_cache;
use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_sim::Request;
use molcache_trace::gen::{BoxedSource, TraceSource};
use molcache_trace::interleave::Workload;
use molcache_trace::presets::Benchmark;
use molcache_trace::rng::Rng;
use molcache_trace::tenants::{interleave_chunked, tenant_traces};
use molcache_trace::{AccessKind, Address, Asid};

/// Benchmarks the single-stream workloads cover: one cache-friendly
/// (crc), one streaming (mcf), two mixed-locality (ammp, parser).
pub const SINGLES: [Benchmark; 4] = [
    Benchmark::Ammp,
    Benchmark::Mcf,
    Benchmark::Crc,
    Benchmark::Parser,
];

/// Tenant count of the `serve_mt` workloads. Fixed, not host-derived:
/// workload definitions must be identical across machines for records
/// to be comparable.
pub const SERVE_TENANTS: usize = 4;

/// Chunk size of the `serve_mt` round-robin interleaving — matches the
/// service replay's default.
pub const SERVE_CHUNK: usize = 256;

/// Footprint of the `miss_storm` address stream: 1 GiB of
/// uniform-random lines against a 1 MB cache leaves a ~0.1% residual
/// hit rate, so essentially every access walks the whole miss path —
/// home-tile gate and probe, the Ulmo search across every remote tile
/// of the region, victim selection, block fill.
pub const MISS_STORM_FOOTPRINT: u64 = 1 << 30;

/// One benchmark's stream as a replayable request vector.
pub fn single_requests(bm: Benchmark, n: u64, seed: u64) -> Vec<Request> {
    let mut src = bm.source(Asid::new(1), seed);
    src.collect_n(n as usize)
        .into_iter()
        .map(Request::from)
        .collect()
}

/// The MIXED12 round-robin interleaving as a replayable request vector.
pub fn mixed12_requests(n: u64, seed: u64) -> Vec<Request> {
    let sources: Vec<BoxedSource> = molcache_trace::presets::workload(&Benchmark::MIXED12, seed)
        .into_iter()
        .map(|(_, src)| src)
        .collect();
    Workload::new(sources)
        .expect("preset workload is valid")
        .round_robin()
        .take(n as usize)
        .map(Request::from)
        .collect()
}

/// The 1 MB single-app cache the microbenches use (one cluster of 4
/// tiles, Randy replacement, 10% miss-rate goal).
pub fn cache_1mb(seed: u64) -> MolecularCache {
    molecular_cache(1 << 20, 1, 4, RegionPolicy::Randy, 0.1, seed)
}

/// The `miss_storm` cache: the single tenant's region grown to span
/// every tile of the cluster, so virtually every access misses the
/// home tile and drives the cross-tile search over all remote tiles.
pub fn miss_storm_cache(seed: u64, memo: bool) -> MolecularCache {
    let mut cache = cache_1mb(seed);
    cache.set_memo_front(memo);
    cache.admit_app(Asid::new(1));
    let total = cache.config().total_molecules();
    let spanned = cache
        .set_region_size(Asid::new(1), total)
        .expect("admitted above");
    assert_eq!(spanned, total, "miss_storm region must span every tile");
    cache
}

/// The `miss_storm` request stream: one tenant, uniform-random reads.
pub fn miss_storm_requests(n: u64, seed: u64) -> Vec<Request> {
    let mut rng = Rng::seeded(seed ^ 0x5702_13A7);
    (0..n)
        .map(|_| Request {
            asid: Asid::new(1),
            addr: Address::new(rng.next_u64() % MISS_STORM_FOOTPRINT),
            kind: AccessKind::Read,
        })
        .collect()
}

/// The `serve_mt` traffic as one serialized stream: [`SERVE_TENANTS`]
/// tenant traces in the chunked round-robin order the sharded service
/// replays them in, flattened for a single cache. `n` is the total
/// across tenants.
pub fn serve_mt_requests(n: u64, seed: u64) -> Vec<Request> {
    let per_tenant = (n / SERVE_TENANTS as u64).max(1);
    let traces = tenant_traces(SERVE_TENANTS, per_tenant, seed);
    interleave_chunked(&traces, SERVE_CHUNK)
        .into_iter()
        .map(Request::from)
        .collect()
}

/// Resize-trigger period of the tournament caches. The paper's 25 K
/// window barely fires at smoke scale (20 K refs/cell), which would
/// score every policy on a cache that never resized; the tournament
/// shortens the window so every cell executes many resize rounds and
/// the policies' decision-making actually differentiates them.
pub const TOURNEY_PERIOD: u64 = 2_500;

/// The 1 MB cache with an explicit resize period — same geometry as
/// [`cache_1mb`] (one cluster of 4 × 32 × 8 KiB-molecule tiles, Randy,
/// 10% goal), used by the tournament.
pub fn cache_1mb_with_period(seed: u64, initial_period: u64) -> MolecularCache {
    let mut builder = MolecularConfig::builder();
    builder
        .molecule_size(8 * 1024)
        .tile_molecules(32)
        .tiles_per_cluster(4)
        .clusters(1)
        .policy(RegionPolicy::Randy)
        .miss_rate_goal(0.1)
        .trigger(ResizeTrigger::GlobalAdaptive { initial_period })
        .seed(seed);
    MolecularCache::new(builder.build().expect("tourney geometry is valid"))
}

/// The workload roster the tournament scores, in suite order.
pub fn tourney_workloads() -> Vec<String> {
    let mut names: Vec<String> = SINGLES
        .iter()
        .map(|bm| format!("single:{}", bm.name().to_ascii_lowercase()))
        .collect();
    names.extend(["mixed12", "miss_storm", "serve_mt"].map(String::from));
    names
}

/// A fresh cache plus its request stream for one named workload.
pub struct BuiltWorkload {
    /// Suite name (`single:ammp`, `mixed12`, ...).
    pub name: String,
    /// The cache, before any policy installation or traffic.
    pub cache: MolecularCache,
    /// The full request stream.
    pub requests: Vec<Request>,
}

/// Builds one named tournament workload, or `None` for an unknown name.
/// `refs` is the total access count; streams and geometries depend only
/// on `(name, refs, seed)`. The caches run the [`TOURNEY_PERIOD`]
/// resize window so policies get many decision rounds per cell.
pub fn build_workload(name: &str, refs: u64, seed: u64) -> Option<BuiltWorkload> {
    let (cache, requests) = match name {
        "mixed12" => (
            table2::molecular_6mb_with_period(RegionPolicy::Randy, seed, TOURNEY_PERIOD),
            mixed12_requests(refs, seed),
        ),
        "miss_storm" => {
            let mut cache = cache_1mb_with_period(seed, TOURNEY_PERIOD);
            cache.admit_app(Asid::new(1));
            let total = cache.config().total_molecules();
            cache
                .set_region_size(Asid::new(1), total)
                .expect("admitted above");
            (cache, miss_storm_requests(refs, seed))
        }
        "serve_mt" => (
            cache_1mb_with_period(seed, TOURNEY_PERIOD),
            serve_mt_requests(refs, seed),
        ),
        _ => {
            let bm = SINGLES
                .iter()
                .find(|bm| name.strip_prefix("single:") == Some(&bm.name().to_ascii_lowercase()))
                .copied()?;
            (
                cache_1mb_with_period(seed, TOURNEY_PERIOD),
                single_requests(bm, refs, seed),
            )
        }
    };
    Some(BuiltWorkload {
        name: name.to_string(),
        cache,
        requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_roster_workload_builds() {
        for name in tourney_workloads() {
            let built = build_workload(&name, 512, 7).expect("roster name builds");
            assert_eq!(built.name, name);
            assert!(!built.requests.is_empty(), "{name} produced requests");
        }
        assert!(build_workload("single:nope", 512, 7).is_none());
        assert!(build_workload("bogus", 512, 7).is_none());
    }

    #[test]
    fn builders_are_deterministic() {
        let a = build_workload("serve_mt", 1_000, 42).unwrap();
        let b = build_workload("serve_mt", 1_000, 42).unwrap();
        assert_eq!(a.requests, b.requests);
        let storm = miss_storm_requests(100, 9);
        assert_eq!(storm, miss_storm_requests(100, 9));
        assert!(storm.iter().all(|r| r.addr.raw() < MISS_STORM_FOOTPRINT));
    }

    #[test]
    fn serve_mt_carries_all_tenants() {
        let reqs = serve_mt_requests(4_000, 3);
        assert_eq!(reqs.len(), 4_000);
        let mut asids: Vec<u16> = reqs.iter().map(|r| r.asid.raw()).collect();
        asids.sort_unstable();
        asids.dedup();
        assert_eq!(asids.len(), SERVE_TENANTS);
    }
}
