//! `TOURNEY_*.json` — the `molcache-tourney-v1` cross-workload resize
//! policy tournament record, and the scoring that fills it.
//!
//! A tournament runs every resize policy (see
//! `molcache_core::policy::POLICY_NAMES`) against every suite workload
//! (see [`crate::workloads::tourney_workloads`]) and scores each
//! `(policy, workload)` cell on the paper's two axes:
//!
//! * **power-deviation product** (Table 5's metric) — dynamic power at
//!   the molecule array's own frequency times the average absolute
//!   deviation of per-application miss rates from their goals;
//! * **goal attainment** — the fraction of applications whose lifetime
//!   miss rate meets its goal, the per-app QoS view the
//!   `per-app-goal` / `memshare-pressure` variants optimize for.
//!
//! Scoring is pure simulation (no wall-clock), so records are
//! bit-reproducible across hosts from `(policies, workloads, refs,
//! seed)` — unlike `BENCH_*.json`, two tournament records from the same
//! arguments are comparable byte-for-byte.

use crate::workloads::BuiltWorkload;
use molcache_core::MolecularCache;
use molcache_metrics::deviation::{average_deviation, MissRateGoal};
use molcache_metrics::json::{parse, JsonError, Value};
use molcache_metrics::power_deviation::power_deviation_product;
use molcache_power::accounting::EnergyMeter;
use molcache_power::calibrate::molecule_report;
use molcache_power::tech::TechNode;
use molcache_sim::CacheModel;
use molcache_trace::annotate::footprint_hints;
use molcache_trace::MemAccess;

/// Schema tag every tournament record carries.
pub const TOURNEY_SCHEMA: &str = "molcache-tourney-v1";

/// One scored `(policy, workload)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TourneyEntry {
    /// Resize policy name (`paper-algorithm1`, ...).
    pub policy: String,
    /// Workload name (`single:ammp`, `mixed12`, ...).
    pub workload: String,
    /// Accesses driven.
    pub accesses: u64,
    /// Cache-wide lifetime miss rate.
    pub global_miss_rate: f64,
    /// Cache-wide average latency in simulated cycles.
    pub avg_latency_cycles: f64,
    /// Dynamic power in watts at the molecule array's frequency.
    pub power_w: f64,
    /// Average absolute deviation of per-app miss rates from goals.
    pub avg_deviation: f64,
    /// Power-deviation product (the paper's Table 5 metric).
    pub pdp: f64,
    /// Fraction of applications whose lifetime miss rate met its goal.
    pub goal_attainment: f64,
    /// Resize rounds the policy executed.
    pub resize_rounds: u64,
    /// Growth requests the free pool could not (fully) satisfy.
    pub failed_allocations: u64,
}

impl TourneyEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("policy".into(), Value::String(self.policy.clone())),
            ("workload".into(), Value::String(self.workload.clone())),
            ("accesses".into(), Value::Number(self.accesses as f64)),
            (
                "global_miss_rate".into(),
                Value::Number(self.global_miss_rate),
            ),
            (
                "avg_latency_cycles".into(),
                Value::Number(self.avg_latency_cycles),
            ),
            ("power_w".into(), Value::Number(self.power_w)),
            ("avg_deviation".into(), Value::Number(self.avg_deviation)),
            ("pdp".into(), Value::Number(self.pdp)),
            (
                "goal_attainment".into(),
                Value::Number(self.goal_attainment),
            ),
            (
                "resize_rounds".into(),
                Value::Number(self.resize_rounds as f64),
            ),
            (
                "failed_allocations".into(),
                Value::Number(self.failed_allocations as f64),
            ),
        ])
    }

    fn from_value(v: &Value) -> Option<TourneyEntry> {
        Some(TourneyEntry {
            policy: v.get("policy")?.as_str()?.to_string(),
            workload: v.get("workload")?.as_str()?.to_string(),
            accesses: v.get("accesses")?.as_f64()? as u64,
            global_miss_rate: v.get("global_miss_rate")?.as_f64()?,
            avg_latency_cycles: v.get("avg_latency_cycles")?.as_f64()?,
            power_w: v.get("power_w")?.as_f64()?,
            avg_deviation: v.get("avg_deviation")?.as_f64()?,
            pdp: v.get("pdp")?.as_f64()?,
            goal_attainment: v.get("goal_attainment")?.as_f64()?,
            resize_rounds: v.get("resize_rounds")?.as_f64()? as u64,
            failed_allocations: v.get("failed_allocations")?.as_f64()? as u64,
        })
    }
}

/// One dated `molcache-tourney-v1` record.
#[derive(Debug, Clone, PartialEq)]
pub struct TourneyDoc {
    /// UTC date the record was taken (`YYYY-MM-DD`).
    pub date: String,
    /// Whether this was a `--smoke` (reduced-scale) run.
    pub smoke: bool,
    /// Accesses per `(policy, workload)` cell.
    pub refs: u64,
    /// Seed the streams and caches were built from.
    pub seed: u64,
    /// One entry per `(policy, workload)` cell, policies outermost.
    pub entries: Vec<TourneyEntry>,
}

impl TourneyDoc {
    /// The file name a record is stored under (`TOURNEY_<date>.json`).
    pub fn file_name(&self) -> String {
        format!("TOURNEY_{}.json", self.date)
    }

    /// Distinct policy names, in first-seen order.
    pub fn policies(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for e in &self.entries {
            if !seen.contains(&e.policy.as_str()) {
                seen.push(e.policy.as_str());
            }
        }
        seen
    }

    /// Distinct workload names, in first-seen order.
    pub fn workloads(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for e in &self.entries {
            if !seen.contains(&e.workload.as_str()) {
                seen.push(e.workload.as_str());
            }
        }
        seen
    }

    /// The cell for `(policy, workload)`, if scored.
    pub fn entry(&self, policy: &str, workload: &str) -> Option<&TourneyEntry> {
        self.entries
            .iter()
            .find(|e| e.policy == policy && e.workload == workload)
    }

    /// The record as a JSON value tree.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::String(TOURNEY_SCHEMA.into())),
            ("date".into(), Value::String(self.date.clone())),
            ("smoke".into(), Value::Bool(self.smoke)),
            ("refs".into(), Value::Number(self.refs as f64)),
            ("seed".into(), Value::Number(self.seed as f64)),
            (
                "entries".into(),
                Value::Array(self.entries.iter().map(TourneyEntry::to_value).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON of the record.
    pub fn to_json(&self) -> Result<String, JsonError> {
        self.to_value().to_json()
    }

    /// Parses a record, rejecting unknown schemas and malformed shapes.
    pub fn from_json(text: &str) -> Result<TourneyDoc, String> {
        let v = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema field")?;
        if schema != TOURNEY_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (want {TOURNEY_SCHEMA})"
            ));
        }
        let entries = v
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("missing entries array")?
            .iter()
            .map(TourneyEntry::from_value)
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed tournament entry")?;
        Ok(TourneyDoc {
            date: v
                .get("date")
                .and_then(Value::as_str)
                .ok_or("missing date field")?
                .to_string(),
            smoke: matches!(v.get("smoke"), Some(Value::Bool(true))),
            refs: v
                .get("refs")
                .and_then(Value::as_f64)
                .ok_or("missing refs field")? as u64,
            seed: v
                .get("seed")
                .and_then(Value::as_f64)
                .ok_or("missing seed field")? as u64,
            entries,
        })
    }

    /// Renders the per-workload league tables plus the cross-workload
    /// summary `moltourney` prints and `molstat --tourney` re-renders.
    pub fn render(&self) -> String {
        let mut out = format!(
            "policy tournament {} ({} refs/cell, seed {}{})\n",
            self.date,
            self.refs,
            self.seed,
            if self.smoke { ", smoke" } else { "" }
        );
        for workload in self.workloads() {
            let mut rows: Vec<&TourneyEntry> = self
                .entries
                .iter()
                .filter(|e| e.workload == workload)
                .collect();
            rows.sort_by(|a, b| a.pdp.total_cmp(&b.pdp));
            out.push_str(&format!(
                "\n{workload}\n  {:<20} {:>8} {:>9} {:>9} {:>8} {:>7} {:>7} {:>7}\n",
                "policy", "miss%", "power(W)", "avg dev", "pdp", "goal%", "rounds", "failed"
            ));
            for e in rows {
                out.push_str(&format!(
                    "  {:<20} {:>7.2}% {:>9.4} {:>9.4} {:>8.4} {:>6.0}% {:>7} {:>7}\n",
                    e.policy,
                    e.global_miss_rate * 100.0,
                    e.power_w,
                    e.avg_deviation,
                    e.pdp,
                    e.goal_attainment * 100.0,
                    e.resize_rounds,
                    e.failed_allocations,
                ));
            }
        }
        out.push_str("\ncross-workload summary (mean over workloads)\n");
        out.push_str(&format!(
            "  {:<20} {:>10} {:>10} {:>7}\n",
            "policy", "mean pdp", "mean dev", "goal%"
        ));
        let mut summary: Vec<(String, f64, f64, f64)> = self
            .policies()
            .iter()
            .map(|&p| {
                let cells: Vec<&TourneyEntry> =
                    self.entries.iter().filter(|e| e.policy == p).collect();
                let n = cells.len().max(1) as f64;
                (
                    p.to_string(),
                    cells.iter().map(|e| e.pdp).sum::<f64>() / n,
                    cells.iter().map(|e| e.avg_deviation).sum::<f64>() / n,
                    cells.iter().map(|e| e.goal_attainment).sum::<f64>() / n,
                )
            })
            .collect();
        summary.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (policy, pdp, dev, goal) in summary {
            out.push_str(&format!(
                "  {:<20} {:>10.4} {:>10.4} {:>6.0}%\n",
                policy,
                pdp,
                dev,
                goal * 100.0
            ));
        }
        out
    }
}

/// Scores one `(policy, workload)` cell: installs the policy on the
/// workload's fresh cache, delivers the trace's oracle working-set
/// hints (consumed by `proactive-hint`, ignored by the rest), drives
/// the full stream, and reduces the cache's end state to a
/// [`TourneyEntry`]. Pure simulation — deterministic in the inputs.
pub fn score_cell(policy: &str, mut built: BuiltWorkload) -> Option<TourneyEntry> {
    let installed = molcache_core::policy::by_name(policy, built.cache.config())?;
    built.cache.set_resize_policy(installed);

    // Oracle phase annotations: each application's true line footprint,
    // declared up front (see `molcache_trace::annotate`).
    let line = built.cache.config().line_size();
    let trace: Vec<MemAccess> = built
        .requests
        .iter()
        .map(|r| MemAccess {
            asid: r.asid,
            addr: r.addr,
            kind: r.kind,
        })
        .collect();
    for hint in footprint_hints(&trace, line) {
        built
            .cache
            .note_phase_hint(hint.asid, hint.working_set_bytes);
    }

    for req in &built.requests {
        built.cache.access(*req);
    }
    Some(reduce(policy, &built.name, &built.cache))
}

/// Reduces a driven cache to one tournament entry.
fn reduce(policy: &str, workload: &str, cache: &MolecularCache) -> TourneyEntry {
    let stats = cache.stats();
    let snaps = cache.snapshots();
    let mut goals = MissRateGoal::uniform(cache.config().default_goal());
    for s in &snaps {
        goals = goals.with_override(s.asid, s.goal);
    }
    let lifetime_mr = |s: &molcache_core::stats::RegionSnapshot| {
        if s.accesses == 0 {
            0.0
        } else {
            (s.accesses - s.hits) as f64 / s.accesses as f64
        }
    };
    let avg_deviation = average_deviation(snaps.iter().map(|s| (s.asid, lifetime_mr(s))), &goals);
    let met = snaps
        .iter()
        .filter(|s| lifetime_mr(s) <= goals.goal(s.asid))
        .count();
    let goal_attainment = if snaps.is_empty() {
        0.0
    } else {
        met as f64 / snaps.len() as f64
    };

    let node = TechNode::nm70();
    let report = molecule_report(&node);
    let meter = EnergyMeter::for_molecular(&report, &node);
    let power_w = meter.power_at_mhz(&cache.activity(), report.frequency_mhz());

    TourneyEntry {
        policy: policy.to_string(),
        workload: workload.to_string(),
        accesses: stats.global.accesses,
        global_miss_rate: stats.global.miss_rate(),
        avg_latency_cycles: stats.global.avg_latency(),
        power_w,
        avg_deviation,
        pdp: power_deviation_product(power_w, avg_deviation),
        goal_attainment,
        resize_rounds: cache.resize_rounds(),
        failed_allocations: cache.failed_allocations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::build_workload;

    fn entry(policy: &str, workload: &str) -> TourneyEntry {
        TourneyEntry {
            policy: policy.into(),
            workload: workload.into(),
            accesses: 1000,
            global_miss_rate: 0.25,
            avg_latency_cycles: 30.5,
            power_w: 0.75,
            avg_deviation: 0.15,
            pdp: 0.1125,
            goal_attainment: 0.5,
            resize_rounds: 3,
            failed_allocations: 1,
        }
    }

    #[test]
    fn doc_round_trips_through_json() {
        let doc = TourneyDoc {
            date: "2026-08-08".into(),
            smoke: true,
            refs: 1000,
            seed: 7,
            entries: vec![
                entry("paper-algorithm1", "mixed12"),
                entry("memshare-pressure", "mixed12"),
                entry("paper-algorithm1", "serve_mt"),
            ],
        };
        let text = doc.to_json().unwrap();
        let back = TourneyDoc::from_json(&text).unwrap();
        assert_eq!(doc, back);
        assert_eq!(back.file_name(), "TOURNEY_2026-08-08.json");
        assert_eq!(back.policies(), ["paper-algorithm1", "memshare-pressure"]);
        assert_eq!(back.workloads(), ["mixed12", "serve_mt"]);
        assert!(back.entry("memshare-pressure", "mixed12").is_some());
        assert!(back.entry("memshare-pressure", "serve_mt").is_none());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = r#"{"schema": "molcache-bench-v1", "entries": []}"#;
        assert!(TourneyDoc::from_json(text).unwrap_err().contains("schema"));
        assert!(TourneyDoc::from_json("not json").is_err());
    }

    #[test]
    fn score_cell_fills_every_metric() {
        let built = build_workload("serve_mt", 4_000, 11).unwrap();
        let e = score_cell("memshare-pressure", built).expect("known policy scores");
        assert_eq!(e.policy, "memshare-pressure");
        assert_eq!(e.workload, "serve_mt");
        assert_eq!(e.accesses, 4_000);
        assert!(e.global_miss_rate > 0.0 && e.global_miss_rate <= 1.0);
        assert!(e.avg_latency_cycles > 0.0);
        assert!(e.power_w > 0.0);
        assert!(e.pdp >= 0.0);
        assert!((0.0..=1.0).contains(&e.goal_attainment));
        assert!(score_cell("bogus", build_workload("serve_mt", 100, 1).unwrap()).is_none());
    }

    #[test]
    fn default_policy_cell_matches_an_untouched_cache() {
        // Scoring through the registry's default policy must be
        // bit-identical to driving the workload's cache as built — the
        // refactor's equivalence contract, checked at the bench layer.
        let scored = score_cell(
            "paper-algorithm1",
            build_workload("mixed12", 6_000, 5).unwrap(),
        )
        .expect("default policy scores");
        let mut raw = build_workload("mixed12", 6_000, 5).unwrap();
        for req in &raw.requests {
            raw.cache.access(*req);
        }
        let reference = reduce("paper-algorithm1", "mixed12", &raw.cache);
        assert_eq!(scored, reference);
    }

    #[test]
    fn render_lists_every_policy_and_workload() {
        let doc = TourneyDoc {
            date: "2026-08-08".into(),
            smoke: false,
            refs: 1000,
            seed: 7,
            entries: vec![
                entry("paper-algorithm1", "mixed12"),
                entry("global-goal", "mixed12"),
            ],
        };
        let text = doc.render();
        assert!(text.contains("mixed12"));
        assert!(text.contains("paper-algorithm1"));
        assert!(text.contains("global-goal"));
        assert!(text.contains("cross-workload summary"));
    }
}
