//! Host machine identification for `BENCH_*.json` records.
//!
//! A throughput number is meaningless without the machine that produced
//! it, so every bench record carries the CPU model, logical core count,
//! rustc version and git revision. Detection is best-effort: anything
//! that cannot be determined (no `/proc/cpuinfo`, no `git` in PATH, a
//! stripped container) degrades to `"unknown"` rather than failing the
//! run.

use molcache_metrics::json::Value;

/// What produced a bench record: CPU, cores, toolchain, revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// CPU model string (`model name` from `/proc/cpuinfo`).
    pub cpu_model: String,
    /// Logical cores available to the process.
    pub cores: usize,
    /// `rustc --version` of the toolchain on PATH.
    pub rustc: String,
    /// Short git revision of the working tree.
    pub git_sha: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
}

impl MachineInfo {
    /// Probes the current host.
    pub fn detect() -> MachineInfo {
        MachineInfo {
            cpu_model: cpu_model(),
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            rustc: command_output("rustc", &["--version"]),
            git_sha: command_output("git", &["rev-parse", "--short=12", "HEAD"]),
            os: std::env::consts::OS.to_string(),
        }
    }

    /// The JSON object stored under `"machine"` in a bench record.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("cpu_model".into(), Value::String(self.cpu_model.clone())),
            ("cores".into(), Value::Number(self.cores as f64)),
            ("rustc".into(), Value::String(self.rustc.clone())),
            ("git_sha".into(), Value::String(self.git_sha.clone())),
            ("os".into(), Value::String(self.os.clone())),
        ])
    }

    /// Rebuilds the info from a parsed `"machine"` object.
    pub fn from_value(v: &Value) -> Option<MachineInfo> {
        Some(MachineInfo {
            cpu_model: v.get("cpu_model")?.as_str()?.to_string(),
            cores: v.get("cores")?.as_f64()? as usize,
            rustc: v.get("rustc")?.as_str()?.to_string(),
            git_sha: v.get("git_sha")?.as_str()?.to_string(),
            os: v.get("os")?.as_str()?.to_string(),
        })
    }
}

fn cpu_model() -> String {
    if let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, value)) = rest.split_once(':') {
                    return value.trim().to_string();
                }
            }
        }
    }
    "unknown".into()
}

fn command_output(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_fills_every_field() {
        let m = MachineInfo::detect();
        assert!(m.cores >= 1);
        assert!(!m.cpu_model.is_empty());
        assert!(!m.rustc.is_empty());
        assert!(!m.git_sha.is_empty());
        assert!(!m.os.is_empty());
    }

    #[test]
    fn value_round_trip() {
        let m = MachineInfo {
            cpu_model: "Example CPU @ 2.0GHz".into(),
            cores: 8,
            rustc: "rustc 1.0.0".into(),
            git_sha: "abcdef123456".into(),
            os: "linux".into(),
        };
        assert_eq!(MachineInfo::from_value(&m.to_value()), Some(m));
    }

    #[test]
    fn from_value_rejects_malformed_objects() {
        assert_eq!(MachineInfo::from_value(&Value::Null), None);
        assert_eq!(
            MachineInfo::from_value(&Value::Object(vec![(
                "cpu_model".into(),
                Value::String("x".into())
            )])),
            None
        );
    }

    #[test]
    fn missing_command_degrades_to_unknown() {
        assert_eq!(
            command_output("definitely-not-a-real-binary-name", &[]),
            "unknown"
        );
    }
}
