//! Shared experiment plumbing.

use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_sim::cmp::{run_accesses, run_accesses_observed, RunSummary};
use molcache_sim::CacheModel;
use molcache_telemetry::{Recorder, Sink, SinkHandle};
use molcache_trace::gen::BoxedSource;
use molcache_trace::interleave::Workload;
use molcache_trace::presets::Benchmark;
use molcache_trace::Asid;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A deterministic fan-out scheduler for independent experiment points.
///
/// Each item is handed to exactly one worker thread (std scoped threads —
/// no extra dependencies) and the results are merged back **in item
/// order**, so the output of [`Engine::run`] is identical for any worker
/// count. Every experiment point owns its cache and trace sources, which
/// makes the work function pure given its item; parallelism therefore
/// cannot change any measured number, only the wall clock.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
}

impl Engine {
    /// An engine with `jobs` workers (0 is treated as 1).
    pub fn new(jobs: usize) -> Self {
        Engine { jobs: jobs.max(1) }
    }

    /// A single-worker engine that runs everything inline.
    pub fn serial() -> Self {
        Engine::new(1)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` on up to [`Engine::jobs`] workers and returns
    /// the results in item order. With one worker (or one item) the map
    /// runs inline on the calling thread. A panic in `f` propagates.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Work-stealing by shared index: workers claim the next undone
        // item, keeping all cores busy even when point costs are skewed
        // (an 8 MB fig5 point costs far more than a 1 MB one).
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot lock")
                        .take()
                        .expect("each item is claimed exactly once");
                    let result = f(item);
                    *slots[i].lock().expect("result slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every slot is filled before scope exit")
            })
            .collect()
    }

    /// Like [`Engine::run`], but hands each item a fresh telemetry
    /// [`SinkHandle`] (closing an epoch every `epoch_length` accesses) and
    /// returns the filled [`Recorder`] next to each result. Recorders come
    /// back **in item order**, so merged epoch streams — like the results
    /// themselves — are identical for any worker count.
    pub fn run_recorded<T, R, F>(
        &self,
        items: Vec<T>,
        epoch_length: u64,
        f: F,
    ) -> Vec<(R, Recorder)>
    where
        T: Send,
        R: Send,
        F: Fn(T, SinkHandle) -> R + Sync,
    {
        self.run(items, move |item| {
            let recorder: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::default()));
            let sink: Arc<Mutex<dyn Sink>> = recorder.clone();
            let result = f(item, SinkHandle::shared(sink, epoch_length));
            let recorder = recorder.lock().expect("recorder lock").clone();
            (result, recorder)
        })
    }
}

/// How many references an experiment simulates.
///
/// The paper's SPEC traces hold ~3.9 M references; [`ExperimentScale::Paper`]
/// matches that. Tests and quick runs use the smaller scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// ~100 K references (CI tests).
    Smoke,
    /// ~1 M references (quick local runs).
    Quick,
    /// ~3.9 M references (the paper's trace length).
    Paper,
    /// Explicit reference count.
    Custom(u64),
}

impl ExperimentScale {
    /// Number of references to drive.
    pub fn references(self) -> u64 {
        match self {
            ExperimentScale::Smoke => 100_000,
            ExperimentScale::Quick => 1_000_000,
            ExperimentScale::Paper => 3_900_000,
            ExperimentScale::Custom(n) => n,
        }
    }
}

/// Builds the molecular configuration used throughout the evaluation:
/// 8 KB molecules, `tiles_per_cluster` tiles per cluster, sized so that
/// `clusters * tiles * tile_bytes = total_bytes`.
///
/// # Panics
///
/// Panics if the geometry does not divide evenly (experiment
/// configurations are all powers of two).
pub fn molecular_config(
    total_bytes: u64,
    clusters: usize,
    tiles_per_cluster: usize,
    policy: RegionPolicy,
    goal: f64,
    seed: u64,
) -> MolecularConfig {
    let molecule = 8 * 1024u64;
    let tile_bytes = total_bytes / (clusters as u64 * tiles_per_cluster as u64);
    assert!(
        tile_bytes >= molecule && tile_bytes.is_multiple_of(molecule),
        "tile size must hold whole molecules"
    );
    MolecularConfig::builder()
        .molecule_size(molecule)
        .tile_molecules((tile_bytes / molecule) as usize)
        .tiles_per_cluster(tiles_per_cluster)
        .clusters(clusters)
        .policy(policy)
        .miss_rate_goal(goal)
        .trigger(ResizeTrigger::GlobalAdaptive {
            initial_period: 25_000,
        })
        .seed(seed)
        .build()
        .expect("experiment geometry is valid")
}

/// Builds the molecular cache for an experiment.
pub fn molecular_cache(
    total_bytes: u64,
    clusters: usize,
    tiles_per_cluster: usize,
    policy: RegionPolicy,
    goal: f64,
    seed: u64,
) -> MolecularCache {
    MolecularCache::new(molecular_config(
        total_bytes,
        clusters,
        tiles_per_cluster,
        policy,
        goal,
        seed,
    ))
}

/// Runs a benchmark list round-robin through any cache model.
///
/// ASIDs are assigned 1..=n in list order (matching
/// [`molcache_trace::presets::workload`]).
pub fn run_workload_on<C>(
    benchmarks: &[Benchmark],
    cache: &mut C,
    references: u64,
    seed: u64,
) -> RunSummary
where
    C: CacheModel + ?Sized,
{
    let sources: Vec<BoxedSource> = molcache_trace::presets::workload(benchmarks, seed)
        .into_iter()
        .map(|(_, src)| src)
        .collect();
    let workload = Workload::new(sources).expect("preset workload is valid");
    run_accesses(workload.round_robin(), cache, references)
}

/// Fraction of an experiment's references used to warm the cache (and,
/// for the molecular cache, to let Algorithm 1 size the partitions)
/// before measurement starts. Statistics are reset at the boundary, so
/// reported miss rates are steady-state — matching how trace-driven
/// studies of the paper's era discard cold-start transients.
pub const WARMUP_FRACTION: f64 = 0.25;

/// Like [`run_workload_on`], but drives `WARMUP_FRACTION` of the
/// references first, resets the statistics, then measures the rest.
pub fn run_workload_warmed<C>(
    benchmarks: &[Benchmark],
    cache: &mut C,
    references: u64,
    seed: u64,
) -> RunSummary
where
    C: CacheModel + ?Sized,
{
    let sources: Vec<BoxedSource> = molcache_trace::presets::workload(benchmarks, seed)
        .into_iter()
        .map(|(_, src)| src)
        .collect();
    let workload = Workload::new(sources).expect("preset workload is valid");
    let mut stream = workload.round_robin();
    let warm = (references as f64 * WARMUP_FRACTION) as u64;
    run_accesses(&mut stream, cache, warm);
    cache.reset_stats();
    run_accesses(&mut stream, cache, references - warm)
}

/// Like [`run_workload_on`], but publishes every access into `sink` (the
/// latency-histogram feed) while driving. Runs cold — no warmup — so the
/// telemetry stream includes the cold-start growth phase Algorithm 1
/// works through, which is exactly what a partition timeline should show.
pub fn run_workload_recorded<C>(
    benchmarks: &[Benchmark],
    cache: &mut C,
    references: u64,
    seed: u64,
    sink: &SinkHandle,
) -> RunSummary
where
    C: CacheModel + ?Sized,
{
    let sources: Vec<BoxedSource> = molcache_trace::presets::workload(benchmarks, seed)
        .into_iter()
        .map(|(_, src)| src)
        .collect();
    let workload = Workload::new(sources).expect("preset workload is valid");
    let mut obs = sink.clone();
    run_accesses_observed(workload.round_robin(), cache, references, &mut obs)
}

/// The ASID a benchmark receives by its position in the workload list.
pub fn asid_of(position: usize) -> Asid {
    Asid::new(position as u16 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_sim::{CacheConfig, SetAssocCache};

    #[test]
    fn scale_reference_counts() {
        assert_eq!(ExperimentScale::Smoke.references(), 100_000);
        assert_eq!(ExperimentScale::Paper.references(), 3_900_000);
        assert_eq!(ExperimentScale::Custom(7).references(), 7);
    }

    #[test]
    fn molecular_config_partitions_evenly() {
        // Paper Fig 5: 1MB = 4 tiles of 256KB.
        let cfg = molecular_config(1 << 20, 1, 4, RegionPolicy::Randy, 0.1, 1);
        assert_eq!(cfg.tile_bytes(), 256 << 10);
        assert_eq!(cfg.total_bytes(), 1 << 20);
        // Table 2: 6MB = 3 clusters x 4 tiles x 512KB.
        let cfg2 = molecular_config(6 << 20, 3, 4, RegionPolicy::Random, 0.25, 1);
        assert_eq!(cfg2.tile_bytes(), 512 << 10);
        assert_eq!(cfg2.tile_molecules(), 64);
    }

    #[test]
    fn run_workload_attributes_all_apps() {
        let mut cache = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
        let summary = run_workload_on(&Benchmark::SPEC4, &mut cache, 20_000, 42);
        assert_eq!(summary.per_app.len(), 4);
        assert_eq!(summary.accesses(), 20_000);
    }

    #[test]
    #[should_panic(expected = "whole molecules")]
    fn ragged_geometry_panics() {
        molecular_config(1 << 20, 3, 4, RegionPolicy::Randy, 0.1, 1);
    }

    #[test]
    fn engine_preserves_item_order() {
        let items: Vec<u64> = (0..53).collect();
        let serial = Engine::serial().run(items.clone(), |x| x * x);
        let parallel = Engine::new(4).run(items, |x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn engine_handles_more_workers_than_items() {
        let out = Engine::new(8).run(vec![1, 2], |x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn engine_zero_jobs_is_serial() {
        let e = Engine::new(0);
        assert_eq!(e.jobs(), 1);
        assert_eq!(e.run(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
    }

    #[test]
    fn run_recorded_is_worker_count_invariant() {
        use molcache_core::ResizeTrigger;
        let drive = |seed: u64, sink: SinkHandle| {
            let cfg = MolecularConfig::builder()
                .molecule_size(8 * 1024)
                .tile_molecules(16)
                .tiles_per_cluster(2)
                .clusters(1)
                .trigger(ResizeTrigger::Constant { period: 2_000 })
                .seed(seed)
                .build()
                .unwrap();
            let mut cache = MolecularCache::new(cfg).with_sink(sink.clone());
            run_workload_recorded(&Benchmark::SPEC4, &mut cache, 10_000, seed, &sink)
        };
        let items: Vec<u64> = vec![1, 2, 3];
        let serial = Engine::serial().run_recorded(items.clone(), 2_500, drive);
        let parallel = Engine::new(4).run_recorded(items, 2_500, drive);
        assert_eq!(serial.len(), parallel.len());
        for ((s_sum, s_rec), (p_sum, p_rec)) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s_sum, p_sum);
            assert_eq!(
                s_rec.to_json().unwrap(),
                p_rec.to_json().unwrap(),
                "telemetry export must not depend on worker count"
            );
            assert_eq!(s_rec.epochs().len(), 4, "10000 refs / 2500-long epochs");
            assert_eq!(s_rec.global_latency().count(), 10_000);
        }
    }

    #[test]
    fn engine_runs_boxed_thunks() {
        let thunks: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "a".to_string()),
            Box::new(|| "b".to_string()),
            Box::new(|| "c".to_string()),
        ];
        let out = Engine::new(2).run(thunks, |t| t());
        assert_eq!(out.concat(), "abc");
    }
}
