//! The BENCH JSON layer: round-trip of emitted `BENCH_*.json` records
//! and the `--compare` regression math.

use molcache_bench::machine::MachineInfo;
use molcache_bench::report::{
    compare, floor_check, regressions, render_comparison, scale_fairness_warning, BenchDoc,
    StageProfileRecord, WorkloadResult, BENCH_SCHEMA, REGRESSION_TOLERANCE,
};
use molcache_bench::stopwatch::Timing;

fn machine() -> MachineInfo {
    MachineInfo {
        cpu_model: "Example CPU @ 2.0GHz".into(),
        cores: 8,
        rustc: "rustc 1.89.0".into(),
        git_sha: "abc123def456".into(),
        os: "linux".into(),
    }
}

fn doc_with(workloads: Vec<WorkloadResult>) -> BenchDoc {
    BenchDoc {
        date: "2026-08-08".into(),
        smoke: false,
        memo: None,
        machine: machine(),
        workloads,
        stage_profile: None,
    }
}

fn workload(name: &str, accesses_per_sec: f64) -> WorkloadResult {
    WorkloadResult {
        name: name.into(),
        accesses_per_iter: 100_000,
        samples: 15,
        min_ns_per_access: 90.0,
        median_ns_per_access: if accesses_per_sec > 0.0 {
            1e9 / accesses_per_sec
        } else {
            0.0
        },
        mean_ns_per_access: 110.0,
        accesses_per_sec,
    }
}

#[test]
fn emitted_record_round_trips() {
    // Build the record the way molbench does: from real Timing samples.
    let t = Timing::from_samples(vec![2_000_000, 1_500_000, 2_500_000, 1_750_000]);
    let doc = BenchDoc {
        date: "2026-08-08".into(),
        smoke: true,
        memo: Some(true),
        machine: machine(),
        workloads: vec![
            WorkloadResult::from_timing("mixed12", 20_000, &t),
            WorkloadResult::from_timing("access_batch", 20_000, &t),
        ],
        stage_profile: Some(StageProfileRecord {
            sample_every: 64,
            sampled_accesses: 313,
            stages: vec![
                ("asid-gate".into(), 63_533),
                ("home-lookup".into(), 54_615),
                ("ulmo-search".into(), 12_641),
                ("victim".into(), 7_951),
                ("fill".into(), 58_441),
            ],
        }),
    };
    let json = doc.to_json().expect("finite record serializes");
    assert!(json.contains(&format!("\"schema\": \"{BENCH_SCHEMA}\"")));
    let parsed = BenchDoc::from_json(&json).expect("emitted record parses");
    assert_eq!(parsed, doc, "round-trip must be exact");
    assert_eq!(parsed.file_name(), "BENCH_2026-08-08.json");
    assert_eq!(
        parsed.workload("mixed12").unwrap().accesses_per_iter,
        20_000
    );
}

#[test]
fn record_without_profile_round_trips() {
    let doc = doc_with(vec![workload("mixed12", 2_500_000.0)]);
    let parsed = BenchDoc::from_json(&doc.to_json().unwrap()).unwrap();
    assert_eq!(parsed, doc);
    assert_eq!(parsed.stage_profile, None);
}

#[test]
fn from_json_rejects_wrong_schema_and_garbage() {
    assert!(BenchDoc::from_json("{not json").is_err());
    assert!(BenchDoc::from_json("{}").is_err());
    let wrong = doc_with(vec![])
        .to_json()
        .unwrap()
        .replace(BENCH_SCHEMA, "molcache-bench-v999");
    let err = BenchDoc::from_json(&wrong).unwrap_err();
    assert!(err.contains("molcache-bench-v999"), "{err}");
}

#[test]
fn exact_tolerance_boundary_is_not_a_regression() {
    // 100 -> 80 accesses/sec is exactly -20%: the gate must pass.
    let baseline = doc_with(vec![workload("mixed12", 100.0)]);
    let current = doc_with(vec![workload("mixed12", 80.0)]);
    let deltas = compare(&baseline, &current, REGRESSION_TOLERANCE);
    assert_eq!(deltas.len(), 1);
    assert!(!deltas[0].regressed, "exact boundary passes: {deltas:?}");
    assert_eq!(deltas[0].ratio, Some(0.8));
    assert!(regressions(&deltas).is_empty());

    // The tiniest step below the boundary fails.
    let worse = doc_with(vec![workload("mixed12", 79.999)]);
    let deltas = compare(&baseline, &worse, REGRESSION_TOLERANCE);
    assert!(deltas[0].regressed, "below boundary regresses: {deltas:?}");
    assert_eq!(regressions(&deltas).len(), 1);
}

#[test]
fn improvement_is_not_a_regression() {
    let baseline = doc_with(vec![workload("mixed12", 100.0), workload("batch", 50.0)]);
    let current = doc_with(vec![workload("mixed12", 250.0), workload("batch", 50.0)]);
    let deltas = compare(&baseline, &current, REGRESSION_TOLERANCE);
    assert!(deltas.iter().all(|d| !d.regressed), "{deltas:?}");
    assert_eq!(deltas[0].ratio, Some(2.5));
    assert_eq!(deltas[1].ratio, Some(1.0));
}

#[test]
fn missing_workload_fails_the_gate() {
    let baseline = doc_with(vec![workload("mixed12", 100.0), workload("batch", 50.0)]);
    let current = doc_with(vec![workload("mixed12", 100.0)]);
    let deltas = compare(&baseline, &current, REGRESSION_TOLERANCE);
    let missing: Vec<_> = deltas.iter().filter(|d| d.current_aps.is_none()).collect();
    assert_eq!(missing.len(), 1);
    assert_eq!(missing[0].name, "batch");
    assert!(missing[0].regressed, "a vanished workload must fail");
    assert_eq!(missing[0].ratio, None);
}

#[test]
fn new_workload_in_current_run_is_ignored() {
    let baseline = doc_with(vec![workload("mixed12", 100.0)]);
    let current = doc_with(vec![workload("mixed12", 100.0), workload("brand-new", 1.0)]);
    let deltas = compare(&baseline, &current, REGRESSION_TOLERANCE);
    assert_eq!(deltas.len(), 1, "only baseline workloads produce deltas");
    assert!(!deltas[0].regressed);
}

#[test]
fn zero_throughput_baseline_cannot_divide_or_regress() {
    let baseline = doc_with(vec![workload("degenerate", 0.0)]);
    let current = doc_with(vec![workload("degenerate", 0.0)]);
    let deltas = compare(&baseline, &current, REGRESSION_TOLERANCE);
    assert_eq!(deltas[0].ratio, None, "no ratio against a zero baseline");
    assert!(!deltas[0].regressed);
    // A zero *current* against a live baseline is a total regression.
    let live = doc_with(vec![workload("degenerate", 100.0)]);
    let dead = doc_with(vec![workload("degenerate", 0.0)]);
    let deltas = compare(&live, &dead, REGRESSION_TOLERANCE);
    assert_eq!(deltas[0].ratio, Some(0.0));
    assert!(deltas[0].regressed);
}

#[test]
fn comparison_renders_every_verdict() {
    let baseline = doc_with(vec![
        workload("ok-wl", 100.0),
        workload("slow-wl", 100.0),
        workload("gone-wl", 100.0),
    ]);
    let current = doc_with(vec![workload("ok-wl", 101.0), workload("slow-wl", 10.0)]);
    let deltas = compare(&baseline, &current, REGRESSION_TOLERANCE);
    let table = render_comparison(&deltas, REGRESSION_TOLERANCE);
    assert!(table.contains("ok-wl"), "{table}");
    assert!(table.contains("REGRESSED"), "{table}");
    assert!(table.contains("missing"), "{table}");
    assert!(table.contains("+1.0%"), "{table}");
    assert_eq!(regressions(&deltas).len(), 2);
}

#[test]
fn memo_marker_round_trips_and_stays_optional() {
    // Records predating the marker (memo: None) serialize without the
    // field and parse back as None — old baselines stay byte-stable.
    let legacy = doc_with(vec![workload("mixed12", 100.0)]);
    let json = legacy.to_json().unwrap();
    assert!(!json.contains("\"memo\""), "{json}");
    assert_eq!(BenchDoc::from_json(&json).unwrap().memo, None);

    for memo in [true, false] {
        let mut doc = doc_with(vec![workload("mixed12", 100.0)]);
        doc.memo = Some(memo);
        let parsed = BenchDoc::from_json(&doc.to_json().unwrap()).unwrap();
        assert_eq!(parsed.memo, Some(memo));
        assert_eq!(parsed, doc);
    }
}

#[test]
fn scale_fairness_warning_fires_only_across_scales() {
    let full = doc_with(vec![]);
    let mut smoke = doc_with(vec![]);
    smoke.smoke = true;

    assert_eq!(scale_fairness_warning(&full, &full), None);
    assert_eq!(scale_fairness_warning(&smoke, &smoke), None);

    let w = scale_fairness_warning(&full, &smoke).expect("cross-scale compare warns");
    assert!(w.contains("smoke run"), "{w}");
    assert!(w.contains("full baseline"), "{w}");
    assert!(w.contains("not scale-fair"), "{w}");
    let w = scale_fairness_warning(&smoke, &full).expect("either direction warns");
    assert!(w.contains("full run"), "{w}");
    assert!(w.contains("smoke baseline"), "{w}");
}

/// End-to-end routing check for the scale-fairness warning: it must land
/// on stderr, never in stdout (which piped-JSON workflows consume).
#[test]
fn molbench_routes_scale_warning_to_stderr() {
    let dir = std::env::temp_dir().join(format!("molbench-warn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A full-scale (smoke: false) baseline for a --smoke run to hit.
    let baseline = doc_with(vec![]);
    let path = dir.join("BENCH_full.json");
    std::fs::write(&path, baseline.to_json().unwrap()).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_molbench"))
        .args([
            "--smoke",
            "--refs",
            "200",
            "--samples",
            "1",
            "--budget-ms",
            "1",
            "--no-write",
            "--compare",
        ])
        .arg(&path)
        .output()
        .expect("molbench runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        stderr.contains("not scale-fair"),
        "warning missing from stderr:\n{stderr}"
    );
    assert!(
        !stdout.contains("not scale-fair"),
        "warning leaked into stdout:\n{stdout}"
    );
}

#[test]
fn floor_check_gates_prefixed_workloads_only() {
    const PREFIXES: &[&str] = &["single:", "miss_storm"];
    let floor = doc_with(vec![
        workload("single:ammp", 100.0),
        workload("single:mcf", 200.0),
        workload("miss_storm", 500.0),
        workload("mixed12", 1000.0),
    ]);

    // Faster or equal on every gated workload: clean, even though the
    // non-prefixed mixed12 got slower.
    let good = doc_with(vec![
        workload("single:ammp", 100.0),
        workload("single:mcf", 250.0),
        workload("miss_storm", 500.0),
        workload("mixed12", 1.0),
    ]);
    assert!(floor_check(&floor, &good, PREFIXES, 0.0).is_empty());

    // Slower on one gated workload of each family: both are reported
    // under a zero-tolerance gate.
    let slow = doc_with(vec![
        workload("single:ammp", 99.9),
        workload("single:mcf", 250.0),
        workload("miss_storm", 499.0),
        workload("mixed12", 1000.0),
    ]);
    let violations = floor_check(&floor, &slow, PREFIXES, 0.0);
    assert_eq!(violations.len(), 2);
    assert_eq!(violations[0].name, "single:ammp");
    assert_eq!(violations[0].floor_aps, 100.0);
    assert_eq!(violations[0].current_aps, Some(99.9));
    assert_eq!(violations[1].name, "miss_storm");
    assert_eq!(violations[1].current_aps, Some(499.0));

    // A gated workload missing from the current run is a violation.
    let missing = doc_with(vec![
        workload("single:ammp", 100.0),
        workload("miss_storm", 500.0),
    ]);
    let violations = floor_check(&floor, &missing, PREFIXES, 0.0);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].name, "single:mcf");
    assert_eq!(violations[0].current_aps, None);

    // A single-family prefix list leaves the other family ungated.
    let violations = floor_check(&floor, &slow, &["miss_storm"], 0.0);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].name, "miss_storm");
}

#[test]
fn floor_check_tolerance_absorbs_noise_but_not_regressions() {
    const PREFIXES: &[&str] = &["single:", "miss_storm"];
    let floor = doc_with(vec![
        workload("single:crc", 1000.0),
        workload("miss_storm", 500.0),
    ]);

    // Shortfalls inside the allowance are ties, not violations — the
    // exact boundary (floor * (1 - tol)) still passes.
    let tied = doc_with(vec![
        workload("single:crc", 901.0),
        workload("miss_storm", 450.0),
    ]);
    assert!(floor_check(&floor, &tied, PREFIXES, 0.10).is_empty());

    // Past the allowance, the violation reports the raw throughputs
    // (not tolerance-adjusted ones).
    let slow = doc_with(vec![
        workload("single:crc", 899.9),
        workload("miss_storm", 450.0),
    ]);
    let violations = floor_check(&floor, &slow, PREFIXES, 0.10);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].name, "single:crc");
    assert_eq!(violations[0].floor_aps, 1000.0);
    assert_eq!(violations[0].current_aps, Some(899.9));

    // A missing workload is a violation at any tolerance.
    let missing = doc_with(vec![workload("single:crc", 1000.0)]);
    let violations = floor_check(&floor, &missing, PREFIXES, 0.10);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].name, "miss_storm");
    assert_eq!(violations[0].current_aps, None);
}

#[test]
fn checked_in_baseline_parses_against_current_schema() {
    // Guards the trajectory: if the schema drifts, the baseline must be
    // regenerated in the same PR, or CI's --compare would break.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_baseline.json"
    );
    let text = std::fs::read_to_string(path).expect("results/BENCH_baseline.json is checked in");
    let doc = BenchDoc::from_json(&text).expect("baseline parses as molcache-bench-v1");
    for name in [
        "single:ammp",
        "single:mcf",
        "single:crc",
        "single:parser",
        "miss_storm",
        "mixed12",
        "access_batch",
        "engine_sweep_x4",
    ] {
        let w = doc
            .workload(name)
            .unwrap_or_else(|| panic!("baseline misses suite workload {name}"));
        assert!(w.accesses_per_sec > 0.0, "{name} has live throughput");
        assert!(w.median_ns_per_access > 0.0, "{name} has a median");
    }
}
