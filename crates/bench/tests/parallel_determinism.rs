//! Parallel runs must be byte-identical to serial runs.
//!
//! Every experiment point owns its cache and trace sources, so fanning
//! points across workers cannot change any measured number. These tests
//! pin that contract: the result *structs* (every miss rate, deviation
//! and counter) and the *rendered tables* from `--jobs 4` must equal the
//! `--jobs 1` output exactly.

use molcache_bench::experiments::{ablations, fig5, fig6, table1, table2, table4, table5};
use molcache_bench::{Engine, ExperimentScale};

const SCALE: ExperimentScale = ExperimentScale::Custom(30_000);

#[test]
fn table1_parallel_matches_serial() {
    let serial = table1::run_with(SCALE, &Engine::serial());
    let parallel = table1::run_with(SCALE, &Engine::new(4));
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.record().to_json(), parallel.record().to_json());
}

#[test]
fn fig5_parallel_matches_serial() {
    for graph in [fig5::Graph::A, fig5::Graph::B] {
        let serial = fig5::run_with(graph, SCALE, &Engine::serial());
        let parallel = fig5::run_with(graph, SCALE, &Engine::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.render(), parallel.render());
    }
}

#[test]
fn table2_and_table5_parallel_match_serial() {
    let serial = table2::run_with(SCALE, &Engine::serial());
    let parallel = table2::run_with(SCALE, &Engine::new(4));
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
    // Table 5 is a pure function of Table 2, but pin the engine path too.
    let t5_serial = table5::run_with(SCALE, &Engine::serial());
    let t5_parallel = table5::run_with(SCALE, &Engine::new(4));
    assert_eq!(t5_serial, t5_parallel);
    assert_eq!(t5_serial.render(), t5_parallel.render());
}

#[test]
fn fig6_parallel_matches_serial() {
    let serial = fig6::run_with(SCALE, &Engine::serial());
    let parallel = fig6::run_with(SCALE, &Engine::new(4));
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn table4_parallel_matches_serial() {
    let serial = table4::run_with(SCALE, &Engine::serial());
    let parallel = table4::run_with(SCALE, &Engine::new(4));
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn ablations_parallel_match_serial() {
    let scale = ExperimentScale::Custom(20_000);
    let serial = ablations::run_with(scale, &Engine::serial());
    let parallel = ablations::run_with(scale, &Engine::new(4));
    assert_eq!(serial, parallel);
    let rec_serial = ablations::record_with(scale, &Engine::serial());
    let rec_parallel = ablations::record_with(scale, &Engine::new(4));
    assert_eq!(rec_serial.to_json(), rec_parallel.to_json());
}

#[test]
fn oversubscribed_engine_matches_serial() {
    // More workers than points: the merge order must still hold.
    let serial = table2::run_with(SCALE, &Engine::serial());
    let parallel = table2::run_with(SCALE, &Engine::new(32));
    assert_eq!(serial, parallel);
}
