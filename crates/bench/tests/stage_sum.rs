//! Pipeline staging contract over a real workload: for every access the
//! Table 2 mixed workload produces, the per-stage cycle breakdown on the
//! outcome must sum exactly to the reported latency — the breakdown is a
//! decomposition of the measured number, never a second estimate — and
//! the lifetime stage totals must tile the aggregate activity counters.

use molcache_bench::experiments::table2;
use molcache_bench::harness::run_workload_on;
use molcache_core::{MolecularCache, RegionPolicy};
use molcache_sim::cmp::run_accesses_observed;
use molcache_sim::{AccessObserver, AccessOutcome, CacheModel, Request};
use molcache_trace::interleave::Workload;
use molcache_trace::presets::Benchmark;

/// Checks every outcome as it happens and accumulates what a correct
/// staging must reproduce in aggregate.
#[derive(Default)]
struct StageAuditor {
    accesses: u64,
    total_latency: u64,
    violations: u64,
}

impl AccessObserver for StageAuditor {
    fn on_access(&mut self, _req: &Request, out: &AccessOutcome) {
        self.accesses += 1;
        self.total_latency += u64::from(out.latency);
        let Some(stages) = out.stages.as_ref() else {
            self.violations += 1; // the molecular cache always stages
            return;
        };
        if stages.total_cycles() != out.latency {
            self.violations += 1;
        }
    }
}

fn mixed12_sources(seed: u64) -> Workload {
    let sources = molcache_trace::presets::workload(&Benchmark::MIXED12, seed)
        .into_iter()
        .map(|(_, src)| src)
        .collect();
    Workload::new(sources).expect("preset workload is valid")
}

#[test]
fn every_mixed12_access_decomposes_into_stage_cycles() {
    const REFS: u64 = 60_000;
    let mut cache: MolecularCache =
        table2::molecular_6mb_with_period(RegionPolicy::Randy, 7, 5_000);
    let mut auditor = StageAuditor::default();
    let summary = run_accesses_observed(
        mixed12_sources(7).round_robin(),
        &mut cache,
        REFS,
        &mut auditor,
    );

    assert_eq!(auditor.accesses, REFS);
    assert_eq!(
        auditor.violations, 0,
        "some access's stage cycles did not sum to its latency"
    );
    assert_eq!(auditor.total_latency, summary.total_latency());

    // Lifetime stage totals tile the aggregate counters.
    let activity = cache.activity();
    let s = &activity.stages;
    assert_eq!(s.total_cycles(), summary.total_latency());
    assert_eq!(
        s.asid_gate.asid_compares + s.ulmo_search.asid_compares,
        activity.asid_compares
    );
    assert_eq!(
        s.home_lookup.tag_probes + s.ulmo_search.tag_probes,
        activity.ways_probed
    );
    assert_eq!(s.fill.frames_touched, activity.line_fills);
    assert_eq!(s.victim.cycles, 0, "victim selection overlaps the miss");
}

#[test]
fn staging_is_identical_across_policies() {
    // The contract is policy-independent: all three replacement policies
    // keep stage cycles equal to total latency.
    for policy in [
        RegionPolicy::Random,
        RegionPolicy::Randy,
        RegionPolicy::LruDirect,
    ] {
        let mut cache: MolecularCache = table2::molecular_6mb_with_period(policy, 11, 5_000);
        let summary = run_workload_on(&Benchmark::MIXED12, &mut cache, 20_000, 11);
        assert_eq!(
            cache.activity().stages.total_cycles(),
            summary.total_latency(),
            "stage cycles diverged from latency under {policy}"
        );
    }
}
