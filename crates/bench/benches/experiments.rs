//! Experiment benches: one benchmark per paper table/figure.
//!
//! Each bench regenerates its artifact at smoke scale (100 K references)
//! so `cargo bench` both exercises the full experiment pipelines and
//! tracks their wall-clock cost. For paper-scale output, run the `repro`
//! binary instead:
//!
//! ```text
//! cargo run -p molcache-bench --release --bin repro -- all --scale paper
//! ```

use molcache_bench::experiments::{ablations, fig5, fig6, table1, table2, table4, table5};
use molcache_bench::stopwatch::{bench, section};
use molcache_bench::ExperimentScale;
use std::time::Duration;

const SCALE: ExperimentScale = ExperimentScale::Custom(100_000);
const BUDGET: Duration = Duration::from_millis(500);

fn main() {
    section("paper");
    bench("table1_interference", BUDGET, || {
        std::hint::black_box(table1::run(SCALE));
    });
    // One representative point per graph (the full 2x24-point sweep runs
    // via the repro binary).
    bench("fig5a_point_4mb_randy", BUDGET, || {
        std::hint::black_box(fig5::run_point(
            fig5::Graph::A,
            4 << 20,
            fig5::Config::Molecular(molcache_core::RegionPolicy::Randy),
            SCALE,
        ));
    });
    bench("fig5b_point_2mb_traditional4", BUDGET, || {
        std::hint::black_box(fig5::run_point(
            fig5::Graph::B,
            2 << 20,
            fig5::Config::Traditional(4),
            SCALE,
        ));
    });
    bench("table2_molecular_randy", BUDGET, || {
        std::hint::black_box(table2::run_config(
            table2::Config::Molecular(molcache_core::RegionPolicy::Randy),
            SCALE,
        ));
    });
    bench("table2_8mb_8way", BUDGET, || {
        std::hint::black_box(table2::run_config(
            table2::Config::Traditional(8 << 20, 8),
            SCALE,
        ));
    });
    bench("table4_power", BUDGET, || {
        std::hint::black_box(table4::run(SCALE));
    });
    bench("fig6_hpm", BUDGET, || {
        std::hint::black_box(fig6::run(SCALE));
    });
    bench("table5_power_deviation", BUDGET, || {
        std::hint::black_box(table5::run(SCALE));
    });
    bench("ablation_resize_triggers", BUDGET, || {
        std::hint::black_box(ablations::resize_triggers(SCALE));
    });
}
