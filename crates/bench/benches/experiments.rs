//! Experiment benches: one Criterion benchmark per paper table/figure.
//!
//! Each bench regenerates its artifact at smoke scale (100 K references)
//! so `cargo bench` both exercises the full experiment pipelines and
//! tracks their wall-clock cost. For paper-scale output, run the `repro`
//! binary instead:
//!
//! ```text
//! cargo run -p molcache-bench --release --bin repro -- all --scale paper
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use molcache_bench::experiments::{ablations, fig5, fig6, table1, table2, table4, table5};
use molcache_bench::ExperimentScale;

const SCALE: ExperimentScale = ExperimentScale::Custom(100_000);

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table1_interference", |b| {
        b.iter(|| std::hint::black_box(table1::run(SCALE)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    // One representative point per graph (the full 2x24-point sweep runs
    // via the repro binary).
    g.bench_function("fig5a_point_4mb_randy", |b| {
        b.iter(|| {
            std::hint::black_box(fig5::run_point(
                fig5::Graph::A,
                4 << 20,
                fig5::Config::Molecular(molcache_core::RegionPolicy::Randy),
                SCALE,
            ))
        })
    });
    g.bench_function("fig5b_point_2mb_traditional4", |b| {
        b.iter(|| {
            std::hint::black_box(fig5::run_point(
                fig5::Graph::B,
                2 << 20,
                fig5::Config::Traditional(4),
                SCALE,
            ))
        })
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table2_molecular_randy", |b| {
        b.iter(|| {
            std::hint::black_box(table2::run_config(
                table2::Config::Molecular(molcache_core::RegionPolicy::Randy),
                SCALE,
            ))
        })
    });
    g.bench_function("table2_8mb_8way", |b| {
        b.iter(|| {
            std::hint::black_box(table2::run_config(
                table2::Config::Traditional(8 << 20, 8),
                SCALE,
            ))
        })
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table4_power", |b| {
        b.iter(|| std::hint::black_box(table4::run(SCALE)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig6_hpm", |b| {
        b.iter(|| std::hint::black_box(fig6::run(SCALE)))
    });
    g.finish();
}

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table5_power_deviation", |b| {
        b.iter(|| std::hint::black_box(table5::run(SCALE)))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("ablation_resize_triggers", |b| {
        b.iter(|| std::hint::black_box(ablations::resize_triggers(SCALE)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig5,
    bench_table2,
    bench_table4,
    bench_fig6,
    bench_table5,
    bench_ablations,
);
criterion_main!(benches);
