//! Micro-benchmarks: simulator throughput and power-model cost.
//!
//! These measure the *simulator* (accesses per second, organization
//! search cost), complementing the experiment benches that regenerate the
//! paper's tables.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_power::cacti::analyze;
use molcache_power::tech::TechNode;
use molcache_sim::replacement::{Policy, SetPolicy};
use molcache_sim::{CacheConfig, CacheModel, Request, SetAssocCache};
use molcache_trace::gen::TraceSource;
use molcache_trace::presets::Benchmark;
use molcache_trace::rng::Rng;
use molcache_trace::Asid;

const BATCH: usize = 10_000;

fn trace(n: usize) -> Vec<Request> {
    let mut src = Benchmark::Parser.source(Asid::new(1), 3);
    src.collect_n(n).into_iter().map(Request::from).collect()
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(BATCH as u64));
    for bench in [Benchmark::Ammp, Benchmark::Mcf, Benchmark::Crc] {
        group.bench_function(bench.name(), |b| {
            let mut src = bench.source(Asid::new(1), 7);
            b.iter(|| {
                for _ in 0..BATCH {
                    std::hint::black_box(src.next_access());
                }
            });
        });
    }
    group.finish();
}

fn bench_set_assoc_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc_access");
    group.throughput(Throughput::Elements(BATCH as u64));
    let reqs = trace(BATCH);
    for assoc in [1u32, 4, 8] {
        group.bench_function(format!("1MB_{assoc}way"), |b| {
            let mut cache =
                SetAssocCache::lru(CacheConfig::new(1 << 20, assoc, 64).unwrap());
            b.iter(|| {
                for req in &reqs {
                    std::hint::black_box(cache.access(*req));
                }
            });
        });
    }
    group.finish();
}

fn bench_molecular_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("molecular_access");
    group.throughput(Throughput::Elements(BATCH as u64));
    let reqs = trace(BATCH);
    for policy in [
        RegionPolicy::Random,
        RegionPolicy::Randy,
        RegionPolicy::LruDirect,
    ] {
        group.bench_function(format!("1MB_{policy}"), |b| {
            let config = MolecularConfig::builder()
                .molecule_size(8 * 1024)
                .tile_molecules(32)
                .tiles_per_cluster(4)
                .clusters(1)
                .policy(policy)
                .build()
                .unwrap();
            let mut cache = MolecularCache::new(config);
            b.iter(|| {
                for req in &reqs {
                    std::hint::black_box(cache.access(*req));
                }
            });
        });
    }
    group.finish();
}

fn bench_resize_round(c: &mut Criterion) {
    // Cost of one full resize round (the paper estimates ~1500 cycles per
    // application on a host core; here we measure our simulator's cost).
    c.bench_function("resize_round_4apps", |b| {
        let mk = || {
            let config = MolecularConfig::builder()
                .molecule_size(8 * 1024)
                .tile_molecules(64)
                .tiles_per_cluster(4)
                .clusters(1)
                // Constant period 1000: exactly one resize per 1000 accesses.
                .trigger(ResizeTrigger::Constant { period: 1_000 })
                .build()
                .unwrap();
            let mut cache = MolecularCache::new(config);
            let mut sources: Vec<_> = Benchmark::SPEC4
                .iter()
                .enumerate()
                .map(|(i, bench)| bench.source(Asid::new(i as u16 + 1), 3))
                .collect();
            // Warm the regions so resize rounds have real work to do.
            for _ in 0..250 {
                for src in &mut sources {
                    let acc = src.next_access().unwrap();
                    cache.access(Request::from(acc));
                }
            }
            (cache, sources)
        };
        b.iter_batched(
            mk,
            |(mut cache, mut sources)| {
                for _ in 0..250 {
                    for src in &mut sources {
                        let acc = src.next_access().unwrap();
                        std::hint::black_box(cache.access(Request::from(acc)));
                    }
                }
                cache
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_replacement_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement_victim");
    for policy in [Policy::Lru, Policy::Fifo, Policy::Random, Policy::PlruTree] {
        group.bench_function(format!("{policy}_8way"), |b| {
            let mut p = SetPolicy::new(policy, 8);
            let mut rng = Rng::seeded(3);
            for w in 0..8 {
                p.on_fill(w);
            }
            b.iter(|| {
                let v = p.victim(&mut rng);
                p.on_hit(std::hint::black_box(v));
            });
        });
    }
    group.finish();
}

fn bench_din_parse(c: &mut Criterion) {
    use molcache_trace::din::{read_din, write_din};
    let mut src = Benchmark::Gcc.source(Asid::new(1), 3);
    let accs = src.collect_n(BATCH);
    let mut bytes = Vec::new();
    write_din(&accs, &mut bytes).unwrap();
    let mut group = c.benchmark_group("din");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("parse", |b| {
        b.iter(|| {
            std::hint::black_box(
                read_din(std::io::Cursor::new(&bytes), Asid::new(1)).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_reuse_profile_generation(c: &mut Criterion) {
    use molcache_trace::gen::{ReuseBand, ReuseProfileSource};
    use molcache_trace::Address;
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("reuse_profile", |b| {
        let mut src = ReuseProfileSource::new(
            Asid::new(1),
            Address::new(0),
            vec![ReuseBand::new(1, 64, 0.7), ReuseBand::new(64, 4096, 0.3)],
            0.02,
            0.1,
            5,
        )
        .unwrap();
        b.iter(|| {
            for _ in 0..BATCH {
                std::hint::black_box(src.next_access());
            }
        });
    });
    group.finish();
}

fn bench_power_model(c: &mut Criterion) {
    let node = TechNode::nm70();
    c.bench_function("cacti_analyze_8mb_4way", |b| {
        let cfg = CacheConfig::new(8 << 20, 4, 64).unwrap().with_ports(4);
        b.iter(|| std::hint::black_box(analyze(&cfg, &node)));
    });
    c.bench_function("cacti_analyze_molecule", |b| {
        let cfg = CacheConfig::new(8 << 10, 1, 64).unwrap();
        b.iter(|| std::hint::black_box(analyze(&cfg, &node)));
    });
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_reuse_profile_generation,
    bench_set_assoc_access,
    bench_molecular_access,
    bench_resize_round,
    bench_replacement_policies,
    bench_din_parse,
    bench_power_model,
);
criterion_main!(benches);
