//! Micro-benchmarks: simulator throughput and power-model cost.
//!
//! These measure the *simulator* (accesses per second, organization
//! search cost), complementing the experiment benches that regenerate the
//! paper's tables. Timing runs on the in-tree [`stopwatch`] runner (the
//! workspace builds offline, so no external bench harness).
//!
//! [`stopwatch`]: molcache_bench::stopwatch

use molcache_bench::stopwatch::{bench, bench_throughput, section};
use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_power::cacti::analyze;
use molcache_power::tech::TechNode;
use molcache_sim::replacement::{Policy, SetPolicy};
use molcache_sim::{CacheConfig, CacheModel, Request, SetAssocCache};
use molcache_trace::gen::TraceSource;
use molcache_trace::presets::Benchmark;
use molcache_trace::rng::Rng;
use molcache_trace::Asid;
use std::time::Duration;

const BATCH: usize = 10_000;
const BUDGET: Duration = Duration::from_millis(300);

fn trace(n: usize) -> Vec<Request> {
    let mut src = Benchmark::Parser.source(Asid::new(1), 3);
    src.collect_n(n).into_iter().map(Request::from).collect()
}

fn bench_trace_generation() {
    section("trace_generation");
    for bm in [Benchmark::Ammp, Benchmark::Mcf, Benchmark::Crc] {
        let mut src = bm.source(Asid::new(1), 7);
        bench_throughput(bm.name(), BATCH as u64, BUDGET, || {
            for _ in 0..BATCH {
                std::hint::black_box(src.next_access());
            }
        });
    }
}

fn bench_reuse_profile_generation() {
    use molcache_trace::gen::{ReuseBand, ReuseProfileSource};
    use molcache_trace::Address;
    let mut src = ReuseProfileSource::new(
        Asid::new(1),
        Address::new(0),
        vec![ReuseBand::new(1, 64, 0.7), ReuseBand::new(64, 4096, 0.3)],
        0.02,
        0.1,
        5,
    )
    .unwrap();
    bench_throughput("reuse_profile", BATCH as u64, BUDGET, || {
        for _ in 0..BATCH {
            std::hint::black_box(src.next_access());
        }
    });
}

fn bench_set_assoc_access() {
    section("set_assoc_access");
    let reqs = trace(BATCH);
    for assoc in [1u32, 4, 8] {
        let mut cache = SetAssocCache::lru(CacheConfig::new(1 << 20, assoc, 64).unwrap());
        bench_throughput(&format!("1MB_{assoc}way"), BATCH as u64, BUDGET, || {
            for req in &reqs {
                std::hint::black_box(cache.access(*req));
            }
        });
    }
}

fn bench_molecular_access() {
    section("molecular_access");
    let reqs = trace(BATCH);
    for policy in [
        RegionPolicy::Random,
        RegionPolicy::Randy,
        RegionPolicy::LruDirect,
    ] {
        let config = MolecularConfig::builder()
            .molecule_size(8 * 1024)
            .tile_molecules(32)
            .tiles_per_cluster(4)
            .clusters(1)
            .policy(policy)
            .build()
            .unwrap();
        let mut cache = MolecularCache::new(config);
        bench_throughput(&format!("1MB_{policy}"), BATCH as u64, BUDGET, || {
            for req in &reqs {
                std::hint::black_box(cache.access(*req));
            }
        });
    }
}

fn bench_molecular_access_batched() {
    // The batched entry point the parallel experiment engine drives:
    // same requests as `molecular_access`, one `access_batch` call per
    // iteration instead of a per-request dispatch loop.
    section("molecular_access_batched");
    let reqs = trace(BATCH);
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(32)
        .tiles_per_cluster(4)
        .clusters(1)
        .policy(RegionPolicy::Randy)
        .build()
        .unwrap();
    let mut cache = MolecularCache::new(config);
    bench_throughput("1MB_Randy_batched", BATCH as u64, BUDGET, || {
        std::hint::black_box(cache.access_batch(&reqs));
    });
}

fn bench_resize_round() {
    // Cost of one full resize round (the paper estimates ~1500 cycles per
    // application on a host core; here we measure our simulator's cost).
    section("resize");
    let mk = || {
        let config = MolecularConfig::builder()
            .molecule_size(8 * 1024)
            .tile_molecules(64)
            .tiles_per_cluster(4)
            .clusters(1)
            // Constant period 1000: exactly one resize per 1000 accesses.
            .trigger(ResizeTrigger::Constant { period: 1_000 })
            .build()
            .unwrap();
        let mut cache = MolecularCache::new(config);
        let mut sources: Vec<_> = Benchmark::SPEC4
            .iter()
            .enumerate()
            .map(|(i, bm)| bm.source(Asid::new(i as u16 + 1), 3))
            .collect();
        // Warm the regions so resize rounds have real work to do.
        for _ in 0..250 {
            for src in &mut sources {
                let acc = src.next_access().unwrap();
                cache.access(Request::from(acc));
            }
        }
        (cache, sources)
    };
    bench("resize_round_4apps", BUDGET, || {
        let (mut cache, mut sources) = mk();
        for _ in 0..250 {
            for src in &mut sources {
                let acc = src.next_access().unwrap();
                std::hint::black_box(cache.access(Request::from(acc)));
            }
        }
        std::hint::black_box(&cache);
    });
}

fn bench_replacement_policies() {
    section("replacement_victim");
    for policy in [Policy::Lru, Policy::Fifo, Policy::Random, Policy::PlruTree] {
        let mut p = SetPolicy::new(policy, 8);
        let mut rng = Rng::seeded(3);
        for w in 0..8 {
            p.on_fill(w);
        }
        bench(&format!("{policy}_8way"), BUDGET, || {
            for _ in 0..1000 {
                let v = p.victim(&mut rng);
                p.on_hit(std::hint::black_box(v));
            }
        });
    }
}

fn bench_din_parse() {
    use molcache_trace::din::{read_din, write_din};
    section("din");
    let mut src = Benchmark::Gcc.source(Asid::new(1), 3);
    let accs = src.collect_n(BATCH);
    let mut bytes = Vec::new();
    write_din(&accs, &mut bytes).unwrap();
    bench_throughput("parse", BATCH as u64, BUDGET, || {
        std::hint::black_box(read_din(std::io::Cursor::new(&bytes), Asid::new(1)).unwrap());
    });
}

fn bench_power_model() {
    section("power_model");
    let node = TechNode::nm70();
    let big = CacheConfig::new(8 << 20, 4, 64).unwrap().with_ports(4);
    bench("cacti_analyze_8mb_4way", BUDGET, || {
        std::hint::black_box(analyze(&big, &node));
    });
    let molecule = CacheConfig::new(8 << 10, 1, 64).unwrap();
    bench("cacti_analyze_molecule", BUDGET, || {
        std::hint::black_box(analyze(&molecule, &node));
    });
}

fn main() {
    bench_trace_generation();
    bench_reuse_profile_generation();
    bench_set_assoc_access();
    bench_molecular_access();
    bench_molecular_access_batched();
    bench_resize_round();
    bench_replacement_policies();
    bench_din_parse();
    bench_power_model();
}
