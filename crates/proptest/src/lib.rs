//! Vendored stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds in environments without crates.io access, so this
//! crate implements — dependency-free — exactly the subset of the proptest
//! API the test-suite uses: value [`Strategy`]s over integer ranges, tuples,
//! booleans and vectors, the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros, and a deterministic case
//! runner.
//!
//! Two deliberate departures from the real crate:
//!
//! * **No shrinking.** A failing case reports its deterministic case index;
//!   the same test name and index always regenerate the same inputs, so
//!   failures stay reproducible without a minimizer.
//! * **Deterministic seeding.** Case *n* of test *t* is seeded from a hash
//!   of `(t, n)`, so runs are identical across machines and invocations.
//!   This suits a simulator test-suite where reproducibility beats stochastic
//!   coverage; bump the case count to widen the explored space.

pub mod strategy {
    //! Value generation: the [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree: strategies sample
    /// directly from the RNG and no shrinking is attempted.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! Strategies over the full domain of numeric types.

    pub mod u64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// The strategy type behind [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Generates uniformly distributed `u64` values.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;

            fn sample(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner and its configuration.

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            assert!(cases > 0, "case count must be positive");
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (input did not satisfy an assumption).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic splitmix64 generator seeding each test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                // Pre-whiten so consecutive seeds do not yield correlated
                // first draws.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next value of the splitmix64 sequence.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Seed for attempt `attempt` of the test named `name` (FNV-1a over
    /// the name, mixed with the attempt index).
    pub fn case_seed(name: &str, attempt: u64) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ attempt.wrapping_mul(0xA24B_AED4_963E_E407)
    }

    /// Drives `case` until `config.cases` successes, panicking on the
    /// first failure. Rejected cases (via `prop_assume!`) are retried up
    /// to a bounded number of attempts.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let max_attempts = u64::from(config.cases).saturating_mul(10).max(100);
        let mut passed: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            assert!(
                attempt < max_attempts,
                "proptest `{name}`: gave up after {attempt} attempts \
                 ({passed}/{} cases passed; too many prop_assume! rejections)",
                config.cases
            );
            let mut rng = TestRng::from_seed(case_seed(name, attempt));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest `{name}` failed at case {passed} (attempt {attempt}): {msg}\n\
                     (deterministic: re-running reproduces this case)"
                ),
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case unless the condition holds; the runner draws
/// fresh inputs instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that samples its strategies and runs the body
/// for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &($cfg),
                concat!(module_path!(), "::", stringify!($name)),
                |rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{case_seed, TestRng};

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeds_differ_by_name_and_attempt() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3u16..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (5u32..=5).sample(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = crate::collection::vec(0u64..10, 2..6);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = (0u32..4).prop_map(|x| x * 2);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, assume and asserts.
        #[test]
        fn macro_smoke((a, b) in (0u64..100, 0u64..100), flip in crate::bool::ANY) {
            prop_assume!(a != 99);
            let sum = a + b;
            prop_assert!(sum >= a, "sum {} lost {}", sum, a);
            prop_assert_eq!(sum - b, a);
            prop_assert_ne!(sum + 1, sum);
            let _ = flip;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
