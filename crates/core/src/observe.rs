//! Telemetry publish points.
//!
//! The cache publishes into its attached [`SinkHandle`] at three sites:
//! per-partition samples and cache-wide activity (including the
//! per-stage pipeline totals) when an access closes an epoch, and resize
//! records when Algorithm 1 applies a decision. Telemetry only *reads*
//! cache state, so results stay bit-identical whether or not a sink is
//! attached.

use crate::cache::MolecularCache;
use crate::policy::DecisionInputs;
use crate::region::Region;
use molcache_telemetry::{
    EpochActivity, EpochSample, Event, ResizeDecisionInputs, ResizeKind, ResizeRecord,
};
use molcache_trace::Asid;

impl MolecularCache {
    /// Fraction of a region's line frames holding valid lines.
    pub(crate) fn occupancy_of(&self, region: &Region) -> f64 {
        let frames = region.size() * self.cfg.frames_per_molecule();
        if frames == 0 {
            return 0.0;
        }
        let valid: usize = region.molecules().map(|id| self.tags.occupancy(id)).sum();
        valid as f64 / frames as f64
    }

    /// Publishes per-partition samples and cache-wide activity when the
    /// current access closes an epoch.
    pub(crate) fn maybe_close_epoch(&mut self) {
        if !self.sink.is_enabled() || self.activity.accesses == 0 {
            return;
        }
        if !self
            .activity
            .accesses
            .is_multiple_of(self.sink.epoch_length())
        {
            return;
        }
        let epoch = self.epoch_index;
        let delta = self.stats.since(&self.epoch_stats_base);
        let samples: Vec<EpochSample> = self
            .regions
            .iter()
            .map(|(asid, region)| {
                let app = delta.app(*asid);
                EpochSample {
                    epoch,
                    asid: *asid,
                    accesses: app.accesses,
                    misses: app.misses,
                    molecules: region.size(),
                    rows: region.num_rows(),
                    occupancy: self.occupancy_of(region),
                    goal: region.goal(),
                }
            })
            .collect();
        let base = self.epoch_activity_base;
        // Memo hits are a diagnostic side-channel: carried on the sample
        // but excluded from the canonical JSON export (which must be
        // byte-identical memo-on vs memo-off).
        #[cfg(feature = "memo-front")]
        let memo_hits = self.memo.hits() - self.epoch_memo_base;
        #[cfg(not(feature = "memo-front"))]
        let memo_hits = 0;
        let activity = EpochActivity {
            epoch,
            accesses: self.activity.accesses - base.accesses,
            ways_probed: self.activity.ways_probed - base.ways_probed,
            line_fills: self.activity.line_fills - base.line_fills,
            writebacks: self.activity.writebacks - base.writebacks,
            asid_compares: self.activity.asid_compares - base.asid_compares,
            ulmo_searches: self.activity.ulmo_searches - base.ulmo_searches,
            free_molecules: self.free_molecules(),
            memo_hits,
            stages: self.activity.stages.since(&base.stages),
        };
        for sample in &samples {
            self.sink.emit(Event::Partition(sample));
        }
        self.sink.emit(Event::Epoch(&activity));
        self.epoch_index += 1;
        self.epoch_stats_base = self.stats.clone();
        self.epoch_activity_base = self.activity;
        #[cfg(feature = "memo-front")]
        {
            self.epoch_memo_base = self.memo.hits();
        }
    }

    /// Publishes one applied resize decision, tagged with the policy
    /// that fired it and the full decision-input snapshot it saw.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn publish_resize(
        &self,
        asid: Asid,
        kind: ResizeKind,
        requested: usize,
        applied: usize,
        before: usize,
        window_miss_rate: f64,
        goal: f64,
        inputs: &DecisionInputs,
    ) {
        if !self.sink.is_enabled() {
            return;
        }
        let record = ResizeRecord {
            at_access: self.activity.accesses,
            trigger: self.resize_policy.trigger_label().to_string(),
            asid,
            kind,
            requested,
            applied,
            before,
            after: self.regions[&asid].size(),
            window_miss_rate,
            goal,
            policy: self.resize_policy.name().to_string(),
            inputs: ResizeDecisionInputs {
                window_accesses: inputs.window_accesses,
                window_miss_rate: inputs.window_miss_rate,
                last_miss_rate: inputs.last_miss_rate,
                goal: inputs.goal,
                current: inputs.current,
                last_allocation: inputs.last_allocation,
                max_allocation: inputs.max_allocation,
                free_molecules: inputs.free_molecules,
            },
        };
        self.sink.emit(Event::Resize(&record));
    }
}
