//! Cache regions (partitions) and their replacement view (§3.3, Fig. 4).

use crate::config::RegionPolicy;
use crate::ids::{ClusterId, MoleculeId, TileId};
use molcache_trace::{Address, Asid};

/// An application-exclusive cache partition.
///
/// The *access view* of a region is simply "all molecules configured with
/// my ASID" — lookup scans them hierarchically. The *replacement view* is
/// the 2-D sparse matrix of Figure 4: rows with possibly different
/// molecule counts (non-uniform associativity per row). Random keeps all
/// molecules in a single row; Randy distributes them over up to
/// `row_max` rows and maps each address to a fixed row.
///
/// ```
/// use molcache_core::region::Region;
/// use molcache_core::config::RegionPolicy;
/// use molcache_core::ids::{ClusterId, MoleculeId, TileId};
/// use molcache_trace::{Address, Asid};
///
/// let mut r = Region::new(
///     Asid::new(1), TileId(0), ClusterId(0),
///     RegionPolicy::Randy, 1, 0.10, 4,
/// );
/// for i in 0..4 {
///     r.add_molecule(MoleculeId(i));
/// }
/// assert_eq!(r.num_rows(), 4);
/// // Randy: the address picks the row deterministically.
/// let victim = r.select_victim(Address::new(2 * 8192), 8192, 99);
/// assert_eq!(victim, Some(MoleculeId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Region {
    asid: Asid,
    home_tile: TileId,
    cluster: ClusterId,
    policy: RegionPolicy,
    line_factor: u32,
    goal: f64,
    row_max: usize,
    /// Replacement view: rows of molecules (read and updated by the
    /// [`VictimPolicy`](crate::pipeline::VictimPolicy) implementations).
    pub(crate) rows: Vec<Vec<MoleculeId>>,
    /// Replacement-miss counter per row (Randy's add/remove guidance).
    pub(crate) row_misses: Vec<u64>,
    // --- resize bookkeeping (§3.4 / Algorithm 1) ---
    window_accesses: u64,
    window_misses: u64,
    last_miss_rate: f64,
    last_allocation: usize,
    /// Time-weighted allocation integral for HPM statistics.
    allocation_integral: u64,
    lifetime_accesses: u64,
    lifetime_hits: u64,
    /// Last-hit clock per molecule (LRU-Direct replacement state).
    pub(crate) recency: std::collections::BTreeMap<MoleculeId, u64>,
    // --- cached Ulmo search list (see `crate::search_list`) ---
    /// Remote tiles holding member molecules, sorted ascending.
    pub(crate) search_tiles: crate::search_list::TileList,
    /// Structural generation the list was built under (0 = stale).
    pub(crate) search_generation: u64,
}

impl Region {
    /// Creates an empty region.
    pub fn new(
        asid: Asid,
        home_tile: TileId,
        cluster: ClusterId,
        policy: RegionPolicy,
        line_factor: u32,
        goal: f64,
        row_max: usize,
    ) -> Self {
        assert!(row_max > 0, "row_max must be positive");
        Region {
            asid,
            home_tile,
            cluster,
            policy,
            line_factor,
            goal,
            row_max,
            rows: Vec::new(),
            row_misses: Vec::new(),
            window_accesses: 0,
            window_misses: 0,
            last_miss_rate: 1.0,
            last_allocation: 0,
            allocation_integral: 0,
            lifetime_accesses: 0,
            lifetime_hits: 0,
            recency: std::collections::BTreeMap::new(),
            search_tiles: crate::search_list::TileList::default(),
            search_generation: 0,
        }
    }

    /// The owning application.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The tile the owning processor is wired to.
    pub fn home_tile(&self) -> TileId {
        self.home_tile
    }

    /// The cluster hosting the region.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// The region's replacement policy.
    pub fn policy(&self) -> RegionPolicy {
        self.policy
    }

    /// Line-size factor `k` (each miss fetches `k` base lines).
    pub fn line_factor(&self) -> u32 {
        self.line_factor
    }

    /// The region's miss-rate goal.
    pub fn goal(&self) -> f64 {
        self.goal
    }

    /// Changes the miss-rate goal at runtime (per-tenant SLA update).
    pub(crate) fn set_goal(&mut self, goal: f64) {
        self.goal = goal;
    }

    /// Molecules currently in the region.
    pub fn size(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Returns `true` when the region holds no molecules.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All member molecules, row by row.
    pub fn molecules(&self) -> impl Iterator<Item = MoleculeId> + '_ {
        self.rows.iter().flatten().copied()
    }

    /// Current number of replacement rows (the configured way size found
    /// "along the first column").
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The molecules of one row (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows()`.
    pub fn row(&self, row: usize) -> &[MoleculeId] {
        &self.rows[row]
    }

    /// Adds a molecule to the replacement view.
    ///
    /// Randy: while the view has fewer than `row_max` rows a new
    /// single-molecule row is created (building up the way size); after
    /// that the molecule increases the associativity of the row with the
    /// highest miss count (§3.4 "Where to add?"). Random: everything goes
    /// into one row.
    pub fn add_molecule(&mut self, id: MoleculeId) {
        match self.policy {
            RegionPolicy::Random => {
                if self.rows.is_empty() {
                    self.rows.push(Vec::new());
                    self.row_misses.push(0);
                }
                self.rows[0].push(id);
            }
            RegionPolicy::Randy | RegionPolicy::LruDirect => {
                if self.rows.len() < self.row_max {
                    self.rows.push(vec![id]);
                    self.row_misses.push(0);
                } else {
                    // §3.4 "Where to add?": rows handling more misses get
                    // more associativity. We rank rows by miss *pressure*
                    // (misses per molecule already present) so that a
                    // multi-molecule grant spreads across rows instead of
                    // piling onto whichever row was hottest at the start
                    // of the grant; ties (e.g. the initial allocation)
                    // fall to the thinnest row, keeping way sizes
                    // balanced until the workload differentiates them.
                    let hottest = (0..self.rows.len())
                        .max_by(|&i, &j| {
                            let di = self.row_misses[i] as f64 / (self.rows[i].len() + 1) as f64;
                            let dj = self.row_misses[j] as f64 / (self.rows[j].len() + 1) as f64;
                            di.partial_cmp(&dj)
                                .expect("densities are finite")
                                .then_with(|| self.rows[j].len().cmp(&self.rows[i].len()))
                        })
                        .unwrap_or(0);
                    self.rows[hottest].push(id);
                }
            }
        }
    }

    /// Picks and removes the coldest molecule (§3.4 "Where to add?" —
    /// withdrawal side), preferring not to empty a row unless it is the
    /// only way to shrink. `molecule_misses` supplies the per-molecule
    /// counters used under Random replacement.
    ///
    /// Returns `None` when the region has no molecules.
    pub fn remove_coldest<F>(&mut self, molecule_misses: F) -> Option<MoleculeId>
    where
        F: Fn(MoleculeId) -> u64,
    {
        if self.rows.is_empty() {
            return None;
        }
        let (row_idx, mol_idx) = match self.policy {
            RegionPolicy::Random => {
                // Per-molecule counters: coldest molecule of the single row.
                let row = 0;
                let idx = self.rows[row]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &m)| molecule_misses(m))
                    .map(|(i, _)| i)?;
                (row, idx)
            }
            RegionPolicy::Randy | RegionPolicy::LruDirect => {
                // Per-row counters: coldest row, preferring rows that keep
                // at least one molecule after removal.
                let candidate = self
                    .row_misses
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| self.rows[*i].len() > 1)
                    .min_by_key(|(_, &m)| m)
                    .map(|(i, _)| i)
                    .or_else(|| {
                        self.row_misses
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| !self.rows[*i].is_empty())
                            .min_by_key(|(_, &m)| m)
                            .map(|(i, _)| i)
                    })?;
                let idx = self.rows[candidate]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &m)| molecule_misses(m))
                    .map(|(i, _)| i)?;
                (candidate, idx)
            }
        };
        let id = self.rows[row_idx].swap_remove(mol_idx);
        if self.rows[row_idx].is_empty() {
            self.rows.remove(row_idx);
            self.row_misses.remove(row_idx);
        }
        self.recency.remove(&id);
        Some(id)
    }

    /// Selects the victim molecule for a replacement (§3.3).
    ///
    /// `draw` is one raw random value from whatever generator the cache
    /// models in hardware (see
    /// [`VictimRng`](crate::config::VictimRng)): Random reduces it modulo
    /// the whole region, Randy modulo the addressed row — which is why
    /// Randy "reduces the reliance on random numbers" (the paper, §3.3).
    ///
    /// Returns `None` when the region has no molecules.
    pub fn select_victim(
        &mut self,
        addr: Address,
        molecule_size: u64,
        draw: u64,
    ) -> Option<MoleculeId> {
        crate::pipeline::victim::policy_of(self.policy).select(self, addr, molecule_size, draw)
    }

    /// Records a hit in `id` at logical time `clock` (LRU-Direct state;
    /// cheap no-op bookkeeping for the random policies).
    pub fn note_molecule_use(&mut self, id: MoleculeId, clock: u64) {
        if self.policy == RegionPolicy::LruDirect {
            self.recency.insert(id, clock);
        }
    }

    /// Re-homes the region onto another tile (the paper's non-static
    /// processor-tile mapping: "the processor-tile assignment can be made
    /// non-static by allowing the processor-tile mapping to be changed
    /// during a context-switch"). Molecule membership is untouched —
    /// future lookups simply start their hierarchical search at the new
    /// tile, and previously-home molecules are now reached through Ulmo.
    pub fn set_home_tile(&mut self, tile: TileId) {
        self.home_tile = tile;
    }

    /// Removes every molecule from the replacement view, returning them
    /// (region teardown).
    pub fn drain_molecules(&mut self) -> Vec<MoleculeId> {
        self.recency.clear();
        self.row_misses.clear();
        self.rows.drain(..).flatten().collect()
    }

    /// Records one access (and whether it missed) for the resize window
    /// and the lifetime HPM statistics.
    pub fn record_access(&mut self, miss: bool) {
        self.window_accesses += 1;
        self.lifetime_accesses += 1;
        self.allocation_integral += self.size() as u64;
        if miss {
            self.window_misses += 1;
        } else {
            self.lifetime_hits += 1;
        }
    }

    /// Miss rate of the current resize window (1.0 before any access).
    pub fn window_miss_rate(&self) -> f64 {
        if self.window_accesses == 0 {
            1.0
        } else {
            self.window_misses as f64 / self.window_accesses as f64
        }
    }

    /// Accesses in the current window.
    pub fn window_accesses(&self) -> u64 {
        self.window_accesses
    }

    /// Miss rate recorded at the previous resize.
    pub fn last_miss_rate(&self) -> f64 {
        self.last_miss_rate
    }

    /// Molecules granted in the previous growth step.
    pub fn last_allocation(&self) -> usize {
        self.last_allocation
    }

    /// Records a growth step of `n` molecules.
    pub fn note_allocation(&mut self, n: usize) {
        if n > 0 {
            self.last_allocation = n;
        }
    }

    /// Closes the resize window: stores its miss rate and clears the
    /// window counters (including per-row miss counters).
    pub fn close_window(&mut self) {
        self.last_miss_rate = self.window_miss_rate();
        self.window_accesses = 0;
        self.window_misses = 0;
        for m in &mut self.row_misses {
            *m = 0;
        }
    }

    /// Lifetime hits of the region.
    pub fn lifetime_hits(&self) -> u64 {
        self.lifetime_hits
    }

    /// Lifetime accesses of the region.
    pub fn lifetime_accesses(&self) -> u64 {
        self.lifetime_accesses
    }

    /// Time-averaged molecule allocation over the region's lifetime.
    pub fn average_allocation(&self) -> f64 {
        if self.lifetime_accesses == 0 {
            self.size() as f64
        } else {
            self.allocation_integral as f64 / self.lifetime_accesses as f64
        }
    }

    /// Hits per molecule: lifetime hit rate divided by the time-averaged
    /// molecule usage (Figure 6's metric).
    pub fn hits_per_molecule(&self) -> f64 {
        let avg = self.average_allocation();
        if avg == 0.0 || self.lifetime_accesses == 0 {
            0.0
        } else {
            (self.lifetime_hits as f64 / self.lifetime_accesses as f64) / avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_trace::rng::Rng;

    fn region(policy: RegionPolicy) -> Region {
        Region::new(Asid::new(1), TileId(0), ClusterId(0), policy, 1, 0.1, 4)
    }

    #[test]
    fn random_policy_single_row() {
        let mut r = region(RegionPolicy::Random);
        for i in 0..6 {
            r.add_molecule(MoleculeId(i));
        }
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.size(), 6);
    }

    #[test]
    fn randy_builds_rows_then_widens_hottest() {
        let mut r = region(RegionPolicy::Randy);
        for i in 0..4 {
            r.add_molecule(MoleculeId(i));
        }
        assert_eq!(r.num_rows(), 4, "first molecules become rows");
        // Heat up row 2 via victim selections mapping there.
        let addr = Address::new(2 * 8192); // (addr/8192) % 4 == 2
        r.select_victim(addr, 8192, 5);
        r.select_victim(addr, 8192, 9);
        r.add_molecule(MoleculeId(99));
        assert_eq!(r.row(2).len(), 2, "hottest row gains associativity");
    }

    #[test]
    fn randy_victim_row_mapping() {
        let mut r = region(RegionPolicy::Randy);
        for i in 0..4 {
            r.add_molecule(MoleculeId(i));
        }
        // Row 3: molecules were added one per row in order, so row 3
        // holds MoleculeId(3).
        let addr = Address::new(3 * 8192);
        assert_eq!(r.select_victim(addr, 8192, 7), Some(MoleculeId(3)));
    }

    #[test]
    fn random_victim_uniformish() {
        let mut r = region(RegionPolicy::Random);
        for i in 0..4 {
            r.add_molecule(MoleculeId(i));
        }
        let mut rng = Rng::seeded(3);
        let mut seen = [false; 4];
        for i in 0..200u64 {
            let v = r
                .select_victim(Address::new(i * 64), 8192, rng.next_u64())
                .unwrap();
            seen[v.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all molecules chosen eventually");
    }

    #[test]
    fn empty_region_has_no_victim() {
        let mut r = region(RegionPolicy::Randy);
        assert_eq!(r.select_victim(Address::new(0), 8192, 1), None);
        assert!(r.is_empty());
    }

    #[test]
    fn remove_coldest_prefers_wide_rows() {
        let mut r = region(RegionPolicy::Randy);
        for i in 0..5 {
            r.add_molecule(MoleculeId(i)); // rows 0..3, extra joins a row
        }
        assert_eq!(r.num_rows(), 4);
        let before = r.size();
        let removed = r.remove_coldest(|_| 0).unwrap();
        assert_eq!(r.size(), before - 1);
        let _ = removed;
        // Still 4 rows: removal came from the 2-molecule row.
        assert_eq!(r.num_rows(), 4);
    }

    #[test]
    fn remove_coldest_collapses_single_rows_last() {
        let mut r = region(RegionPolicy::Randy);
        r.add_molecule(MoleculeId(0));
        r.add_molecule(MoleculeId(1));
        assert_eq!(r.num_rows(), 2);
        r.remove_coldest(|_| 0).unwrap();
        assert_eq!(r.num_rows(), 1, "row removed when it was singleton");
        r.remove_coldest(|_| 0).unwrap();
        assert!(r.is_empty());
        assert!(r.remove_coldest(|_| 0).is_none());
    }

    #[test]
    fn random_remove_uses_molecule_counters() {
        let mut r = region(RegionPolicy::Random);
        for i in 0..3 {
            r.add_molecule(MoleculeId(i));
        }
        // Molecule 1 is coldest.
        let removed = r
            .remove_coldest(|m| if m == MoleculeId(1) { 0 } else { 10 })
            .unwrap();
        assert_eq!(removed, MoleculeId(1));
    }

    #[test]
    fn window_bookkeeping() {
        let mut r = region(RegionPolicy::Randy);
        r.add_molecule(MoleculeId(0));
        assert_eq!(r.window_miss_rate(), 1.0, "empty window counts as 100%");
        r.record_access(true);
        r.record_access(false);
        r.record_access(false);
        assert!((r.window_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        r.close_window();
        assert_eq!(r.window_accesses(), 0);
        assert!((r.last_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hpm_accounts_for_allocation() {
        let mut small = region(RegionPolicy::Randy);
        small.add_molecule(MoleculeId(0));
        let mut big = region(RegionPolicy::Randy);
        for i in 0..4 {
            big.add_molecule(MoleculeId(i));
        }
        for _ in 0..100 {
            small.record_access(false);
            big.record_access(false);
        }
        assert!(small.hits_per_molecule() > big.hits_per_molecule());
        assert!((small.average_allocation() - 1.0).abs() < 1e-12);
        assert!((big.average_allocation() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lru_direct_victims_least_recently_hit() {
        let mut r = Region::new(
            Asid::new(1),
            TileId(0),
            ClusterId(0),
            RegionPolicy::LruDirect,
            1,
            0.1,
            1, // single row: all molecules compete
        );
        for i in 0..3 {
            r.add_molecule(MoleculeId(i));
        }
        r.note_molecule_use(MoleculeId(0), 10);
        r.note_molecule_use(MoleculeId(1), 5);
        r.note_molecule_use(MoleculeId(2), 20);
        // Molecule 1 is least recently used.
        assert_eq!(
            r.select_victim(Address::new(0), 8192, 0),
            Some(MoleculeId(1))
        );
        r.note_molecule_use(MoleculeId(1), 30);
        assert_eq!(
            r.select_victim(Address::new(0), 8192, 0),
            Some(MoleculeId(0))
        );
    }

    #[test]
    fn lru_direct_prefers_never_used_molecules() {
        let mut r = Region::new(
            Asid::new(1),
            TileId(0),
            ClusterId(0),
            RegionPolicy::LruDirect,
            1,
            0.1,
            1,
        );
        r.add_molecule(MoleculeId(0));
        r.add_molecule(MoleculeId(1));
        r.note_molecule_use(MoleculeId(0), 42);
        // Molecule 1 never hit: recency 0, chosen first.
        assert_eq!(
            r.select_victim(Address::new(0), 8192, 0),
            Some(MoleculeId(1))
        );
    }

    #[test]
    fn random_policy_ignores_recency_updates() {
        let mut r = region(RegionPolicy::Random);
        r.add_molecule(MoleculeId(0));
        r.note_molecule_use(MoleculeId(0), 7); // no-op, must not panic
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn note_allocation_ignores_zero() {
        let mut r = region(RegionPolicy::Randy);
        r.note_allocation(4);
        r.note_allocation(0);
        assert_eq!(r.last_allocation(), 4);
    }
}
