//! Tenant lifecycle operations: the OS-facing region management calls
//! a multi-tenant server drives (`molcache-serve`'s `admit` / `resize` /
//! `evict` / `revoke` map onto these).
//!
//! Every operation that changes region structure routes through the
//! same paths Algorithm-1 resizing uses — [`grant_molecules`] for growth
//! and [`shrink_region`] for withdrawal — so the memoization front-end's
//! generation is bumped on exactly the same events regardless of whether
//! a change was goal-driven or lifecycle-driven. A serving layer can
//! therefore never observe a stale memo hit across a lifecycle call (the
//! `lifecycle_memo` integration test pins this down).
//!
//! [`grant_molecules`]: MolecularCache::grant_molecules
//! [`shrink_region`]: MolecularCache::shrink_region

use crate::cache::MolecularCache;
use molcache_trace::Asid;

// The serve layer shards caches across OS threads behind per-shard
// locks, which is only sound if the cache itself can cross threads.
// (`SinkHandle` holds `Arc<Mutex<dyn Sink + Send>>`, everything else is
// plain owned data.) Keep the guarantee pinned at compile time next to
// the API that relies on it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MolecularCache>();
};

impl MolecularCache {
    /// Admits an application: creates its region (cluster and home-tile
    /// assignment plus the initial molecule grant — "Ground Zero",
    /// §3.4) without waiting for its first access. Returns `false` if
    /// the application already had a region (the call is then a no-op).
    ///
    /// Equivalent to the region creation the first access performs, so
    /// admitting ahead of traffic changes no statistics.
    pub fn admit_app(&mut self, asid: Asid) -> bool {
        if self.regions.contains_key(&asid) {
            return false;
        }
        self.ensure_region(asid);
        true
    }

    /// Whether `asid` currently owns a region.
    pub fn has_region(&self, asid: Asid) -> bool {
        self.regions.contains_key(&asid)
    }

    /// Current molecule count of `asid`'s region, if it has one.
    pub fn region_size(&self, asid: Asid) -> Option<usize> {
        self.regions.get(&asid).map(|r| r.size())
    }

    /// Evicts an application's cached data in place: every member
    /// molecule is flushed (dirty frames counted as writebacks) but the
    /// region keeps its molecules, home tile and goal. Returns the
    /// number of dirty frames written back, or `None` if the
    /// application has no region.
    ///
    /// This is the lifecycle `evict` — a tenant's data must leave the
    /// cache (security domain change, checkpoint) while its capacity
    /// reservation stays.
    pub fn flush_region(&mut self, asid: Asid) -> Option<u64> {
        if !self.regions.contains_key(&asid) {
            return None;
        }
        // Flushing invalidates every resident line: drop all memoized
        // locations before any of them could be replayed as a hit.
        self.note_structural_change();
        // Disjoint field borrows: membership is read from the region
        // while molecule counters and tags mutate — no collected id
        // list. Reconfiguring to the same owner is a flush in place.
        let region = &self.regions[&asid];
        let molecules = &mut self.molecules;
        let tags = &mut self.tags;
        let mut flushed = 0;
        for id in region.molecules() {
            molecules[id.index()].reset_window_counters();
            flushed += tags.configure(id, asid);
        }
        self.activity.writebacks += flushed;
        Some(flushed)
    }

    /// Resizes an application's region toward `target` molecules:
    /// growth takes free molecules through the same grant path
    /// Algorithm 1 uses; shrinking withdraws the coldest members
    /// through [`shrink_region`](Self::shrink_region). The free pool
    /// may satisfy growth only partially. Returns the region's size
    /// after the call, or `None` if the application has no region.
    ///
    /// A `target` of 0 is clamped to 1 — destroying a region is
    /// [`release_region`](Self::release_region)'s job, and a shrink
    /// that silently released would leave the caller holding a dead
    /// handle.
    pub fn set_region_size(&mut self, asid: Asid, target: usize) -> Option<usize> {
        let current = self.regions.get(&asid)?.size();
        let target = target.max(1);
        if target > current {
            let mut region = self.regions.remove(&asid).expect("checked above");
            let granted = self.grant_molecules(&mut region, target - current);
            region.note_allocation(granted.max(1));
            self.regions.insert(asid, region);
        } else if target < current {
            self.shrink_region(asid, current - target);
        }
        Some(self.regions[&asid].size())
    }

    /// Withdraws up to `n` of the coldest molecules from `asid`'s
    /// region, flushing each and returning it to its tile's free pool.
    /// Returns how many were actually removed (the region never drops
    /// below one molecule). The single shrink path: Algorithm 1's
    /// `Decision::Shrink` and lifecycle-driven `set_region_size` both
    /// land here, so both bump the memo generation identically.
    pub(crate) fn shrink_region(&mut self, asid: Asid, n: usize) -> usize {
        let Some(mut region) = self.regions.remove(&asid) else {
            return 0;
        };
        // Membership is about to change: structural event, memo drop.
        self.note_structural_change();
        let mut removed = 0;
        for _ in 0..n {
            let Some(id) = region.remove_coldest(|m| self.molecules[m.index()].miss_count()) else {
                break;
            };
            let flushed = self.configure_molecule(id, Asid::NONE);
            self.activity.writebacks += flushed;
            let tile = self.molecules[id.index()].tile();
            self.tiles[tile.index()].release(id);
            removed += 1;
        }
        self.regions.insert(asid, region);
        removed
    }
}

#[cfg(test)]
mod tests {
    use crate::config::InitialAllocation;
    use crate::{MolecularCache, MolecularConfig, ResizeTrigger};
    use molcache_sim::{CacheModel, Request};
    use molcache_trace::{AccessKind, Address, Asid};

    fn cache() -> MolecularCache {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(2))
            .trigger(ResizeTrigger::Constant { period: 1 << 30 })
            .build()
            .unwrap();
        MolecularCache::new(cfg)
    }

    fn read(asid: u16, addr: u64) -> Request {
        Request {
            asid: Asid::new(asid),
            addr: Address::new(addr),
            kind: AccessKind::Read,
        }
    }

    fn write(asid: u16, addr: u64) -> Request {
        Request {
            asid: Asid::new(asid),
            addr: Address::new(addr),
            kind: AccessKind::Write,
        }
    }

    #[test]
    fn admit_matches_first_access_region_creation() {
        let mut pre = cache();
        let mut lazy = cache();
        assert!(pre.admit_app(Asid::new(1)));
        assert!(!pre.admit_app(Asid::new(1)), "second admit is a no-op");
        assert!(pre.has_region(Asid::new(1)));
        for c in [&mut pre, &mut lazy] {
            for i in 0..200 {
                c.access(read(1, i * 64));
            }
        }
        assert_eq!(pre.stats(), lazy.stats());
        assert_eq!(pre.snapshots(), lazy.snapshots());
        assert_eq!(pre.free_molecules(), lazy.free_molecules());
    }

    #[test]
    fn flush_region_evicts_but_keeps_allocation() {
        let mut c = cache();
        // 8 distinct lines fit the 2-molecule (32-frame) initial grant.
        for i in 0..8 {
            c.access(write(1, i * 64));
        }
        let size = c.region_size(Asid::new(1)).unwrap();
        let hit_before = c.access(read(1, 0)).hit;
        assert!(hit_before, "line resident before the flush");
        let flushed = c.flush_region(Asid::new(1)).unwrap();
        assert!(flushed > 0, "dirty lines were written back");
        assert_eq!(c.region_size(Asid::new(1)), Some(size), "capacity kept");
        assert!(!c.access(read(1, 0)).hit, "contents gone after the flush");
        assert_eq!(c.flush_region(Asid::new(9)), None, "unknown app");
    }

    #[test]
    fn set_region_size_grows_and_shrinks() {
        let mut c = cache();
        c.admit_app(Asid::new(1));
        assert_eq!(c.region_size(Asid::new(1)), Some(2));
        assert_eq!(c.set_region_size(Asid::new(1), 6), Some(6));
        assert_eq!(c.set_region_size(Asid::new(1), 3), Some(3));
        // Target 0 clamps to 1: shrinking never destroys the region.
        assert_eq!(c.set_region_size(Asid::new(1), 0), Some(1));
        assert!(c.has_region(Asid::new(1)));
        assert_eq!(c.set_region_size(Asid::new(9), 4), None, "unknown app");
    }

    #[test]
    fn growth_is_bounded_by_free_pool() {
        let mut c = cache();
        c.admit_app(Asid::new(1));
        c.admit_app(Asid::new(2));
        let free = c.free_molecules();
        let got = c.set_region_size(Asid::new(1), 1_000).unwrap();
        assert_eq!(got, 2 + free, "partial grant up to the free pool");
        assert_eq!(c.free_molecules(), 0);
    }
}
