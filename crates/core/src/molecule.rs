//! Molecules: the direct-mapped building blocks (§3 of the paper).

use crate::ids::{MoleculeId, TileId};
use molcache_trace::{Asid, LineAddr};

/// One line frame inside a molecule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineFrame {
    /// Stored tag (`line_number / frames_per_molecule`).
    pub tag: u64,
    /// Frame holds valid data.
    pub valid: bool,
    /// Frame has been written since fill.
    pub dirty: bool,
}

impl LineFrame {
    const EMPTY: LineFrame = LineFrame {
        tag: 0,
        valid: false,
        dirty: false,
    };
}

/// A small direct-mapped caching unit (8–32 KB, 64 B lines).
///
/// Each molecule carries a configured [`Asid`] and a *shared* bit
/// (paper §3.1, Figure 3): an extra address-decode stage compares the
/// requestor's ASID with the configured one, and only matching molecules
/// proceed to tag lookup. When the shared bit is set the comparison is
/// bypassed and the molecule services every application on its tile.
///
/// ```
/// use molcache_core::molecule::Molecule;
/// use molcache_core::ids::{MoleculeId, TileId};
/// use molcache_trace::{Asid, LineAddr};
///
/// let mut m = Molecule::new(MoleculeId(0), TileId(0), 128); // 8KB / 64B
/// m.configure(Asid::new(1));
/// assert!(m.matches(Asid::new(1)) && !m.matches(Asid::new(2)));
/// m.fill(LineAddr(5), false);
/// assert!(m.lookup(LineAddr(5)));
/// ```
#[derive(Debug, Clone)]
pub struct Molecule {
    id: MoleculeId,
    tile: TileId,
    frames: Vec<LineFrame>,
    asid: Asid,
    shared: bool,
    /// Misses that caused replacements here since the last resize window
    /// (the "where to add/remove" counter of §3.4).
    miss_count: u64,
    /// Hits serviced here (for hit-per-molecule statistics).
    hit_count: u64,
}

impl Molecule {
    /// Creates an empty, unassigned molecule of `frames` line frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(id: MoleculeId, tile: TileId, frames: usize) -> Self {
        assert!(frames > 0, "molecule needs at least one frame");
        Molecule {
            id,
            tile,
            frames: vec![LineFrame::EMPTY; frames],
            asid: Asid::NONE,
            shared: false,
            miss_count: 0,
            hit_count: 0,
        }
    }

    /// This molecule's identifier.
    pub fn id(&self) -> MoleculeId {
        self.id
    }

    /// The tile that physically hosts this molecule.
    pub fn tile(&self) -> TileId {
        self.tile
    }

    /// The configured ASID ([`Asid::NONE`] when free).
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Whether the shared bit is set.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// Number of line frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Replacement-miss counter for the current resize window.
    pub fn miss_count(&self) -> u64 {
        self.miss_count
    }

    /// Hit counter (cumulative).
    pub fn hit_count(&self) -> u64 {
        self.hit_count
    }

    /// The ASID-match stage: whether this molecule participates in a
    /// lookup for `asid` (Figure 3: shared bit forces a match).
    pub fn matches(&self, asid: Asid) -> bool {
        self.shared || (self.asid.is_some() && self.asid == asid)
    }

    /// Configures the molecule into a region (or frees it with
    /// [`Asid::NONE`]). Contents are invalidated: the new owner must not
    /// observe the previous owner's data. Returns the number of dirty
    /// frames flushed.
    pub fn configure(&mut self, asid: Asid) -> u64 {
        self.asid = asid;
        self.miss_count = 0;
        self.invalidate_all()
    }

    /// Sets or clears the shared bit.
    pub fn set_shared(&mut self, shared: bool) {
        self.shared = shared;
    }

    /// Invalidates every frame; returns the number of dirty frames (the
    /// writebacks this flush generates).
    pub fn invalidate_all(&mut self) -> u64 {
        let dirty = self.frames.iter().filter(|f| f.valid && f.dirty).count() as u64;
        for f in &mut self.frames {
            *f = LineFrame::EMPTY;
        }
        dirty
    }

    fn frame_and_tag(&self, line: LineAddr) -> (usize, u64) {
        let n = self.frames.len() as u64;
        ((line.0 % n) as usize, line.0 / n)
    }

    /// Direct-mapped lookup. Returns whether the line is resident.
    pub fn lookup(&self, line: LineAddr) -> bool {
        let (idx, tag) = self.frame_and_tag(line);
        let f = &self.frames[idx];
        f.valid && f.tag == tag
    }

    /// Marks a resident line dirty (write hit). Returns `false` if the
    /// line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let (idx, tag) = self.frame_and_tag(line);
        let f = &mut self.frames[idx];
        if f.valid && f.tag == tag {
            f.dirty = true;
            self.hit_count += 1;
            true
        } else {
            false
        }
    }

    /// Records a read hit on a resident line. Returns `false` if absent.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let (idx, tag) = self.frame_and_tag(line);
        let f = &self.frames[idx];
        if f.valid && f.tag == tag {
            self.hit_count += 1;
            true
        } else {
            false
        }
    }

    /// Fills `line` into its direct-mapped frame, evicting whatever was
    /// there. Returns `true` if the eviction wrote back a dirty line.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> bool {
        let (idx, tag) = self.frame_and_tag(line);
        let evicted_dirty = {
            let f = &self.frames[idx];
            f.valid && f.dirty && f.tag != tag
        };
        self.frames[idx] = LineFrame {
            tag,
            valid: true,
            dirty,
        };
        evicted_dirty
    }

    /// Invalidates one line if resident; returns `Some(dirty)` if it was.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (idx, tag) = self.frame_and_tag(line);
        let f = &mut self.frames[idx];
        if f.valid && f.tag == tag {
            let dirty = f.dirty;
            *f = LineFrame::EMPTY;
            Some(dirty)
        } else {
            None
        }
    }

    /// Increments the replacement-miss counter.
    pub fn record_replacement_miss(&mut self) {
        self.miss_count += 1;
    }

    /// Clears the per-window miss counter (after a resize round).
    pub fn reset_window_counters(&mut self) {
        self.miss_count = 0;
    }

    /// Number of valid frames (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.frames.iter().filter(|f| f.valid).count()
    }

    /// The line addresses currently resident (diagnostics / invariant
    /// checking): frame `i` holding tag `t` stores line `t * frames + i`.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let n = self.frames.len() as u64;
        self.frames
            .iter()
            .enumerate()
            .filter_map(move |(i, f)| f.valid.then_some(LineAddr(f.tag * n + i as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mol(frames: usize) -> Molecule {
        Molecule::new(MoleculeId(0), TileId(0), frames)
    }

    #[test]
    fn direct_mapped_fill_and_lookup() {
        let mut m = mol(128);
        let line = LineAddr(5);
        assert!(!m.lookup(line));
        m.fill(line, false);
        assert!(m.lookup(line));
        // Same frame, different tag: conflict.
        let conflict = LineAddr(5 + 128);
        assert!(!m.lookup(conflict));
        m.fill(conflict, false);
        assert!(m.lookup(conflict));
        assert!(!m.lookup(line), "direct-mapped conflict must evict");
    }

    #[test]
    fn fill_reports_dirty_eviction() {
        let mut m = mol(64);
        m.fill(LineAddr(0), true);
        assert!(m.fill(LineAddr(64), false), "dirty conflict writes back");
        assert!(!m.fill(LineAddr(128), false), "clean conflict does not");
    }

    #[test]
    fn refill_same_line_is_not_writeback() {
        let mut m = mol(64);
        m.fill(LineAddr(3), true);
        assert!(!m.fill(LineAddr(3), false), "same tag overwrite, no WB");
    }

    #[test]
    fn asid_matching() {
        let mut m = mol(16);
        assert!(!m.matches(Asid::new(1)), "unconfigured never matches");
        m.configure(Asid::new(1));
        assert!(m.matches(Asid::new(1)));
        assert!(!m.matches(Asid::new(2)));
        m.set_shared(true);
        assert!(m.matches(Asid::new(2)), "shared bit bypasses ASID");
    }

    #[test]
    fn configure_invalidates_and_counts_dirty() {
        let mut m = mol(16);
        m.configure(Asid::new(1));
        m.fill(LineAddr(0), true);
        m.fill(LineAddr(1), false);
        let flushed = m.configure(Asid::new(2));
        assert_eq!(flushed, 1);
        assert_eq!(m.occupancy(), 0);
        assert!(!m.lookup(LineAddr(0)));
    }

    #[test]
    fn touch_and_mark_dirty() {
        let mut m = mol(16);
        m.fill(LineAddr(2), false);
        assert!(m.touch(LineAddr(2)));
        assert!(!m.touch(LineAddr(3)));
        assert!(m.mark_dirty(LineAddr(2)));
        assert_eq!(m.hit_count(), 2);
        // The dirty line now writes back on conflict.
        assert!(m.fill(LineAddr(2 + 16), false));
    }

    #[test]
    fn invalidate_single_line() {
        let mut m = mol(16);
        m.fill(LineAddr(4), true);
        assert_eq!(m.invalidate(LineAddr(4)), Some(true));
        assert_eq!(m.invalidate(LineAddr(4)), None);
    }

    #[test]
    fn resident_lines_reconstruct_addresses() {
        let mut m = mol(16);
        m.fill(LineAddr(5), false);
        m.fill(LineAddr(16 + 2), true); // frame 2, tag 1
        let mut lines: Vec<u64> = m.resident_lines().map(|l| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![5, 18]);
    }

    #[test]
    fn window_counters() {
        let mut m = mol(16);
        m.record_replacement_miss();
        m.record_replacement_miss();
        assert_eq!(m.miss_count(), 2);
        m.reset_window_counters();
        assert_eq!(m.miss_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        mol(0);
    }
}
