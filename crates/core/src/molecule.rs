//! Molecules: the direct-mapped building blocks (§3 of the paper).
//!
//! A molecule is a small direct-mapped caching unit (8–32 KB, 64 B
//! lines) carrying a configured [`Asid`](molcache_trace::Asid) and a
//! *shared* bit (paper §3.1, Figure 3): an extra address-decode stage
//! compares the requestor's ASID with the configured one, and only
//! matching molecules proceed to tag lookup. When the shared bit is set
//! the comparison is bypassed and the molecule services every
//! application on its tile.
//!
//! Since the flat-tag-array restructuring, the molecule's *state* —
//! line frames, configured ASID, shared bit — lives in the cache-global
//! [`TagStore`](crate::tags::TagStore), packed into contiguous arrays so
//! a home-tile probe is one linear scan. What remains here is the
//! molecule's placement identity (id, hosting tile) and its
//! per-molecule event counters: the per-resize-window replacement-miss
//! counter Algorithm 1's "where to remove?" consults (§3.4) and the
//! cumulative hit counter behind the hit-per-molecule diagnostics.

use crate::ids::{MoleculeId, TileId};

/// One molecule's placement identity and event counters (see the module
/// docs — frames/ASID/shared live in [`crate::tags::TagStore`]).
///
/// ```
/// use molcache_core::molecule::Molecule;
/// use molcache_core::ids::{MoleculeId, TileId};
///
/// let mut m = Molecule::new(MoleculeId(3), TileId(1));
/// m.record_hit();
/// assert_eq!((m.id(), m.tile(), m.hit_count()), (MoleculeId(3), TileId(1), 1));
/// ```
#[derive(Debug, Clone)]
pub struct Molecule {
    id: MoleculeId,
    tile: TileId,
    /// Misses that caused replacements here since the last resize window
    /// (the "where to add/remove" counter of §3.4).
    miss_count: u64,
    /// Hits serviced here (for hit-per-molecule statistics).
    hit_count: u64,
}

impl Molecule {
    /// Creates the placement record of a molecule hosted by `tile`.
    pub fn new(id: MoleculeId, tile: TileId) -> Self {
        Molecule {
            id,
            tile,
            miss_count: 0,
            hit_count: 0,
        }
    }

    /// This molecule's identifier.
    pub fn id(&self) -> MoleculeId {
        self.id
    }

    /// The tile that physically hosts this molecule.
    pub fn tile(&self) -> TileId {
        self.tile
    }

    /// Replacement-miss counter for the current resize window.
    pub fn miss_count(&self) -> u64 {
        self.miss_count
    }

    /// Hit counter (cumulative).
    pub fn hit_count(&self) -> u64 {
        self.hit_count
    }

    /// Counts one hit serviced by this molecule.
    pub fn record_hit(&mut self) {
        self.hit_count += 1;
    }

    /// Increments the replacement-miss counter.
    pub fn record_replacement_miss(&mut self) {
        self.miss_count += 1;
    }

    /// Clears the per-window miss counter (after a resize round, or when
    /// the molecule is reconfigured to a new owner).
    pub fn reset_window_counters(&mut self) {
        self.miss_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_identity() {
        let m = Molecule::new(MoleculeId(7), TileId(2));
        assert_eq!(m.id(), MoleculeId(7));
        assert_eq!(m.tile(), TileId(2));
    }

    #[test]
    fn window_counters() {
        let mut m = Molecule::new(MoleculeId(0), TileId(0));
        m.record_replacement_miss();
        m.record_replacement_miss();
        assert_eq!(m.miss_count(), 2);
        m.reset_window_counters();
        assert_eq!(m.miss_count(), 0);
    }

    #[test]
    fn hit_counter_accumulates() {
        let mut m = Molecule::new(MoleculeId(0), TileId(0));
        m.record_hit();
        m.record_hit();
        m.record_hit();
        assert_eq!(m.hit_count(), 3);
        m.reset_window_counters();
        assert_eq!(m.hit_count(), 3, "hit counter is lifetime, not window");
    }
}
