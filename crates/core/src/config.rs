//! Molecular-cache configuration (Table 3's parameters).

use crate::error::CoreError;
use crate::resize::ResizeTrigger;
use molcache_trace::Asid;
use std::collections::BTreeMap;

/// Which molecule-selection policy a region uses on replacement (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionPolicy {
    /// Pick any molecule of the region uniformly at random.
    Random,
    /// The paper's *Randy*: pick the row
    /// `(address / molecule_size) mod row_max` of the replacement view,
    /// then a random molecule within that row.
    Randy,
    /// The paper's future-work *LRU-Direct* scheme (§5), realized here
    /// as: the same direct row mapping as Randy, but the victim within
    /// the row is the least-recently-*hit* molecule instead of a random
    /// one — removing the reliance on random numbers entirely at the
    /// cost of per-molecule recency state.
    LruDirect,
}

impl std::fmt::Display for RegionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionPolicy::Random => f.write_str("Random"),
            RegionPolicy::Randy => f.write_str("Randy"),
            RegionPolicy::LruDirect => f.write_str("LRU-Direct"),
        }
    }
}

/// The random-number source hardware uses for victim selection (§3.3).
///
/// The paper notes that Random replacement's quality "is highly dependent
/// on the entropy of the random number generator implemented in
/// hardware". [`VictimRng::Lfsr16`] models the cheap linear-feedback
/// shift register a real cache controller would use — its correlated,
/// low-entropy draws hurt Random (which reduces one draw modulo the whole
/// region) far more than Randy (which only needs it within one row).
/// [`VictimRng::HighQuality`] is an idealized generator (xoshiro256**)
/// for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimRng {
    /// 16-bit Galois LFSR (hardware-realistic; the default).
    Lfsr16,
    /// Idealized high-entropy generator.
    HighQuality,
}

/// How many molecules a new partition starts with (§3.4, "Ground Zero").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialAllocation {
    /// Half the molecules of the home tile (the paper's current scheme).
    HalfTile,
    /// A fixed number of molecules (the paper discusses 2 vs 32).
    Molecules(usize),
}

/// Full configuration of a [`MolecularCache`](crate::MolecularCache).
///
/// Constructed via [`MolecularConfig::builder`]. Defaults follow the
/// paper's Table 3: 8 KB molecules with 64 B lines, 64 molecules per tile
/// (512 KB), 4 tiles per cluster, Randy replacement, adaptive resizing
/// with a 25 000-reference initial period.
#[derive(Debug, Clone, PartialEq)]
pub struct MolecularConfig {
    pub(crate) molecule_size: u64,
    pub(crate) line_size: u64,
    pub(crate) tile_molecules: usize,
    pub(crate) tiles_per_cluster: usize,
    pub(crate) clusters: usize,
    pub(crate) policy: RegionPolicy,
    pub(crate) default_goal: f64,
    pub(crate) goals: BTreeMap<Asid, f64>,
    pub(crate) line_factors: BTreeMap<Asid, u32>,
    pub(crate) initial_allocation: InitialAllocation,
    pub(crate) max_allocation: usize,
    pub(crate) trigger: ResizeTrigger,
    pub(crate) row_max: usize,
    pub(crate) app_clusters: BTreeMap<Asid, usize>,
    pub(crate) hit_latency: u32,
    pub(crate) asid_stage_cycles: u32,
    pub(crate) ulmo_penalty: u32,
    pub(crate) miss_penalty: u32,
    pub(crate) victim_rng: VictimRng,
    pub(crate) seed: u64,
}

impl MolecularConfig {
    /// Starts building a configuration with the paper's defaults.
    pub fn builder() -> MolecularConfigBuilder {
        MolecularConfigBuilder::default()
    }

    /// Molecule capacity in bytes.
    pub fn molecule_size(&self) -> u64 {
        self.molecule_size
    }

    /// Base line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Line frames per molecule.
    pub fn frames_per_molecule(&self) -> usize {
        (self.molecule_size / self.line_size) as usize
    }

    /// Molecules per tile.
    pub fn tile_molecules(&self) -> usize {
        self.tile_molecules
    }

    /// Tiles per cluster.
    pub fn tiles_per_cluster(&self) -> usize {
        self.tiles_per_cluster
    }

    /// Number of tile clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Total tiles.
    pub fn total_tiles(&self) -> usize {
        self.clusters * self.tiles_per_cluster
    }

    /// Total molecules.
    pub fn total_molecules(&self) -> usize {
        self.total_tiles() * self.tile_molecules
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_molecules() as u64 * self.molecule_size
    }

    /// Tile capacity in bytes.
    pub fn tile_bytes(&self) -> u64 {
        self.tile_molecules as u64 * self.molecule_size
    }

    /// The replacement policy.
    pub fn policy(&self) -> RegionPolicy {
        self.policy
    }

    /// The default miss-rate goal (applications without an override).
    pub fn default_goal(&self) -> f64 {
        self.default_goal
    }

    /// The miss-rate goal for an application.
    pub fn goal(&self, asid: Asid) -> f64 {
        self.goals.get(&asid).copied().unwrap_or(self.default_goal)
    }

    /// The line-size factor for an application (1 = base 64 B lines).
    pub fn line_factor(&self, asid: Asid) -> u32 {
        self.line_factors.get(&asid).copied().unwrap_or(1)
    }

    /// The resize trigger scheme.
    pub fn trigger(&self) -> ResizeTrigger {
        self.trigger
    }

    /// Maximum molecules allocated to one partition in one resize chunk.
    pub fn max_allocation(&self) -> usize {
        self.max_allocation
    }

    /// Maximum rows of a region's replacement view (configured way size).
    pub fn row_max(&self) -> usize {
        self.row_max
    }

    /// Explicit application → cluster assignment, if configured.
    pub fn app_cluster(&self, asid: Asid) -> Option<usize> {
        self.app_clusters.get(&asid).copied()
    }

    /// The victim-selection random source.
    pub fn victim_rng(&self) -> VictimRng {
        self.victim_rng
    }
}

/// Builder for [`MolecularConfig`] (see [`MolecularConfig::builder`]).
#[derive(Debug, Clone)]
pub struct MolecularConfigBuilder {
    molecule_size: u64,
    line_size: u64,
    tile_molecules: usize,
    tiles_per_cluster: usize,
    clusters: usize,
    policy: RegionPolicy,
    default_goal: f64,
    goals: BTreeMap<Asid, f64>,
    line_factors: BTreeMap<Asid, u32>,
    initial_allocation: InitialAllocation,
    max_allocation: Option<usize>,
    trigger: ResizeTrigger,
    row_max: usize,
    app_clusters: BTreeMap<Asid, usize>,
    hit_latency: u32,
    asid_stage_cycles: u32,
    ulmo_penalty: u32,
    miss_penalty: u32,
    victim_rng: VictimRng,
    seed: u64,
}

impl Default for MolecularConfigBuilder {
    fn default() -> Self {
        MolecularConfigBuilder {
            molecule_size: 8 * 1024,
            line_size: 64,
            tile_molecules: 64,
            tiles_per_cluster: 4,
            clusters: 1,
            policy: RegionPolicy::Randy,
            default_goal: 0.10,
            goals: BTreeMap::new(),
            line_factors: BTreeMap::new(),
            initial_allocation: InitialAllocation::HalfTile,
            max_allocation: None,
            trigger: ResizeTrigger::GlobalAdaptive {
                initial_period: 25_000,
            },
            row_max: 8,
            app_clusters: BTreeMap::new(),
            hit_latency: 4,
            asid_stage_cycles: 1,
            ulmo_penalty: 8,
            miss_penalty: 200,
            victim_rng: VictimRng::Lfsr16,
            seed: 0x4D01_EC01_u64,
        }
    }
}

impl MolecularConfigBuilder {
    /// Sets the molecule capacity in bytes (8–32 KB in the paper).
    pub fn molecule_size(&mut self, bytes: u64) -> &mut Self {
        self.molecule_size = bytes;
        self
    }

    /// Sets the base line size in bytes (64 in the paper).
    pub fn line_size(&mut self, bytes: u64) -> &mut Self {
        self.line_size = bytes;
        self
    }

    /// Sets molecules per tile (32–256 in the paper).
    pub fn tile_molecules(&mut self, n: usize) -> &mut Self {
        self.tile_molecules = n;
        self
    }

    /// Sets tiles per cluster (4–8 in the paper).
    pub fn tiles_per_cluster(&mut self, n: usize) -> &mut Self {
        self.tiles_per_cluster = n;
        self
    }

    /// Sets the number of tile clusters.
    pub fn clusters(&mut self, n: usize) -> &mut Self {
        self.clusters = n;
        self
    }

    /// Sets the replacement policy.
    pub fn policy(&mut self, policy: RegionPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Sets the default miss-rate goal for every application.
    pub fn miss_rate_goal(&mut self, goal: f64) -> &mut Self {
        self.default_goal = goal;
        self
    }

    /// Overrides the miss-rate goal for one application.
    pub fn app_goal(&mut self, asid: Asid, goal: f64) -> &mut Self {
        self.goals.insert(asid, goal);
        self
    }

    /// Sets an application's region line-size factor (`k` 64-byte lines
    /// fetched per miss, §3.2). Fixed at region-creation time.
    pub fn app_line_factor(&mut self, asid: Asid, factor: u32) -> &mut Self {
        self.line_factors.insert(asid, factor);
        self
    }

    /// Sets the initial partition allocation scheme.
    pub fn initial_allocation(&mut self, alloc: InitialAllocation) -> &mut Self {
        self.initial_allocation = alloc;
        self
    }

    /// Caps molecules allocated to one partition per resize.
    pub fn max_allocation(&mut self, molecules: usize) -> &mut Self {
        self.max_allocation = Some(molecules);
        self
    }

    /// Sets the resize trigger scheme.
    pub fn trigger(&mut self, trigger: ResizeTrigger) -> &mut Self {
        self.trigger = trigger;
        self
    }

    /// Sets the maximum replacement-view rows (configured way size).
    pub fn row_max(&mut self, rows: usize) -> &mut Self {
        self.row_max = rows;
        self
    }

    /// Pins an application to a cluster (e.g. Table 2's three groups).
    pub fn assign_app_to_cluster(&mut self, asid: Asid, cluster: usize) -> &mut Self {
        self.app_clusters.insert(asid, cluster);
        self
    }

    /// Sets the timing parameters (cycles): molecule hit latency, the
    /// extra ASID-compare stage, the Ulmo remote-search penalty and the
    /// memory miss penalty.
    pub fn latencies(&mut self, hit: u32, asid_stage: u32, ulmo: u32, miss: u32) -> &mut Self {
        self.hit_latency = hit;
        self.asid_stage_cycles = asid_stage;
        self.ulmo_penalty = ulmo;
        self.miss_penalty = miss;
        self
    }

    /// Selects the victim-selection random source.
    pub fn victim_rng(&mut self, rng: VictimRng) -> &mut Self {
        self.victim_rng = rng;
        self
    }

    /// Seeds the cache's internal RNG (replacement randomness).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when sizes are not powers of
    /// two, counts are zero, the initial allocation exceeds a tile, a
    /// goal is outside `(0, 1)`, or an assigned cluster is out of range.
    pub fn build(&self) -> Result<MolecularConfig, CoreError> {
        fn err(field: &'static str, constraint: &'static str) -> CoreError {
            CoreError::InvalidConfig { field, constraint }
        }
        if self.molecule_size == 0 || !self.molecule_size.is_power_of_two() {
            return Err(err("molecule_size", "must be a non-zero power of two"));
        }
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err(err("line_size", "must be a non-zero power of two"));
        }
        if self.molecule_size < self.line_size {
            return Err(err("molecule_size", "must hold at least one line"));
        }
        if self.tile_molecules == 0 {
            return Err(err("tile_molecules", "must be positive"));
        }
        if self.tiles_per_cluster == 0 {
            return Err(err("tiles_per_cluster", "must be positive"));
        }
        if self.clusters == 0 {
            return Err(err("clusters", "must be positive"));
        }
        if !(self.default_goal > 0.0 && self.default_goal < 1.0) {
            return Err(err("miss_rate_goal", "must lie in (0, 1)"));
        }
        for goal in self.goals.values() {
            if !(*goal > 0.0 && *goal < 1.0) {
                return Err(err("app_goal", "must lie in (0, 1)"));
            }
        }
        for factor in self.line_factors.values() {
            if *factor == 0 || !factor.is_power_of_two() {
                return Err(err("line_factor", "must be a non-zero power of two"));
            }
            if *factor as usize > (self.molecule_size / self.line_size) as usize {
                return Err(err("line_factor", "block must fit inside a molecule"));
            }
        }
        if let InitialAllocation::Molecules(n) = self.initial_allocation {
            // The initial grant draws from the home tile first and then
            // the rest of the cluster, so anything up to one cluster's
            // worth of molecules is satisfiable.
            if n == 0 || n > self.tile_molecules * self.tiles_per_cluster {
                return Err(err(
                    "initial_allocation",
                    "must be between 1 and the cluster's molecule count",
                ));
            }
        }
        if self.row_max == 0 {
            return Err(err("row_max", "must be positive"));
        }
        for cluster in self.app_clusters.values() {
            if *cluster >= self.clusters {
                return Err(err("app_cluster", "cluster index out of range"));
            }
        }
        let max_allocation = self
            .max_allocation
            .unwrap_or(self.tile_molecules / 4)
            .max(1);
        Ok(MolecularConfig {
            molecule_size: self.molecule_size,
            line_size: self.line_size,
            tile_molecules: self.tile_molecules,
            tiles_per_cluster: self.tiles_per_cluster,
            clusters: self.clusters,
            policy: self.policy,
            default_goal: self.default_goal,
            goals: self.goals.clone(),
            line_factors: self.line_factors.clone(),
            initial_allocation: self.initial_allocation,
            max_allocation,
            trigger: self.trigger,
            row_max: self.row_max,
            app_clusters: self.app_clusters.clone(),
            hit_latency: self.hit_latency,
            asid_stage_cycles: self.asid_stage_cycles,
            ulmo_penalty: self.ulmo_penalty,
            miss_penalty: self.miss_penalty,
            victim_rng: self.victim_rng,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let cfg = MolecularConfig::builder().clusters(4).build().unwrap();
        assert_eq!(cfg.molecule_size(), 8 * 1024);
        assert_eq!(cfg.tile_bytes(), 512 * 1024);
        assert_eq!(cfg.tiles_per_cluster(), 4);
        assert_eq!(cfg.total_bytes(), 8 << 20); // 4 clusters x 2MB
        assert_eq!(cfg.policy(), RegionPolicy::Randy);
        assert_eq!(cfg.frames_per_molecule(), 128);
    }

    #[test]
    fn goals_and_overrides() {
        let cfg = MolecularConfig::builder()
            .miss_rate_goal(0.25)
            .app_goal(Asid::new(2), 0.05)
            .build()
            .unwrap();
        assert_eq!(cfg.goal(Asid::new(1)), 0.25);
        assert_eq!(cfg.goal(Asid::new(2)), 0.05);
    }

    #[test]
    fn line_factor_defaults_to_one() {
        let cfg = MolecularConfig::builder()
            .app_line_factor(Asid::new(3), 4)
            .build()
            .unwrap();
        assert_eq!(cfg.line_factor(Asid::new(1)), 1);
        assert_eq!(cfg.line_factor(Asid::new(3)), 4);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(MolecularConfig::builder()
            .molecule_size(3000)
            .build()
            .is_err());
        assert!(MolecularConfig::builder().line_size(0).build().is_err());
        assert!(MolecularConfig::builder()
            .molecule_size(32)
            .line_size(64)
            .build()
            .is_err());
        assert!(MolecularConfig::builder()
            .tile_molecules(0)
            .build()
            .is_err());
        assert!(MolecularConfig::builder().clusters(0).build().is_err());
    }

    #[test]
    fn rejects_bad_goals_and_factors() {
        assert!(MolecularConfig::builder()
            .miss_rate_goal(0.0)
            .build()
            .is_err());
        assert!(MolecularConfig::builder()
            .miss_rate_goal(1.5)
            .build()
            .is_err());
        assert!(MolecularConfig::builder()
            .app_goal(Asid::new(1), -0.1)
            .build()
            .is_err());
        assert!(MolecularConfig::builder()
            .app_line_factor(Asid::new(1), 3)
            .build()
            .is_err());
        // Factor larger than molecule capacity in lines.
        assert!(MolecularConfig::builder()
            .molecule_size(128)
            .app_line_factor(Asid::new(1), 4)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_initial_allocation_and_cluster() {
        assert!(MolecularConfig::builder()
            .initial_allocation(InitialAllocation::Molecules(0))
            .build()
            .is_err());
        assert!(MolecularConfig::builder()
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .initial_allocation(InitialAllocation::Molecules(17))
            .build()
            .is_err());
        assert!(MolecularConfig::builder()
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .initial_allocation(InitialAllocation::Molecules(16))
            .build()
            .is_ok());
        assert!(MolecularConfig::builder()
            .clusters(2)
            .assign_app_to_cluster(Asid::new(1), 2)
            .build()
            .is_err());
    }

    #[test]
    fn max_allocation_defaults_to_quarter_tile() {
        let cfg = MolecularConfig::builder()
            .tile_molecules(64)
            .build()
            .unwrap();
        assert_eq!(cfg.max_allocation(), 16);
        let cfg2 = MolecularConfig::builder()
            .max_allocation(5)
            .build()
            .unwrap();
        assert_eq!(cfg2.max_allocation(), 5);
    }

    #[test]
    fn policy_display() {
        assert_eq!(RegionPolicy::Random.to_string(), "Random");
        assert_eq!(RegionPolicy::Randy.to_string(), "Randy");
    }
}
