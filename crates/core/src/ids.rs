//! Identifier newtypes for the molecular cache's physical structures.

use std::fmt;

/// Index of a molecule within the whole cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MoleculeId(pub u32);

/// Index of a tile within the whole cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u32);

/// Index of a tile cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl MoleculeId {
    /// Array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl TileId {
    /// Array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl ClusterId {
    /// Array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MoleculeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mol:{}", self.0)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile:{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(MoleculeId(3).to_string(), "mol:3");
        assert_eq!(TileId(1).to_string(), "tile:1");
        assert_eq!(ClusterId(0).to_string(), "cluster:0");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(MoleculeId(7).index(), 7);
        assert_eq!(TileId(2).index(), 2);
        assert_eq!(ClusterId(5).index(), 5);
    }
}
