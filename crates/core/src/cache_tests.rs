//! Tests for the cache driver and the staged pipeline it sequences.

use super::*;
use crate::config::{InitialAllocation, MolecularConfig};
use crate::resize::ResizeTrigger;
use molcache_telemetry::ResizeKind;
use molcache_trace::{AccessKind, Address};

fn small_config() -> MolecularConfig {
    // 1 cluster x 2 tiles x 8 molecules x 1KB (16 frames of 64B).
    MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap()
}

fn read(asid: u16, addr: u64) -> Request {
    Request {
        asid: Asid::new(asid),
        addr: Address::new(addr),
        kind: AccessKind::Read,
    }
}

fn write(asid: u16, addr: u64) -> Request {
    Request {
        asid: Asid::new(asid),
        addr: Address::new(addr),
        kind: AccessKind::Write,
    }
}

#[test]
fn first_access_creates_region_with_half_tile() {
    let mut c = MolecularCache::new(small_config());
    c.access(read(1, 0));
    let snap = c.region_snapshot(Asid::new(1)).unwrap();
    assert_eq!(snap.molecules, 4, "half of an 8-molecule tile");
    assert_eq!(c.free_molecules(), 12);
}

#[test]
fn miss_then_hit() {
    let mut c = MolecularCache::new(small_config());
    assert!(!c.access(read(1, 0x100)).hit);
    assert!(c.access(read(1, 0x100)).hit);
    assert!(c.access(read(1, 0x100 + 32)).hit, "same 64B line");
}

#[test]
fn asid_isolation() {
    let mut c = MolecularCache::new(small_config());
    c.access(read(1, 0x1000));
    // A different app accessing the same physical address misses:
    // app 2's region does not include app 1's molecules.
    assert!(!c.access(read(2, 0x1000)).hit);
    // And app 1 still hits: app 2 did not disturb its region.
    assert!(c.access(read(1, 0x1000)).hit);
}

#[test]
fn apps_assigned_round_robin_to_tiles() {
    let mut c = MolecularCache::new(small_config());
    c.access(read(1, 0));
    c.access(read(2, 0));
    let home1 = c.regions[&Asid::new(1)].home_tile();
    let home2 = c.regions[&Asid::new(2)].home_tile();
    assert_ne!(home1, home2);
}

#[test]
fn write_miss_then_eviction_writes_back() {
    let cfg = MolecularConfig::builder()
        .molecule_size(128) // 2 frames per molecule
        .tile_molecules(2)
        .tiles_per_cluster(1)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(1))
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // One molecule, 2 frames. Write line 0, then conflict with line 2
    // (same frame 0 of the only molecule).
    assert!(!c.access(write(1, 0)).hit);
    let out = c.access(read(1, 2 * 64));
    assert!(!out.hit);
    assert!(out.writeback, "dirty line 0 must be written back");
}

#[test]
fn region_grows_when_missing() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(1))
        .trigger(ResizeTrigger::Constant { period: 200 })
        .miss_rate_goal(0.05)
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // Stream far more lines than one molecule holds: miss rate ~100%
    // -> Algorithm 1's >50% branch grows the partition each round.
    for i in 0..2_000u64 {
        c.access(read(1, (i % 256) * 64));
    }
    let snap = c.region_snapshot(Asid::new(1)).unwrap();
    assert!(snap.molecules > 1, "partition must have grown");
    assert!(c.resize_rounds() > 0);
}

#[test]
fn region_shrinks_when_idle_hot() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(8))
        .trigger(ResizeTrigger::Constant { period: 500 })
        .miss_rate_goal(0.20)
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // Two hot lines, hit rate ~100% -> far below goal -> withdraw.
    for i in 0..5_000u64 {
        c.access(read(1, (i % 2) * 64));
    }
    let snap = c.region_snapshot(Asid::new(1)).unwrap();
    assert!(snap.molecules < 8, "partition must have shrunk");
    assert!(snap.molecules >= 1, "never below one molecule");
}

#[test]
fn freed_molecules_are_reusable_by_other_apps() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(4)
        .tiles_per_cluster(1)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(4))
        .trigger(ResizeTrigger::Constant { period: 200 })
        .miss_rate_goal(0.2)
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // App 1 grabs all molecules, then goes idle-hot so it shrinks.
    for i in 0..3_000u64 {
        c.access(read(1, (i % 2) * 64));
    }
    assert!(c.free_molecules() > 0, "app 1 must have released some");
    // App 2 can now build a region.
    c.access(read(2, 1 << 20));
    let snap2 = c.region_snapshot(Asid::new(2)).unwrap();
    assert!(snap2.molecules >= 1);
}

#[test]
fn ulmo_searches_remote_tiles() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(2)
        .tiles_per_cluster(2)
        .clusters(1)
        // Want 3 molecules: 2 from home tile + 1 remote.
        .initial_allocation(InitialAllocation::Molecules(2))
        .max_allocation(4)
        .trigger(ResizeTrigger::Constant { period: 100 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // Thrash so the region grows beyond its home tile.
    for i in 0..1_000u64 {
        c.access(read(1, (i % 64) * 64));
    }
    let region = &c.regions[&Asid::new(1)];
    let remote = c.remote_tiles(region);
    assert!(!remote.is_empty(), "region should span tiles");
    assert!(c.activity().ulmo_searches > 0);
}

#[test]
fn shared_molecules_visible_to_all() {
    let mut c = MolecularCache::new(small_config());
    assert_eq!(c.make_shared(0, 2), 2);
    // Shared molecules pass the ASID stage for every app; they are
    // probed (ways_probed counts them) even before a region exists.
    c.access(read(1, 0));
    assert!(c.activity().ways_probed > 0);
}

#[test]
fn shared_molecules_serve_regionless_apps() {
    // One tile, one molecule, marked shared before any region exists.
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(1)
        .tiles_per_cluster(1)
        .clusters(1)
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    assert_eq!(c.make_shared(0, 1), 1);
    // The app's region gets zero molecules (pool is empty), but the
    // shared molecule accepts its fills and serves its hits.
    assert!(!c.access(read(1, 0)).hit);
    assert!(c.access(read(1, 0)).hit, "shared molecule served the hit");
    // A second application shares the same molecule.
    assert!(!c.access(read(2, 1 << 20)).hit);
    assert!(c.access(read(2, 1 << 20)).hit);
}

#[test]
fn no_duplicate_lines_across_region() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .app_line_factor(Asid::new(1), 4)
        .trigger(ResizeTrigger::Constant { period: 300 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    for i in 0..5_000u64 {
        c.access(read(1, (i % 300) * 64));
        if i % 512 == 0 {
            assert_eq!(c.find_duplicate_line(), None, "at access {i}");
        }
    }
    assert_eq!(c.find_duplicate_line(), None);
}

#[test]
fn bypass_when_no_molecules_available() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(1)
        .tiles_per_cluster(1)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(1))
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    c.access(read(1, 0)); // app 1 takes the only molecule
    let out = c.access(read(2, 1 << 20)); // app 2 gets nothing
    assert!(!out.hit);
    assert_eq!(out.lines_fetched, 0, "bypass fetches nothing");
    assert!(c.failed_allocations() > 0);
    // App 2's accesses all miss but do not crash or steal.
    assert!(!c.access(read(2, 1 << 20)).hit);
    assert!(c.access(read(1, 0)).hit, "app 1 undisturbed");
}

#[test]
fn line_factor_prefetches_block() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(1)
        .clusters(1)
        .app_line_factor(Asid::new(1), 4)
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    let out = c.access(read(1, 0));
    assert_eq!(out.lines_fetched, 4);
    // Neighbours in the 4-line block now hit.
    assert!(c.access(read(1, 64)).hit);
    assert!(c.access(read(1, 128)).hit);
    assert!(c.access(read(1, 192)).hit);
    // Next block misses.
    assert!(!c.access(read(1, 256)).hit);
}

#[test]
fn activity_counts_asid_compares() {
    let mut c = MolecularCache::new(small_config());
    c.access(read(1, 0));
    // Home tile has 8 molecules: at least 8 ASID compares happened.
    assert!(c.activity().asid_compares >= 8);
    let probes = c.activity().ways_probed;
    assert!(probes >= 4, "the 4 region molecules are probed");
}

#[test]
fn stats_reset_preserves_contents() {
    let mut c = MolecularCache::new(small_config());
    c.access(read(1, 0));
    c.reset_stats();
    assert_eq!(c.stats().global.accesses, 0);
    assert!(c.access(read(1, 0)).hit, "contents survive reset");
}

#[test]
fn describe_mentions_policy_and_geometry() {
    let c = MolecularCache::new(small_config());
    let d = c.describe();
    assert!(d.contains("Randy"), "{d}");
    assert!(d.contains("molecular"), "{d}");
}

#[test]
fn per_app_adaptive_trigger_resizes_only_that_app() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .trigger(ResizeTrigger::PerAppAdaptive {
            initial_period: 100,
        })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    for i in 0..500u64 {
        c.access(read(1, (i % 128) * 64));
    }
    assert!(c.resize_rounds() > 0);
}

#[test]
fn lfsr_is_deterministic_and_full_period_like() {
    let mut a = Lfsr16::new(0xACE1);
    let mut b = Lfsr16::new(0xACE1);
    let mut seen_distinct = std::collections::HashSet::new();
    for _ in 0..10_000 {
        let v = a.next_u16();
        assert_eq!(v, b.next_u16());
        seen_distinct.insert(v);
    }
    // Maximal-length 16-bit LFSR: 10k steps give 10k distinct states.
    assert_eq!(seen_distinct.len(), 10_000);
    // Zero seed is remapped, not stuck.
    let mut z = Lfsr16::new(0);
    assert_ne!(z.next_u16(), 0);
}

#[test]
fn remote_hit_costs_more_than_home_hit() {
    // Region spans two tiles; a line resident in the remote tile pays
    // the Ulmo penalty on top of the base hit latency.
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(2)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(4)) // spans both tiles
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // Touch enough distinct lines that some land in remote molecules,
    // then re-read: hits resolve either in the home tile (base
    // latency = 1 ASID stage + 4 hit cycles) or remotely through Ulmo
    // (base + 8).
    // 64 lines span replacement rows 0..3, so fills land in both the
    // home tile's molecules (rows 0-1) and the remote ones (rows 2-3).
    let mut hit_latencies = std::collections::BTreeSet::new();
    for round in 0..6 {
        for i in 0..64u64 {
            let out = c.access(read(1, i * 64));
            if round > 0 && out.hit {
                hit_latencies.insert(out.latency);
            }
        }
    }
    assert!(
        hit_latencies.contains(&5),
        "expected home-tile hits at latency 5: {hit_latencies:?}"
    );
    assert!(
        hit_latencies.contains(&13),
        "expected Ulmo remote hits at latency 13: {hit_latencies:?}"
    );
    assert!(c.activity().ulmo_searches > 0);
}

#[test]
fn high_quality_victim_rng_also_works() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(1)
        .clusters(1)
        .victim_rng(crate::config::VictimRng::HighQuality)
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // 48 lines fit comfortably in the initial 4-molecule allocation.
    for i in 0..500u64 {
        c.access(read(1, (i % 48) * 64));
    }
    let stats = c.stats();
    assert_eq!(stats.global.accesses, 500);
    assert!(stats.global.hits > 300, "hits {}", stats.global.hits);
}

#[test]
fn lru_direct_cache_end_to_end() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .policy(crate::config::RegionPolicy::LruDirect)
        .trigger(ResizeTrigger::Constant { period: 500 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    for i in 0..3_000u64 {
        c.access(read(1, (i % 96) * 64));
    }
    assert!(c.stats().global.hits > 0, "LRU-Direct must serve hits");
    assert!(c.describe().contains("LRU-Direct"));
}

#[test]
fn non_default_line_size() {
    // 128-byte base lines: two 64-byte offsets share a line.
    let cfg = MolecularConfig::builder()
        .molecule_size(2048)
        .line_size(128)
        .tile_molecules(4)
        .tiles_per_cluster(1)
        .clusters(1)
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    assert_eq!(c.config().frames_per_molecule(), 16);
    assert!(!c.access(read(1, 0)).hit);
    assert!(c.access(read(1, 64)).hit, "same 128B line");
    assert!(!c.access(read(1, 128)).hit, "next 128B line");
}

#[test]
fn block_fill_marks_only_accessed_line_dirty() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(1)
        .clusters(1)
        .app_line_factor(Asid::new(1), 2)
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    // Write-miss on line 1 of a 2-line block: line 1 dirty, line 0 clean.
    let out = c.access(write(1, 64));
    assert_eq!(out.lines_fetched, 2);
    assert!(c.access(read(1, 0)).hit, "block partner prefetched");
    // Writebacks counted so far come only from fills/evictions, and a
    // fresh cache has none.
    assert_eq!(c.stats().global.writebacks, 0);
}

#[test]
fn resize_overhead_estimate_tracks_partitions() {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .trigger(ResizeTrigger::Constant { period: 100 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    for i in 0..1_000u64 {
        c.access(read(1 + (i % 2) as u16, (i % 64) * 64));
    }
    // 10 rounds x 2 partitions x 1500 cycles.
    assert_eq!(c.resize_rounds(), 10);
    assert_eq!(
        c.estimated_resize_overhead_cycles(),
        10 * 2 * MolecularCache::RESIZE_CYCLES_PER_APP
    );
}

#[test]
fn release_region_returns_molecules_to_pool() {
    let mut c = MolecularCache::new(small_config());
    c.access(write(1, 0));
    let before_free = c.free_molecules();
    let released = c.release_region(Asid::new(1)).unwrap();
    assert_eq!(released, 4, "half-tile initial allocation returned");
    assert_eq!(c.free_molecules(), before_free + released);
    assert!(c.region_snapshot(Asid::new(1)).is_none());
    assert!(c.activity().writebacks > 0, "dirty line flushed");
    // Releasing again is a no-op.
    assert_eq!(c.release_region(Asid::new(1)), None);
    // A later access rebuilds a fresh region.
    assert!(!c.access(read(1, 0)).hit);
    assert!(c.region_snapshot(Asid::new(1)).is_some());
}

#[test]
fn rehome_moves_lookup_start() {
    let mut c = MolecularCache::new(small_config());
    c.access(read(1, 0));
    let old_home = c.regions[&Asid::new(1)].home_tile();
    let new_tile = if old_home.index() == 0 { 1 } else { 0 };
    assert!(c.rehome_app(Asid::new(1), new_tile));
    // The resident line is now remote: the hit goes through Ulmo.
    let before = c.activity().ulmo_searches;
    assert!(c.access(read(1, 0)).hit);
    assert!(c.activity().ulmo_searches > before);
    // Out-of-cluster / unknown targets are rejected.
    assert!(!c.rehome_app(Asid::new(1), 99));
    assert!(!c.rehome_app(Asid::new(42), 0));
}

#[test]
fn access_batch_is_bit_identical_to_access_loop() {
    // Frequent resizes plus interleaved ASIDs: the batched path must
    // reproduce the serial path exactly, including resize timing.
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(ResizeTrigger::Constant { period: 64 })
        .build()
        .unwrap();
    let reqs: Vec<Request> = (0..3_000u64)
        .map(|i| {
            let asid = 1 + (i % 3) as u16;
            read(asid, ((asid as u64) << 36) + (i % 200) * 64)
        })
        .collect();
    let mut serial = MolecularCache::new(cfg.clone());
    let mut expected = molcache_sim::BatchOutcome::default();
    for req in &reqs {
        expected.note(serial.access(*req));
    }
    let mut batched = MolecularCache::new(cfg);
    let mut got = molcache_sim::BatchOutcome::default();
    // Uneven chunk sizes exercise run boundaries at both edges.
    for chunk in reqs.chunks(777) {
        got.merge(&batched.access_batch(chunk));
    }
    assert_eq!(got, expected);
    assert_eq!(serial.stats(), batched.stats());
    assert_eq!(serial.activity(), batched.activity());
    assert_eq!(serial.snapshots(), batched.snapshots());
    assert_eq!(serial.resize_rounds(), batched.resize_rounds());
}

#[test]
fn telemetry_sink_observes_without_perturbing() {
    use molcache_telemetry::{Recorder, Sink};
    use std::sync::{Arc, Mutex};
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(1))
        .trigger(ResizeTrigger::Constant { period: 200 })
        .miss_rate_goal(0.05)
        .build()
        .unwrap();
    let reqs: Vec<Request> = (0..2_000u64).map(|i| read(1, (i % 256) * 64)).collect();

    let mut plain = MolecularCache::new(cfg.clone());
    for req in &reqs {
        plain.access(*req);
    }

    let recorder: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::new("t")));
    let sink: Arc<Mutex<dyn Sink>> = recorder.clone();
    let mut observed = MolecularCache::new(cfg).with_sink(SinkHandle::shared(sink, 500));
    for req in &reqs {
        observed.access(*req);
    }

    // Observation changes nothing the simulation can see.
    assert_eq!(plain.stats(), observed.stats());
    assert_eq!(plain.activity(), observed.activity());
    assert_eq!(plain.snapshots(), observed.snapshots());

    let rec = recorder.lock().unwrap();
    // 2000 accesses / 500-long epochs = 4 epoch records.
    assert_eq!(rec.epochs().len(), 4);
    let total: u64 = rec.epochs().iter().map(|e| e.accesses).sum();
    assert_eq!(total, 2_000, "epoch activity deltas tile the run");
    assert_eq!(rec.partitions().len(), 4, "one app, one sample per epoch");
    let sampled: u64 = rec.partitions().iter().map(|s| s.accesses).sum();
    assert_eq!(sampled, 2_000);
    assert!(
        rec.partitions().iter().all(|s| s.occupancy <= 1.0),
        "occupancy is a fraction"
    );
    // The thrashing workload grows the partition: resize log non-empty,
    // tagged with the constant trigger, sizes consistent.
    assert!(!rec.resizes().is_empty());
    for r in rec.resizes() {
        assert_eq!(r.trigger, "constant");
        match r.kind {
            ResizeKind::Grow => assert_eq!(r.after, r.before + r.applied),
            ResizeKind::Shrink => assert_eq!(r.after, r.before - r.applied),
        }
        assert!(r.applied <= r.requested);
    }
    let grew: usize = rec
        .resizes()
        .iter()
        .filter(|r| r.kind == ResizeKind::Grow)
        .map(|r| r.applied)
        .sum();
    assert!(grew > 0, "cold-start thrash must grow the partition");

    // Per-stage epoch series: each epoch's stage cycles tile the run and
    // agree with the cache-wide stage totals.
    let stage_cycles: u64 = rec.epochs().iter().map(|e| e.stages.total_cycles()).sum();
    assert_eq!(stage_cycles, observed.activity().stages.total_cycles());
    assert!(stage_cycles > 0);
}

#[test]
fn reset_stats_restarts_epoch_time() {
    use molcache_telemetry::{Recorder, Sink};
    use std::sync::{Arc, Mutex};
    let recorder: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::new("t")));
    let sink: Arc<Mutex<dyn Sink>> = recorder.clone();
    let mut c = MolecularCache::new(small_config()).with_sink(SinkHandle::shared(sink, 100));
    for i in 0..150u64 {
        c.access(read(1, (i % 8) * 64));
    }
    c.reset_stats();
    for i in 0..100u64 {
        c.access(read(1, (i % 8) * 64));
    }
    let rec = recorder.lock().unwrap();
    assert_eq!(rec.epochs().len(), 2);
    assert_eq!(rec.epochs()[0].epoch, 0);
    assert_eq!(rec.epochs()[1].epoch, 0, "epoch index restarts on reset");
    assert_eq!(rec.epochs()[1].accesses, 100);
}

#[test]
fn molecular_cache_is_send() {
    // The parallel experiment engine moves caches across worker
    // threads; a non-Send field would break that at compile time.
    fn assert_send<T: Send>() {}
    assert_send::<MolecularCache>();
}

#[test]
fn snapshots_sorted_by_asid() {
    let mut c = MolecularCache::new(small_config());
    c.access(read(2, 0));
    c.access(read(1, 0));
    let snaps = c.snapshots();
    assert_eq!(snaps.len(), 2);
    assert!(snaps[0].asid < snaps[1].asid);
}

// ---- stage-breakdown contract ------------------------------------------

/// Every access path — home hit, Ulmo remote hit, miss with fill,
/// bypass — must carry a breakdown whose stage cycles sum exactly to the
/// reported latency.
#[test]
fn stage_cycles_sum_to_latency_on_every_path() {
    let mut c = MolecularCache::new(small_config());
    for i in 0..2_000u64 {
        let out = c.access(read(1, (i % 300) * 64));
        let stages = out.stages.expect("molecular accesses carry stages");
        assert_eq!(stages.total_cycles(), out.latency, "access {i}");
    }
    // Remote hits via rehoming.
    c.rehome_app(Asid::new(1), 1);
    let out = c.access(read(1, 0));
    let stages = out.stages.unwrap();
    assert_eq!(stages.total_cycles(), out.latency);

    // Bypass path (no region molecules, no shared fallback).
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(1)
        .tiles_per_cluster(1)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(1))
        .trigger(ResizeTrigger::Constant { period: 1_000_000 })
        .build()
        .unwrap();
    let mut c = MolecularCache::new(cfg);
    c.access(read(1, 0));
    let out = c.access(read(2, 1 << 20));
    let stages = out.stages.expect("bypassed accesses still carry stages");
    assert_eq!(stages.total_cycles(), out.latency);
    assert_eq!(stages.fill.frames_touched, 0, "bypass fills nothing");
}

/// The per-stage lifetime totals tile the aggregate activity counters.
#[test]
fn stage_totals_tile_activity_counters() {
    let mut c = MolecularCache::new(small_config());
    let mut total_latency = 0u64;
    for i in 0..3_000u64 {
        let asid = 1 + (i % 2) as u16;
        let out = c.access(read(asid, ((asid as u64) << 30) + (i % 200) * 64));
        total_latency += u64::from(out.latency);
    }
    let a = c.activity();
    let s = a.stages;
    assert_eq!(
        s.asid_gate.asid_compares + s.ulmo_search.asid_compares,
        a.asid_compares,
        "gate + Ulmo compares tile the aggregate"
    );
    assert_eq!(
        s.home_lookup.tag_probes + s.ulmo_search.tag_probes,
        a.ways_probed,
        "home + Ulmo probes tile the aggregate"
    );
    assert_eq!(s.fill.frames_touched, a.line_fills);
    assert_eq!(s.total_cycles(), total_latency);
    // Stages that by construction contribute nothing to these counters.
    assert_eq!(s.victim.cycles, 0);
    assert_eq!(s.asid_gate.tag_probes, 0);
    assert_eq!(s.home_lookup.asid_compares, 0);
}

/// The home-tile stages charge exactly the configured cycle budget.
#[test]
fn stage_cycle_attribution_matches_config() {
    let mut c = MolecularCache::new(small_config());
    let miss = c.access(read(1, 0));
    let s = miss.stages.unwrap();
    assert_eq!(s.asid_gate.cycles, c.config().asid_stage_cycles);
    assert_eq!(s.home_lookup.cycles, c.config().hit_latency);
    assert_eq!(s.ulmo_search.cycles, 0, "single-tile region: no launch");
    assert_eq!(s.fill.cycles, c.config().miss_penalty);
    let hit = c.access(read(1, 0));
    let s = hit.stages.unwrap();
    assert_eq!(s.fill.cycles, 0, "hits never reach the fill stage");
    assert_eq!(s.fill.frames_touched, 0);
}

// ---- memoization front-end (`memo-front`) ------------------------------

/// A workload that exercises every memo-relevant path: three apps with
/// overlapping strides and writes (hits, conflict evictions, stale memo
/// entries), a tight resize trigger (generation bumps mid-stream), plus
/// explicit re-home / shared-grant / teardown structural events.
fn memo_torture(c: &mut MolecularCache) -> Vec<AccessOutcome> {
    let mut out = Vec::new();
    for i in 0..6_000u64 {
        let asid = (i % 3 + 1) as u16;
        // Every 4th access re-touches the app's hot line (memo fodder);
        // the rest stream with direct-mapped conflicts (stale entries).
        let addr = if i % 4 == 0 {
            u64::from(asid) * 4096
        } else {
            (i * 37 % 512) * 64 + (i % 7) * 8
        };
        let req = if i % 5 == 0 {
            write(asid, addr)
        } else {
            read(asid, addr)
        };
        out.push(c.access(req));
        match i {
            1_500 => {
                c.make_shared(1, 2);
            }
            3_000 => {
                c.rehome_app(Asid::new(2), 1);
            }
            4_500 => {
                c.release_region(Asid::new(3));
            }
            _ => {}
        }
    }
    out
}

/// The bit-identity contract of the memo front-end: every per-access
/// outcome (hit/latency/writeback/stage breakdown), the lifetime stats
/// and activity counters, the region snapshots and the full telemetry
/// JSON export are byte-identical with memoization on and off.
#[test]
fn memo_front_is_observationally_free() {
    use molcache_telemetry::{Recorder, Sink};
    use std::sync::{Arc, Mutex};
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(ResizeTrigger::Constant { period: 400 })
        .miss_rate_goal(0.05)
        .build()
        .unwrap();

    let run = |enable: bool| {
        let recorder: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::new("memo-eq")));
        let sink: Arc<Mutex<dyn Sink>> = recorder.clone();
        let mut c = MolecularCache::new(cfg.clone()).with_sink(SinkHandle::shared(sink, 500));
        c.set_memo_front(enable);
        let outcomes = memo_torture(&mut c);
        let json = recorder.lock().unwrap().to_json().unwrap();
        let epoch_memo_hits: u64 = recorder
            .lock()
            .unwrap()
            .epochs()
            .iter()
            .map(|e| e.memo_hits)
            .sum();
        (outcomes, c, json, epoch_memo_hits)
    };
    let (out_on, on, json_on, epoch_hits_on) = run(true);
    let (out_off, off, json_off, epoch_hits_off) = run(false);

    assert_eq!(out_on, out_off, "per-access outcomes diverge");
    assert_eq!(on.stats(), off.stats());
    assert_eq!(on.activity(), off.activity());
    assert_eq!(on.snapshots(), off.snapshots());
    assert_eq!(on.free_molecules(), off.free_molecules());
    assert_eq!(json_on, json_off, "telemetry JSON must be byte-identical");
    assert_eq!(on.find_duplicate_line(), None);

    // With the feature compiled in, the enabled run must actually have
    // used the memo — otherwise this test proves nothing. The epoch
    // samples carry the (JSON-excluded) per-epoch memo-hit diagnostic.
    assert_eq!(epoch_hits_off, 0, "disabled run must report no memo hits");
    if let Some(stats) = on.memo_stats() {
        assert!(stats.hits > 0, "memo never hit on a hit-heavy workload");
        assert!(
            stats.generation_bumps > 0,
            "resizes must bump the generation"
        );
        assert!(
            epoch_hits_on <= stats.hits,
            "epoch memo-hit deltas must never exceed the lifetime count"
        );
        assert!(
            epoch_hits_on > 0,
            "epoch samples must surface memo hits when the memo is hitting"
        );
    }
}

/// Batched and per-request entry points stay bit-identical with the
/// memo enabled (the memo state advances identically either way).
#[test]
fn memo_front_keeps_batch_bit_identical() {
    let reqs: Vec<Request> = (0..4_000u64)
        .map(|i| {
            let asid = (i % 2 + 1) as u16;
            read(asid, (i * 13 % 300) * 64)
        })
        .collect();
    let mut serial = MolecularCache::new(small_config());
    let mut batched = MolecularCache::new(small_config());
    for req in &reqs {
        serial.access(*req);
    }
    batched.access_batch(&reqs);
    assert_eq!(serial.stats(), batched.stats());
    assert_eq!(serial.activity(), batched.activity());
    assert_eq!(serial.snapshots(), batched.snapshots());
}

#[cfg(feature = "memo-front")]
#[test]
fn memo_structural_events_invalidate_entries() {
    let mut c = MolecularCache::new(small_config());
    let line_size = c.config().line_size();
    let line_of = move |addr: u64| Address::new(addr).line(line_size);

    // Two accesses to the same line: the second is a home hit that
    // writes a memo entry.
    c.access(read(1, 0x100));
    c.access(read(1, 0x100));
    assert!(c.memo_would_hit(Asid::new(1), line_of(0x100)));

    // Re-homing changes the gate set: the entry must die. (Hits after
    // the re-home are *remote* — served via Ulmo from the old tile — so
    // they are never memoized: only home-tile hits are.)
    assert!(c.rehome_app(Asid::new(1), 1));
    assert!(!c.memo_would_hit(Asid::new(1), line_of(0x100)));
    c.access(read(1, 0x100));
    c.access(read(1, 0x100));
    assert!(
        !c.memo_would_hit(Asid::new(1), line_of(0x100)),
        "remote (Ulmo) hits must not be memoized"
    );

    // Back home, hits are home hits again: re-learn, then tear the
    // region down: dead again.
    assert!(c.rehome_app(Asid::new(1), 0));
    c.access(read(1, 0x100));
    c.access(read(1, 0x100));
    assert!(c.memo_would_hit(Asid::new(1), line_of(0x100)));
    c.release_region(Asid::new(1));
    assert!(!c.memo_would_hit(Asid::new(1), line_of(0x100)));

    // Shared-bit changes bump too.
    c.access(read(2, 0x200));
    c.access(read(2, 0x200));
    assert!(c.memo_would_hit(Asid::new(2), line_of(0x200)));
    c.make_shared(0, 1);
    assert!(!c.memo_would_hit(Asid::new(2), line_of(0x200)));
}

#[cfg(feature = "memo-front")]
#[test]
fn memo_toggle_and_stats_surface() {
    let mut c = MolecularCache::new(small_config());
    assert!(c.memo_front_enabled(), "memo-front defaults to enabled");
    c.access(read(1, 0x40));
    c.access(read(1, 0x40));
    c.access(read(1, 0x40));
    let s = c.memo_stats().unwrap();
    assert!(s.enabled && s.hits >= 1, "repeat hits go through the memo");
    assert!(s.lookups() >= s.hits);

    c.set_memo_front(false);
    assert!(!c.memo_front_enabled());
    let before = c.memo_stats().unwrap();
    c.access(read(1, 0x40));
    let after = c.memo_stats().unwrap();
    assert_eq!(
        before.lookups(),
        after.lookups(),
        "disabled memo is not consulted"
    );

    // Stats reset clears the memo counters but keeps entries warm.
    c.set_memo_front(true);
    c.access(read(1, 0x40));
    c.reset_stats();
    let s = c.memo_stats().unwrap();
    assert_eq!((s.hits, s.misses, s.stale), (0, 0, 0));
}

#[cfg(not(feature = "memo-front"))]
#[test]
fn memo_api_is_inert_without_the_feature() {
    let mut c = MolecularCache::new(small_config());
    assert!(!c.memo_front_enabled());
    assert_eq!(c.memo_stats(), None);
    c.set_memo_front(true); // no-op, must not panic
    assert!(!c.memo_front_enabled());
}
