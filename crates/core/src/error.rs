//! Error types for molecular-cache configuration.

use std::error::Error;
use std::fmt;

/// Errors produced when building a [`MolecularConfig`].
///
/// [`MolecularConfig`]: crate::config::MolecularConfig
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// The offending parameter.
        field: &'static str,
        /// Constraint that was violated.
        constraint: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, constraint } => {
                write!(f, "invalid molecular config `{field}`: {constraint}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_message() {
        let e = CoreError::InvalidConfig {
            field: "molecule_size",
            constraint: "must be a power of two",
        };
        assert_eq!(
            e.to_string(),
            "invalid molecular config `molecule_size`: must be a power of two"
        );
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<CoreError>();
    }
}
