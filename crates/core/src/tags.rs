//! Flat bit-packed tag storage for the whole cache.
//!
//! The seed tree kept each molecule's line frames in its own
//! `Vec<LineFrame>` (three fields per frame behind one pointer
//! indirection per molecule), so a home-tile probe chased one heap
//! pointer per gated molecule. This module flattens all of that state
//! into cache-global contiguous arrays indexed by
//! `molecule * frames_per_molecule + frame`:
//!
//! * [`TagStore::words`] — one packed `u64` per line frame: bit 63 =
//!   valid, bit 62 = dirty, bits 0–61 = tag
//!   (`line / frames_per_molecule`);
//! * `asid_lanes` / `shared_lanes` — the per-molecule ASID-gate state
//!   (§3.1), packed four 16-bit ASID lanes per `u64` word, with the
//!   shared bit stored as the top bit of the corresponding lane.
//!
//! Molecule ids are assigned tile-contiguously at construction, so a
//! tile's gate state occupies a dense lane range and the §3.1 ASID gate
//! is a SWAR kernel ([`TagStore::gate_scan`]): each `u64` word compares
//! four molecules' ASIDs against the requestor branchlessly (exact
//! per-lane zero detection — no cross-lane borrows) and the matches come
//! out as a bitmask ([`GateMask`]) the probe stage walks with
//! `trailing_zeros`. No per-match pushes, no scratch `Vec`, and the
//! whole gate of a 32-molecule tile is eight word operations.
//! [`crate::molecule::Molecule`] retains only placement identity and
//! per-molecule hit/miss counters.
//!
//! The packing steals the top two bits of the tag word, so tags must fit
//! 62 bits: with the minimum 64-byte lines that caps the modeled
//! physical address space at 2^68 bytes per molecule frame count — far
//! beyond any trace the harness replays (debug builds assert it).

use crate::ids::MoleculeId;
use molcache_trace::{Asid, LineAddr};

/// Bit 63 of a packed frame word: the frame holds valid data.
const VALID: u64 = 1 << 63;
/// Bit 62 of a packed frame word: the frame was written since fill.
const DIRTY: u64 = 1 << 62;
/// Bits 0–61 of a packed frame word: the stored tag.
const TAG_MASK: u64 = (1 << 62) - 1;

/// 16-bit ASID lanes per packed gate word.
const LANES: usize = 4;
/// log2([`LANES`]), for `molecule <-> (word, lane)` arithmetic.
const LANE_SHIFT: usize = 2;
/// The top bit of every lane — where per-lane results (and the shared
/// bit) live.
const LANE_HI: u64 = 0x8000_8000_8000_8000;
/// The low 15 bits of every lane.
const LANE_LO: u64 = 0x7FFF_7FFF_7FFF_7FFF;
/// Broadcasts a 16-bit value into all four lanes when multiplied.
const LANE_BCAST: u64 = 0x0001_0001_0001_0001;

/// Exact per-lane zero detection: the top bit of each 16-bit lane of the
/// result is set iff that lane of `y` is zero.
///
/// `(y & LANE_LO) + LANE_LO` sets a lane's top bit iff its low 15 bits
/// are non-zero, and — unlike the classic `(y - 1) & !y` trick — cannot
/// carry into the next lane (each lane sum is at most `0xFFFE`), so the
/// answer is exact for *every* lane, not just the lowest zero.
#[inline]
fn zero_lanes(y: u64) -> u64 {
    !(((y & LANE_LO).wrapping_add(LANE_LO)) | y) & LANE_HI
}

/// The ASID gate's match bitmask over one tile's molecules: one bit per
/// molecule (at its lane's top-bit position), produced by
/// [`TagStore::gate_scan`] and consumed by the tag-probe stage.
///
/// The mask is a reusable scratch buffer: `gate_scan` clears and refills
/// it, and after warm-up the backing storage never reallocates, keeping
/// the gate allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct GateMask {
    /// Index of the first packed gate word covered (`base / LANES`).
    word_base: usize,
    /// One match word per covered gate word; a set bit at lane `l` of
    /// word `w` means molecule `(word_base + w) * LANES + l` matched.
    words: Vec<u64>,
    /// Total matches (popcount of `words`).
    count: u32,
}

impl GateMask {
    /// An empty mask with `capacity` molecules of backing storage
    /// pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        GateMask {
            word_base: 0,
            words: Vec::with_capacity(capacity.div_ceil(LANES) + 1),
            count: 0,
        }
    }

    /// Number of matching molecules.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Index of the first packed gate word the mask covers.
    #[inline]
    pub fn word_base(&self) -> usize {
        self.word_base
    }

    /// The per-word match bits.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The matching molecule ids in ascending (= tile) order.
    pub fn iter(&self) -> impl Iterator<Item = MoleculeId> + '_ {
        let base = self.word_base;
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(MoleculeId(
                    (((base + wi) << LANE_SHIFT) + (bit >> 4)) as u32,
                ))
            })
        })
    }
}

/// The packed-word range `[w0, w1]` covering molecules
/// `[base, base + count)`, with the head/tail lane masks that cut the
/// first and last word down to the in-range lanes (a tile's base need
/// not be lane-aligned, and its capacity need not be a lane multiple).
#[inline]
fn lane_range(base: usize, count: usize) -> (usize, usize, u64, u64) {
    debug_assert!(count > 0);
    let last = base + count - 1;
    let head = LANE_HI << ((base & (LANES - 1)) * 16);
    let tail = LANE_HI >> ((LANES - 1 - (last & (LANES - 1))) * 16);
    (base >> LANE_SHIFT, last >> LANE_SHIFT, head, tail)
}

/// The cache-global flat tag/state arrays (see the module docs).
///
/// ```
/// use molcache_core::tags::TagStore;
/// use molcache_core::ids::MoleculeId;
/// use molcache_trace::{Asid, LineAddr};
///
/// let mut t = TagStore::new(2, 128); // two molecules, 8KB / 64B each
/// let m = MoleculeId(0);
/// t.configure(m, Asid::new(1));
/// assert!(t.matches(m, Asid::new(1)) && !t.matches(m, Asid::new(2)));
/// t.fill(m, LineAddr(5), false);
/// assert!(t.lookup(m, LineAddr(5)));
/// ```
#[derive(Debug, Clone)]
pub struct TagStore {
    /// Line frames per molecule (uniform across the cache).
    frames_per_molecule: usize,
    /// `log2(frames_per_molecule)` when it is a power of two (every
    /// config the builder accepts has power-of-two molecule and line
    /// sizes, so this is the universal case); `u32::MAX` selects the
    /// generic div/mod path in [`slot`](Self::slot).
    frame_shift: u32,
    /// Packed frame words, `molecule * frames_per_molecule + frame`.
    words: Vec<u64>,
    /// Configured ASIDs, four 16-bit lanes per word
    /// ([`Asid::NONE`] = 0 when free).
    asid_lanes: Vec<u64>,
    /// Shared bits (§3.1: bypasses the ASID compare), one per molecule
    /// at its lane's top-bit position — already in [`GateMask`] form, so
    /// the gate ORs it straight into the match word.
    shared_lanes: Vec<u64>,
}

impl TagStore {
    /// Creates the flat store for `molecules` molecules of
    /// `frames_per_molecule` line frames each, all invalid and
    /// unassigned.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_molecule == 0`.
    pub fn new(molecules: usize, frames_per_molecule: usize) -> Self {
        assert!(frames_per_molecule > 0, "molecule needs at least one frame");
        let frame_shift = if frames_per_molecule.is_power_of_two() {
            frames_per_molecule.trailing_zeros()
        } else {
            u32::MAX
        };
        TagStore {
            frames_per_molecule,
            frame_shift,
            words: vec![0; molecules * frames_per_molecule],
            // Out-of-range lanes of the last word stay NONE/unshared
            // forever and can never match a gate scan.
            asid_lanes: vec![0; molecules.div_ceil(LANES)],
            shared_lanes: vec![0; molecules.div_ceil(LANES)],
        }
    }

    /// Line frames per molecule.
    pub fn frames_per_molecule(&self) -> usize {
        self.frames_per_molecule
    }

    /// The flat word index and packed tag bits of `line` in `mol`.
    #[inline]
    fn slot(&self, mol: MoleculeId, line: LineAddr) -> (usize, u64) {
        let (tag, frame) = if self.frame_shift != u32::MAX {
            (
                line.0 >> self.frame_shift,
                (line.0 & (self.frames_per_molecule as u64 - 1)) as usize,
            )
        } else {
            let n = self.frames_per_molecule as u64;
            (line.0 / n, (line.0 % n) as usize)
        };
        debug_assert!(tag & !TAG_MASK == 0, "tag overflows the 62 packed bits");
        (mol.index() * self.frames_per_molecule + frame, tag)
    }

    /// The raw 16-bit ASID lane of molecule `i`.
    #[inline]
    fn asid_raw(&self, i: usize) -> u16 {
        (self.asid_lanes[i >> LANE_SHIFT] >> ((i & (LANES - 1)) * 16)) as u16
    }

    /// The configured ASID of a molecule ([`Asid::NONE`] when free).
    pub fn asid_of(&self, mol: MoleculeId) -> Asid {
        Asid::new(self.asid_raw(mol.index()))
    }

    /// Whether a molecule's shared bit is set.
    pub fn is_shared(&self, mol: MoleculeId) -> bool {
        let i = mol.index();
        self.shared_lanes[i >> LANE_SHIFT] >> ((i & (LANES - 1)) * 16 + 15) & 1 != 0
    }

    /// Sets or clears a molecule's shared bit.
    pub fn set_shared(&mut self, mol: MoleculeId, shared: bool) {
        let i = mol.index();
        let bit = 1u64 << ((i & (LANES - 1)) * 16 + 15);
        let w = &mut self.shared_lanes[i >> LANE_SHIFT];
        *w = if shared { *w | bit } else { *w & !bit };
    }

    /// The ASID-match stage for one molecule (Figure 3: the shared bit
    /// forces a match).
    pub fn matches(&self, mol: MoleculeId, asid: Asid) -> bool {
        let a = self.asid_raw(mol.index());
        self.is_shared(mol) || (a != Asid::NONE.raw() && a == asid.raw())
    }

    /// The §3.1 ASID gate over one tile's contiguous molecule slice:
    /// fills `out` with the match bitmask of the molecules in
    /// `[base, base + count)` that match `asid` (shared bit or ASID
    /// equality).
    ///
    /// SWAR kernel: each packed word xors four ASID lanes against the
    /// broadcast requestor, detects equal (= zero) lanes exactly, masks
    /// equality off entirely for [`Asid::NONE`] requests (a free
    /// molecule must never match one), ORs in the shared bits, and trims
    /// the head/tail words to the in-range lanes.
    pub fn gate_scan(&self, base: usize, count: usize, asid: Asid, out: &mut GateMask) {
        out.words.clear();
        out.word_base = base >> LANE_SHIFT;
        out.count = 0;
        if count == 0 {
            return;
        }
        let (w0, w1, head, tail) = lane_range(base, count);
        let bcast = u64::from(asid.raw()).wrapping_mul(LANE_BCAST);
        // All-or-nothing lane mask: NONE requests take no equality path.
        let asid_ok = if asid == Asid::NONE { 0 } else { !0u64 };
        let mut count = 0;
        for w in w0..=w1 {
            let eq = zero_lanes(self.asid_lanes[w] ^ bcast);
            let mut m = (eq & asid_ok) | self.shared_lanes[w];
            if w == w0 {
                m &= head;
            }
            if w == w1 {
                m &= tail;
            }
            out.words.push(m);
            count += m.count_ones();
        }
        out.count = count;
    }

    /// Number of shared molecules in `[base, base + count)` (the victim
    /// stage's shared-fallback pool; same SWAR word walk as the gate).
    pub fn count_shared(&self, base: usize, count: usize) -> usize {
        if count == 0 {
            return 0;
        }
        let (w0, w1, head, tail) = lane_range(base, count);
        let mut n = 0u32;
        for w in w0..=w1 {
            let mut m = self.shared_lanes[w];
            if w == w0 {
                m &= head;
            }
            if w == w1 {
                m &= tail;
            }
            n += m.count_ones();
        }
        n as usize
    }

    /// The `k`-th (ascending id order) shared molecule in
    /// `[base, base + count)`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k + 1` molecules of the range are shared.
    pub fn nth_shared(&self, base: usize, count: usize, k: usize) -> MoleculeId {
        assert!(count > 0, "empty range holds no shared molecule");
        let (w0, w1, head, tail) = lane_range(base, count);
        let mut k = k as u32;
        for w in w0..=w1 {
            let mut m = self.shared_lanes[w];
            if w == w0 {
                m &= head;
            }
            if w == w1 {
                m &= tail;
            }
            let ones = m.count_ones();
            if k < ones {
                // Drop the k lowest set bits, then read the next one.
                for _ in 0..k {
                    m &= m - 1;
                }
                let bit = m.trailing_zeros() as usize;
                return MoleculeId(((w << LANE_SHIFT) + (bit >> 4)) as u32);
            }
            k -= ones;
        }
        panic!("range holds fewer shared molecules than requested");
    }

    /// Configures a molecule into a region (or frees it with
    /// [`Asid::NONE`]). Contents are invalidated: the new owner must not
    /// observe the previous owner's data. Returns the number of dirty
    /// frames flushed.
    pub fn configure(&mut self, mol: MoleculeId, asid: Asid) -> u64 {
        let i = mol.index();
        let sh = (i & (LANES - 1)) * 16;
        let w = &mut self.asid_lanes[i >> LANE_SHIFT];
        *w = (*w & !(0xFFFFu64 << sh)) | (u64::from(asid.raw()) << sh);
        self.invalidate_all(mol)
    }

    /// Invalidates every frame of a molecule; returns the number of
    /// dirty frames (the writebacks this flush generates). Branchless:
    /// valid+dirty is one shift-and per word.
    pub fn invalidate_all(&mut self, mol: MoleculeId) -> u64 {
        let base = mol.index() * self.frames_per_molecule;
        let frames = &mut self.words[base..base + self.frames_per_molecule];
        let dirty: u64 = frames.iter().map(|&w| (w >> 62) & (w >> 63) & 1).sum();
        frames.fill(0);
        dirty
    }

    /// Direct-mapped lookup. Returns whether the line is resident.
    pub fn lookup(&self, mol: MoleculeId, line: LineAddr) -> bool {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        w & VALID != 0 && w & TAG_MASK == tag
    }

    /// The tag probe of one gated molecule: on a resident line returns
    /// `true`, marking the frame dirty when `is_write` (write hit). A
    /// miss mutates nothing.
    #[inline]
    pub fn probe(&mut self, mol: MoleculeId, line: LineAddr, is_write: bool) -> bool {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        if w & VALID != 0 && w & TAG_MASK == tag {
            if is_write {
                self.words[idx] = w | DIRTY;
            }
            true
        } else {
            false
        }
    }

    /// Fills `line` into its direct-mapped frame of `mol`, evicting
    /// whatever was there. Returns `true` if the eviction wrote back a
    /// dirty line.
    pub fn fill(&mut self, mol: MoleculeId, line: LineAddr, dirty: bool) -> bool {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        let evicted_dirty = w & (VALID | DIRTY) == VALID | DIRTY && w & TAG_MASK != tag;
        self.words[idx] = VALID | if dirty { DIRTY } else { 0 } | tag;
        evicted_dirty
    }

    /// Invalidates one line of `mol` if resident; returns `Some(dirty)`
    /// if it was.
    pub fn invalidate(&mut self, mol: MoleculeId, line: LineAddr) -> Option<bool> {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        if w & VALID != 0 && w & TAG_MASK == tag {
            self.words[idx] = 0;
            Some(w & DIRTY != 0)
        } else {
            None
        }
    }

    /// Number of valid frames of `mol` (diagnostics). Branchless
    /// word-at-a-time valid-bit sum, like
    /// [`invalidate_all`](Self::invalidate_all).
    pub fn occupancy(&self, mol: MoleculeId) -> usize {
        let base = mol.index() * self.frames_per_molecule;
        self.words[base..base + self.frames_per_molecule]
            .iter()
            .map(|&w| (w >> 63) as usize)
            .sum()
    }

    /// The line addresses currently resident in `mol` (diagnostics /
    /// invariant checking): frame `i` holding tag `t` stores line
    /// `t * frames + i`. One pass over the packed words; reconstruction
    /// happens only for valid frames.
    pub fn resident_lines(&self, mol: MoleculeId) -> impl Iterator<Item = LineAddr> + '_ {
        let n = self.frames_per_molecule as u64;
        let base = mol.index() * self.frames_per_molecule;
        self.words[base..base + self.frames_per_molecule]
            .iter()
            .enumerate()
            .filter_map(move |(i, &w)| {
                (w & VALID != 0).then_some(LineAddr((w & TAG_MASK) * n + i as u64))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(frames: usize) -> (TagStore, MoleculeId) {
        (TagStore::new(4, frames), MoleculeId(0))
    }

    /// The pre-SWAR scalar gate: one `matches` per molecule, ids pushed
    /// in tile order. The SWAR kernel must agree with this on every
    /// input.
    fn gate_scan_ref(t: &TagStore, base: usize, count: usize, asid: Asid) -> Vec<MoleculeId> {
        (base..base + count)
            .map(|i| MoleculeId(i as u32))
            .filter(|&m| t.matches(m, asid))
            .collect()
    }

    fn gate_scan_swar(t: &TagStore, base: usize, count: usize, asid: Asid) -> Vec<MoleculeId> {
        let mut mask = GateMask::default();
        t.gate_scan(base, count, asid, &mut mask);
        let ids: Vec<MoleculeId> = mask.iter().collect();
        assert_eq!(ids.len(), mask.count() as usize, "count must match bits");
        ids
    }

    #[test]
    fn direct_mapped_fill_and_lookup() {
        let (mut t, m) = store(128);
        let line = LineAddr(5);
        assert!(!t.lookup(m, line));
        t.fill(m, line, false);
        assert!(t.lookup(m, line));
        // Same frame, different tag: conflict.
        let conflict = LineAddr(5 + 128);
        assert!(!t.lookup(m, conflict));
        t.fill(m, conflict, false);
        assert!(t.lookup(m, conflict));
        assert!(!t.lookup(m, line), "direct-mapped conflict must evict");
    }

    #[test]
    fn non_power_of_two_frames_take_the_generic_slot_path() {
        // 12 frames per molecule: the shift fast path must disengage and
        // the div/mod path must agree on placement and tags.
        let mut t = TagStore::new(3, 12);
        let m = MoleculeId(1);
        t.fill(m, LineAddr(12 + 5), true); // frame 5, tag 1
        assert!(t.lookup(m, LineAddr(17)));
        assert!(!t.lookup(m, LineAddr(5)), "tag 0 is a different line");
        let lines: Vec<u64> = t.resident_lines(m).map(|l| l.0).collect();
        assert_eq!(lines, vec![17]);
        assert_eq!(t.invalidate(m, LineAddr(17)), Some(true));
    }

    #[test]
    fn fill_reports_dirty_eviction() {
        let (mut t, m) = store(64);
        t.fill(m, LineAddr(0), true);
        assert!(t.fill(m, LineAddr(64), false), "dirty conflict writes back");
        assert!(!t.fill(m, LineAddr(128), false), "clean conflict does not");
    }

    #[test]
    fn refill_same_line_is_not_writeback() {
        let (mut t, m) = store(64);
        t.fill(m, LineAddr(3), true);
        assert!(!t.fill(m, LineAddr(3), false), "same tag overwrite, no WB");
    }

    #[test]
    fn asid_matching() {
        let (mut t, m) = store(16);
        assert!(!t.matches(m, Asid::new(1)), "unconfigured never matches");
        t.configure(m, Asid::new(1));
        assert!(t.matches(m, Asid::new(1)));
        assert!(!t.matches(m, Asid::new(2)));
        t.set_shared(m, true);
        assert!(t.matches(m, Asid::new(2)), "shared bit bypasses ASID");
    }

    #[test]
    fn configure_preserves_lane_neighbours() {
        // All four molecules share one packed word: configuring one lane
        // must not disturb the others.
        let mut t = TagStore::new(4, 8);
        for i in 0..4u32 {
            t.configure(MoleculeId(i), Asid::new(100 + i as u16));
        }
        t.configure(MoleculeId(2), Asid::new(7));
        for (i, want) in [(0u32, 100u16), (1, 101), (2, 7), (3, 103)] {
            assert_eq!(t.asid_of(MoleculeId(i)), Asid::new(want), "lane {i}");
        }
        t.set_shared(MoleculeId(1), true);
        t.set_shared(MoleculeId(1), false);
        assert!(!t.is_shared(MoleculeId(0)) && !t.is_shared(MoleculeId(1)));
    }

    #[test]
    fn gate_scan_preserves_tile_order_and_isolation() {
        let mut t = TagStore::new(4, 16);
        t.configure(MoleculeId(0), Asid::new(2));
        t.configure(MoleculeId(1), Asid::new(1));
        t.configure(MoleculeId(3), Asid::new(1));
        t.set_shared(MoleculeId(2), true);
        let out = gate_scan_swar(&t, 0, 4, Asid::new(1));
        assert_eq!(out, vec![MoleculeId(1), MoleculeId(2), MoleculeId(3)]);
        // A free molecule (ASID none) never matches a none request.
        t.configure(MoleculeId(0), Asid::NONE);
        t.set_shared(MoleculeId(2), false);
        let out = gate_scan_swar(&t, 0, 4, Asid::NONE);
        assert!(out.is_empty(), "ASID 0 must not match free molecules");
    }

    #[test]
    fn gate_scan_matches_scalar_reference_exhaustively() {
        // 23 molecules: deliberately not a lane multiple. Mix owners,
        // free molecules and shared bits across lane boundaries, then
        // compare SWAR and scalar gates for every (base, count, asid)
        // over a set of interesting ASIDs.
        let mut t = TagStore::new(23, 4);
        for i in 0..23u32 {
            let asid = match i % 5 {
                0 => Asid::NONE,
                1 => Asid::new(1),
                2 => Asid::new(2),
                3 => Asid::new(0x7FFF),
                _ => Asid::new(0xFFFF),
            };
            t.configure(MoleculeId(i), asid);
            if i % 7 == 3 {
                t.set_shared(MoleculeId(i), true);
            }
        }
        let asids = [
            Asid::NONE,
            Asid::new(1),
            Asid::new(2),
            Asid::new(3),
            Asid::new(0x7FFF),
            Asid::new(0x8000),
            Asid::new(0xFFFF),
        ];
        for base in 0..23 {
            for count in 1..=(23 - base) {
                for asid in asids {
                    assert_eq!(
                        gate_scan_swar(&t, base, count, asid),
                        gate_scan_ref(&t, base, count, asid),
                        "base {base} count {count} asid {}",
                        asid.raw(),
                    );
                }
            }
        }
    }

    #[test]
    fn gate_scan_ragged_tail_and_misaligned_base() {
        // Base 5 (lane 1 of word 1), count 6 (ends mid-word): the head
        // and tail masks must clip the out-of-range lanes even when they
        // would match.
        let mut t = TagStore::new(16, 4);
        for i in 0..16u32 {
            t.configure(MoleculeId(i), Asid::new(9));
        }
        let out = gate_scan_swar(&t, 5, 6, Asid::new(9));
        assert_eq!(out, (5..11).map(MoleculeId).collect::<Vec<_>>());
        // Single-molecule range inside one word.
        assert_eq!(gate_scan_swar(&t, 6, 1, Asid::new(9)), vec![MoleculeId(6)]);
        assert_eq!(gate_scan_swar(&t, 6, 1, Asid::new(8)), vec![]);
    }

    #[test]
    fn gate_scan_empty_range_is_empty() {
        let t = TagStore::new(8, 4);
        let mut mask = GateMask::default();
        t.gate_scan(3, 0, Asid::new(1), &mut mask);
        assert_eq!(mask.count(), 0);
        assert_eq!(mask.iter().count(), 0);
    }

    #[test]
    fn zero_lanes_is_exact_per_lane() {
        // The classic haszero trick misreports lanes above a zero lane;
        // this formulation must not. Lane layout: [0, 1, 0, 0x8000].
        let y: u64 = 0x8000_0000_0001_0000;
        let z = zero_lanes(y);
        assert_eq!(z, 0x0000_8000_0000_8000, "exact zero lanes only");
        assert_eq!(zero_lanes(0), LANE_HI);
        assert_eq!(zero_lanes(u64::MAX), 0);
    }

    #[test]
    fn shared_count_and_select() {
        let mut t = TagStore::new(13, 4);
        for i in [1u32, 4, 5, 9, 12] {
            t.set_shared(MoleculeId(i), true);
        }
        assert_eq!(t.count_shared(0, 13), 5);
        assert_eq!(t.count_shared(2, 4), 2, "range [2,6): shared 4, 5");
        assert_eq!(t.count_shared(6, 3), 0);
        assert_eq!(t.nth_shared(0, 13, 0), MoleculeId(1));
        assert_eq!(t.nth_shared(0, 13, 3), MoleculeId(9));
        assert_eq!(t.nth_shared(0, 13, 4), MoleculeId(12));
        assert_eq!(t.nth_shared(2, 4, 1), MoleculeId(5));
    }

    #[test]
    #[should_panic(expected = "fewer shared molecules")]
    fn nth_shared_out_of_range_panics() {
        let mut t = TagStore::new(8, 4);
        t.set_shared(MoleculeId(2), true);
        t.nth_shared(0, 8, 1);
    }

    #[test]
    fn configure_invalidates_and_counts_dirty() {
        let (mut t, m) = store(16);
        t.configure(m, Asid::new(1));
        t.fill(m, LineAddr(0), true);
        t.fill(m, LineAddr(1), false);
        let flushed = t.configure(m, Asid::new(2));
        assert_eq!(flushed, 1);
        assert_eq!(t.occupancy(m), 0);
        assert!(!t.lookup(m, LineAddr(0)));
    }

    #[test]
    fn probe_touches_and_marks_dirty() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(2), false);
        assert!(t.probe(m, LineAddr(2), false));
        assert!(!t.probe(m, LineAddr(3), false));
        assert!(t.probe(m, LineAddr(2), true));
        // The dirty line now writes back on conflict.
        assert!(t.fill(m, LineAddr(2 + 16), false));
    }

    #[test]
    fn probe_miss_mutates_nothing() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(2), false);
        assert!(!t.probe(m, LineAddr(2 + 16), true), "conflict tag misses");
        assert!(t.lookup(m, LineAddr(2)), "resident line untouched");
        assert!(!t.fill(m, LineAddr(2 + 32), false), "still clean: no WB");
    }

    #[test]
    fn invalidate_single_line() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(4), true);
        assert_eq!(t.invalidate(m, LineAddr(4)), Some(true));
        assert_eq!(t.invalidate(m, LineAddr(4)), None);
    }

    #[test]
    fn resident_lines_reconstruct_addresses() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(5), false);
        t.fill(m, LineAddr(16 + 2), true); // frame 2, tag 1
        let mut lines: Vec<u64> = t.resident_lines(m).map(|l| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![5, 18]);
    }

    #[test]
    fn molecules_are_isolated_slices() {
        let mut t = TagStore::new(3, 8);
        t.fill(MoleculeId(1), LineAddr(7), true);
        assert!(!t.lookup(MoleculeId(0), LineAddr(7)));
        assert!(!t.lookup(MoleculeId(2), LineAddr(7)));
        assert_eq!(t.occupancy(MoleculeId(0)), 0);
        assert_eq!(t.occupancy(MoleculeId(1)), 1);
        assert_eq!(t.invalidate_all(MoleculeId(2)), 0);
        assert!(
            t.lookup(MoleculeId(1), LineAddr(7)),
            "neighbour flush keeps slice"
        );
    }

    #[test]
    fn invalidate_all_counts_only_valid_dirty_frames() {
        let (mut t, m) = store(8);
        t.fill(m, LineAddr(0), true); // valid+dirty
        t.fill(m, LineAddr(1), false); // valid+clean
        t.fill(m, LineAddr(2), true); // valid+dirty
        assert_eq!(t.invalidate_all(m), 2);
        assert_eq!(t.invalidate_all(m), 0, "second flush finds nothing");
    }

    #[test]
    fn large_tags_round_trip() {
        let (mut t, m) = store(16);
        // A tag near the top of the 62-bit packed field survives the
        // round trip (valid/dirty bits do not corrupt it).
        let line = LineAddr(((1u64 << 60) - 1) * 16 + 3);
        t.fill(m, line, true);
        assert!(t.lookup(m, line));
        let lines: Vec<u64> = t.resident_lines(m).map(|l| l.0).collect();
        assert_eq!(lines, vec![line.0]);
        assert_eq!(t.invalidate(m, line), Some(true));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        TagStore::new(4, 0);
    }
}
