//! Flat bit-packed tag storage for the whole cache.
//!
//! The seed tree kept each molecule's line frames in its own
//! `Vec<LineFrame>` (three fields per frame behind one pointer
//! indirection per molecule), so a home-tile probe chased one heap
//! pointer per gated molecule. This module flattens all of that state
//! into cache-global contiguous arrays indexed by
//! `molecule * frames_per_molecule + frame`:
//!
//! * [`TagStore::words`] — one packed `u64` per line frame: bit 63 =
//!   valid, bit 62 = dirty, bits 0–61 = tag
//!   (`line / frames_per_molecule`);
//! * [`TagStore::asids`] / [`TagStore::shared`] — the per-molecule
//!   ASID-gate state (§3.1), one flat slot per molecule.
//!
//! Molecule ids are assigned tile-contiguously at construction, so a
//! tile's gate state occupies one dense slice of `asids`/`shared` and a
//! home-tile ASID gate is a single linear scan ([`TagStore::gate_scan`])
//! — branch-predictable, prefetch-friendly and trivially
//! SIMD-vectorizable, which is where the molbench `single:*` speedup of
//! this layout comes from. [`crate::molecule::Molecule`] retains only
//! placement identity and per-molecule hit/miss counters.
//!
//! The packing steals the top two bits of the tag word, so tags must fit
//! 62 bits: with the minimum 64-byte lines that caps the modeled
//! physical address space at 2^68 bytes per molecule frame count — far
//! beyond any trace the harness replays (debug builds assert it).

use crate::ids::MoleculeId;
use molcache_trace::{Asid, LineAddr};

/// Bit 63 of a packed frame word: the frame holds valid data.
const VALID: u64 = 1 << 63;
/// Bit 62 of a packed frame word: the frame was written since fill.
const DIRTY: u64 = 1 << 62;
/// Bits 0–61 of a packed frame word: the stored tag.
const TAG_MASK: u64 = (1 << 62) - 1;

/// The cache-global flat tag/state arrays (see the module docs).
///
/// ```
/// use molcache_core::tags::TagStore;
/// use molcache_core::ids::MoleculeId;
/// use molcache_trace::{Asid, LineAddr};
///
/// let mut t = TagStore::new(2, 128); // two molecules, 8KB / 64B each
/// let m = MoleculeId(0);
/// t.configure(m, Asid::new(1));
/// assert!(t.matches(m, Asid::new(1)) && !t.matches(m, Asid::new(2)));
/// t.fill(m, LineAddr(5), false);
/// assert!(t.lookup(m, LineAddr(5)));
/// ```
#[derive(Debug, Clone)]
pub struct TagStore {
    /// Line frames per molecule (uniform across the cache).
    frames_per_molecule: usize,
    /// Packed frame words, `molecule * frames_per_molecule + frame`.
    words: Vec<u64>,
    /// Configured ASID per molecule ([`Asid::NONE`] when free).
    asids: Vec<u16>,
    /// Shared bit per molecule (§3.1: bypasses the ASID compare).
    shared: Vec<bool>,
}

impl TagStore {
    /// Creates the flat store for `molecules` molecules of
    /// `frames_per_molecule` line frames each, all invalid and
    /// unassigned.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_molecule == 0`.
    pub fn new(molecules: usize, frames_per_molecule: usize) -> Self {
        assert!(frames_per_molecule > 0, "molecule needs at least one frame");
        TagStore {
            frames_per_molecule,
            words: vec![0; molecules * frames_per_molecule],
            asids: vec![Asid::NONE.raw(); molecules],
            shared: vec![false; molecules],
        }
    }

    /// Line frames per molecule.
    pub fn frames_per_molecule(&self) -> usize {
        self.frames_per_molecule
    }

    /// The flat word index and packed tag bits of `line` in `mol`.
    #[inline]
    fn slot(&self, mol: MoleculeId, line: LineAddr) -> (usize, u64) {
        let n = self.frames_per_molecule as u64;
        let tag = line.0 / n;
        debug_assert!(tag & !TAG_MASK == 0, "tag overflows the 62 packed bits");
        let idx = mol.index() * self.frames_per_molecule + (line.0 % n) as usize;
        (idx, tag)
    }

    /// The configured ASID of a molecule ([`Asid::NONE`] when free).
    pub fn asid_of(&self, mol: MoleculeId) -> Asid {
        Asid::new(self.asids[mol.index()])
    }

    /// Whether a molecule's shared bit is set.
    pub fn is_shared(&self, mol: MoleculeId) -> bool {
        self.shared[mol.index()]
    }

    /// Sets or clears a molecule's shared bit.
    pub fn set_shared(&mut self, mol: MoleculeId, shared: bool) {
        self.shared[mol.index()] = shared;
    }

    /// The ASID-match stage for one molecule (Figure 3: the shared bit
    /// forces a match).
    pub fn matches(&self, mol: MoleculeId, asid: Asid) -> bool {
        let i = mol.index();
        self.shared[i] || (self.asids[i] != Asid::NONE.raw() && self.asids[i] == asid.raw())
    }

    /// The §3.1 ASID gate over one tile's contiguous molecule slice:
    /// appends the ids of the molecules in `[base, base + count)` that
    /// match `asid`, in tile (= id) order, to `out`.
    pub fn gate_scan(&self, base: usize, count: usize, asid: Asid, out: &mut Vec<MoleculeId>) {
        let a = asid.raw();
        let none = Asid::NONE.raw();
        let asids = &self.asids[base..base + count];
        let shared = &self.shared[base..base + count];
        for k in 0..count {
            if shared[k] || (asids[k] != none && asids[k] == a) {
                out.push(MoleculeId((base + k) as u32));
            }
        }
    }

    /// Configures a molecule into a region (or frees it with
    /// [`Asid::NONE`]). Contents are invalidated: the new owner must not
    /// observe the previous owner's data. Returns the number of dirty
    /// frames flushed.
    pub fn configure(&mut self, mol: MoleculeId, asid: Asid) -> u64 {
        self.asids[mol.index()] = asid.raw();
        self.invalidate_all(mol)
    }

    /// Invalidates every frame of a molecule; returns the number of
    /// dirty frames (the writebacks this flush generates).
    pub fn invalidate_all(&mut self, mol: MoleculeId) -> u64 {
        let base = mol.index() * self.frames_per_molecule;
        let frames = &mut self.words[base..base + self.frames_per_molecule];
        let dirty = frames
            .iter()
            .filter(|&&w| w & (VALID | DIRTY) == VALID | DIRTY)
            .count() as u64;
        frames.fill(0);
        dirty
    }

    /// Direct-mapped lookup. Returns whether the line is resident.
    pub fn lookup(&self, mol: MoleculeId, line: LineAddr) -> bool {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        w & VALID != 0 && w & TAG_MASK == tag
    }

    /// The tag probe of one gated molecule: on a resident line returns
    /// `true`, marking the frame dirty when `is_write` (write hit). A
    /// miss mutates nothing.
    #[inline]
    pub fn probe(&mut self, mol: MoleculeId, line: LineAddr, is_write: bool) -> bool {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        if w & VALID != 0 && w & TAG_MASK == tag {
            if is_write {
                self.words[idx] = w | DIRTY;
            }
            true
        } else {
            false
        }
    }

    /// Fills `line` into its direct-mapped frame of `mol`, evicting
    /// whatever was there. Returns `true` if the eviction wrote back a
    /// dirty line.
    pub fn fill(&mut self, mol: MoleculeId, line: LineAddr, dirty: bool) -> bool {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        let evicted_dirty = w & (VALID | DIRTY) == VALID | DIRTY && w & TAG_MASK != tag;
        self.words[idx] = VALID | if dirty { DIRTY } else { 0 } | tag;
        evicted_dirty
    }

    /// Invalidates one line of `mol` if resident; returns `Some(dirty)`
    /// if it was.
    pub fn invalidate(&mut self, mol: MoleculeId, line: LineAddr) -> Option<bool> {
        let (idx, tag) = self.slot(mol, line);
        let w = self.words[idx];
        if w & VALID != 0 && w & TAG_MASK == tag {
            self.words[idx] = 0;
            Some(w & DIRTY != 0)
        } else {
            None
        }
    }

    /// Number of valid frames of `mol` (diagnostics).
    pub fn occupancy(&self, mol: MoleculeId) -> usize {
        let base = mol.index() * self.frames_per_molecule;
        self.words[base..base + self.frames_per_molecule]
            .iter()
            .filter(|&&w| w & VALID != 0)
            .count()
    }

    /// The line addresses currently resident in `mol` (diagnostics /
    /// invariant checking): frame `i` holding tag `t` stores line
    /// `t * frames + i`.
    pub fn resident_lines(&self, mol: MoleculeId) -> impl Iterator<Item = LineAddr> + '_ {
        let n = self.frames_per_molecule as u64;
        let base = mol.index() * self.frames_per_molecule;
        self.words[base..base + self.frames_per_molecule]
            .iter()
            .enumerate()
            .filter_map(move |(i, &w)| {
                (w & VALID != 0).then_some(LineAddr((w & TAG_MASK) * n + i as u64))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(frames: usize) -> (TagStore, MoleculeId) {
        (TagStore::new(4, frames), MoleculeId(0))
    }

    #[test]
    fn direct_mapped_fill_and_lookup() {
        let (mut t, m) = store(128);
        let line = LineAddr(5);
        assert!(!t.lookup(m, line));
        t.fill(m, line, false);
        assert!(t.lookup(m, line));
        // Same frame, different tag: conflict.
        let conflict = LineAddr(5 + 128);
        assert!(!t.lookup(m, conflict));
        t.fill(m, conflict, false);
        assert!(t.lookup(m, conflict));
        assert!(!t.lookup(m, line), "direct-mapped conflict must evict");
    }

    #[test]
    fn fill_reports_dirty_eviction() {
        let (mut t, m) = store(64);
        t.fill(m, LineAddr(0), true);
        assert!(t.fill(m, LineAddr(64), false), "dirty conflict writes back");
        assert!(!t.fill(m, LineAddr(128), false), "clean conflict does not");
    }

    #[test]
    fn refill_same_line_is_not_writeback() {
        let (mut t, m) = store(64);
        t.fill(m, LineAddr(3), true);
        assert!(!t.fill(m, LineAddr(3), false), "same tag overwrite, no WB");
    }

    #[test]
    fn asid_matching() {
        let (mut t, m) = store(16);
        assert!(!t.matches(m, Asid::new(1)), "unconfigured never matches");
        t.configure(m, Asid::new(1));
        assert!(t.matches(m, Asid::new(1)));
        assert!(!t.matches(m, Asid::new(2)));
        t.set_shared(m, true);
        assert!(t.matches(m, Asid::new(2)), "shared bit bypasses ASID");
    }

    #[test]
    fn gate_scan_preserves_tile_order_and_isolation() {
        let mut t = TagStore::new(4, 16);
        t.configure(MoleculeId(0), Asid::new(2));
        t.configure(MoleculeId(1), Asid::new(1));
        t.configure(MoleculeId(3), Asid::new(1));
        t.set_shared(MoleculeId(2), true);
        let mut out = Vec::new();
        t.gate_scan(0, 4, Asid::new(1), &mut out);
        assert_eq!(out, vec![MoleculeId(1), MoleculeId(2), MoleculeId(3)]);
        out.clear();
        // A free molecule (ASID none) never matches a none request.
        t.configure(MoleculeId(0), Asid::NONE);
        t.set_shared(MoleculeId(2), false);
        t.gate_scan(0, 4, Asid::NONE, &mut out);
        assert!(out.is_empty(), "ASID 0 must not match free molecules");
    }

    #[test]
    fn configure_invalidates_and_counts_dirty() {
        let (mut t, m) = store(16);
        t.configure(m, Asid::new(1));
        t.fill(m, LineAddr(0), true);
        t.fill(m, LineAddr(1), false);
        let flushed = t.configure(m, Asid::new(2));
        assert_eq!(flushed, 1);
        assert_eq!(t.occupancy(m), 0);
        assert!(!t.lookup(m, LineAddr(0)));
    }

    #[test]
    fn probe_touches_and_marks_dirty() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(2), false);
        assert!(t.probe(m, LineAddr(2), false));
        assert!(!t.probe(m, LineAddr(3), false));
        assert!(t.probe(m, LineAddr(2), true));
        // The dirty line now writes back on conflict.
        assert!(t.fill(m, LineAddr(2 + 16), false));
    }

    #[test]
    fn probe_miss_mutates_nothing() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(2), false);
        assert!(!t.probe(m, LineAddr(2 + 16), true), "conflict tag misses");
        assert!(t.lookup(m, LineAddr(2)), "resident line untouched");
        assert!(!t.fill(m, LineAddr(2 + 32), false), "still clean: no WB");
    }

    #[test]
    fn invalidate_single_line() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(4), true);
        assert_eq!(t.invalidate(m, LineAddr(4)), Some(true));
        assert_eq!(t.invalidate(m, LineAddr(4)), None);
    }

    #[test]
    fn resident_lines_reconstruct_addresses() {
        let (mut t, m) = store(16);
        t.fill(m, LineAddr(5), false);
        t.fill(m, LineAddr(16 + 2), true); // frame 2, tag 1
        let mut lines: Vec<u64> = t.resident_lines(m).map(|l| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![5, 18]);
    }

    #[test]
    fn molecules_are_isolated_slices() {
        let mut t = TagStore::new(3, 8);
        t.fill(MoleculeId(1), LineAddr(7), true);
        assert!(!t.lookup(MoleculeId(0), LineAddr(7)));
        assert!(!t.lookup(MoleculeId(2), LineAddr(7)));
        assert_eq!(t.occupancy(MoleculeId(0)), 0);
        assert_eq!(t.occupancy(MoleculeId(1)), 1);
        assert_eq!(t.invalidate_all(MoleculeId(2)), 0);
        assert!(
            t.lookup(MoleculeId(1), LineAddr(7)),
            "neighbour flush keeps slice"
        );
    }

    #[test]
    fn large_tags_round_trip() {
        let (mut t, m) = store(16);
        // A tag near the top of the 62-bit packed field survives the
        // round trip (valid/dirty bits do not corrupt it).
        let line = LineAddr(((1u64 << 60) - 1) * 16 + 3);
        t.fill(m, line, true);
        assert!(t.lookup(m, line));
        let lines: Vec<u64> = t.resident_lines(m).map(|l| l.0).collect();
        assert_eq!(lines, vec![line.0]);
        assert_eq!(t.invalidate(m, line), Some(true));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        TagStore::new(4, 0);
    }
}
