//! Cached Ulmo search lists.
//!
//! Ulmo's cross-tile search (§3.2) needs the set of remote tiles that
//! hold molecules of the requesting region. The seed derived it on every
//! launched search — collect the tile of every member molecule into a
//! fresh `Vec`, sort, dedup — which made each home-tile miss allocate
//! and sort. The set only changes when region *membership* or the home
//! tile changes, both of which are structural events that already bump
//! the cache's generation counter, so this module applies the PR-7
//! memoization recipe to the search list itself:
//!
//! * each [`Region`] carries a [`TileList`] — a small inline array (no
//!   heap for clusters of up to 16 tiles, the paper-scale case) of its
//!   remote search tiles in ascending tile order, stamped with the
//!   structural generation it was built under;
//! * [`MolecularCache::note_structural_change`] bumps the generation, so
//!   a stale stamp is detected lazily on the next launched search and
//!   the list rebuilt once, not per miss;
//! * with the runtime toggle off
//!   ([`set_search_cache`](MolecularCache::set_search_cache)) every
//!   launched search rebuilds — exactly the pre-cache behaviour — which
//!   the `search_list_property` suite uses to prove on-vs-off
//!   equivalence.
//!
//! Ascending-sorted insertion reproduces the reference derivation's
//! `sort_unstable` + `dedup` order exactly, so the search visits remote
//! tiles in the same order and every statistic is bit-identical.

use crate::cache::MolecularCache;
use crate::ids::TileId;
use crate::region::Region;
use molcache_trace::Asid;

/// Remote tiles kept inline before spilling to the heap: covers every
/// cluster of up to [`INLINE_TILES`]` + 1` tiles without an allocation.
pub(crate) const INLINE_TILES: usize = 15;

/// A sorted, deduplicated set of tiles with inline storage — the cached
/// form of Ulmo's search list.
///
/// Stored inline up to [`INLINE_TILES`] entries; a larger cluster spills
/// the whole list to a `Vec` once and stays there (the spill is kept
/// across [`clear`](Self::clear), so even spilled steady state does not
/// re-allocate).
#[derive(Debug, Clone)]
pub(crate) struct TileList {
    inline: [TileId; INLINE_TILES],
    /// Valid entries of `inline`; unused once spilled.
    len: usize,
    /// Overflow storage; non-empty means the whole list lives here.
    spill: Vec<TileId>,
    spilled: bool,
}

impl Default for TileList {
    fn default() -> Self {
        TileList {
            inline: [TileId(0); INLINE_TILES],
            len: 0,
            spill: Vec::new(),
            spilled: false,
        }
    }
}

impl TileList {
    /// Empties the list (spill capacity is retained).
    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
        self.spilled = false;
    }

    /// The tiles, ascending.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[TileId] {
        if self.spilled {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// Inserts `t` at its sorted position unless already present.
    pub(crate) fn insert(&mut self, t: TileId) {
        if self.spilled {
            if let Err(pos) = self.spill.binary_search(&t) {
                self.spill.insert(pos, t);
            }
            return;
        }
        let slice = &self.inline[..self.len];
        let Err(pos) = slice.binary_search(&t) else {
            return;
        };
        if self.len == INLINE_TILES {
            self.spill.extend_from_slice(slice);
            self.spill.insert(pos, t);
            self.spilled = true;
            return;
        }
        self.inline.copy_within(pos..self.len, pos + 1);
        self.inline[pos] = t;
        self.len += 1;
    }
}

impl Region {
    /// The cached Ulmo search list (remote tiles, ascending). Valid only
    /// while [`search_generation`](Self::search_generation) matches the
    /// cache's live structural generation.
    #[inline]
    pub(crate) fn search_tiles(&self) -> &[TileId] {
        self.search_tiles.as_slice()
    }

    /// The structural generation the cached list was built under
    /// (0 = never built, or built with caching disabled — never current).
    #[inline]
    pub(crate) fn search_generation(&self) -> u64 {
        self.search_generation
    }

    /// Rebuilds the cached search list from the current membership:
    /// every member molecule's tile except the home tile, deduplicated
    /// ascending, stamped with `generation`.
    pub(crate) fn rebuild_search_list(
        &mut self,
        generation: u64,
        tile_of: impl Fn(crate::ids::MoleculeId) -> TileId,
    ) {
        self.search_tiles.clear();
        let home = self.home_tile();
        for row in &self.rows {
            for &id in row {
                let t = tile_of(id);
                if t != home {
                    self.search_tiles.insert(t);
                }
            }
        }
        self.search_generation = generation;
    }
}

impl MolecularCache {
    /// Enables or disables the cached Ulmo search lists at runtime.
    ///
    /// Disabled, every launched cross-tile search rebuilds its region's
    /// list from membership — the pre-cache behaviour the
    /// `search_list_property` equivalence suite compares against. The
    /// toggle itself is not a structural event; re-enabling simply lets
    /// still-current stamps be trusted again (a list built with caching
    /// off is stamped 0 and can never read as current).
    pub fn set_search_cache(&mut self, enabled: bool) {
        self.search_cache_enabled = enabled;
    }

    /// Whether cached Ulmo search lists are in use.
    pub fn search_cache_enabled(&self) -> bool {
        self.search_cache_enabled
    }

    /// The live structural-topology generation (diagnostics; bumped on
    /// every grant/shrink/release/re-home/shared-bit/flush event).
    pub fn structure_generation(&self) -> u64 {
        self.structure_generation
    }

    /// The cached search list of `asid`'s region as (generation stamp,
    /// tiles), if the region exists (diagnostics: the property suite
    /// asserts a current stamp implies agreement with
    /// [`reference_search_list`](Self::reference_search_list) and that no
    /// stale stamp survives a structural change as current).
    pub fn cached_search_list(&self, asid: Asid) -> Option<(u64, Vec<TileId>)> {
        self.regions
            .get(&asid)
            .map(|r| (r.search_generation(), r.search_tiles().to_vec()))
    }

    /// The search list derived directly from membership (the reference
    /// the cache must agree with whenever its stamp is current).
    pub fn reference_search_list(&self, asid: Asid) -> Option<Vec<TileId>> {
        self.regions.get(&asid).map(|r| self.remote_tiles(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut l = TileList::default();
        for t in [5u32, 1, 5, 3, 1, 9, 3] {
            l.insert(TileId(t));
        }
        let got: Vec<u32> = l.as_slice().iter().map(|t| t.0).collect();
        assert_eq!(got, vec![1, 3, 5, 9]);
    }

    #[test]
    fn spills_past_inline_capacity_and_stays_sorted() {
        let mut l = TileList::default();
        // Descending insertion of twice the inline capacity.
        for t in (0..(INLINE_TILES as u32 * 2)).rev() {
            l.insert(TileId(t));
        }
        let got: Vec<u32> = l.as_slice().iter().map(|t| t.0).collect();
        let want: Vec<u32> = (0..INLINE_TILES as u32 * 2).collect();
        assert_eq!(got, want);
        // Duplicates still dedup after the spill.
        l.insert(TileId(7));
        assert_eq!(l.as_slice().len(), INLINE_TILES * 2);
        // Clear keeps it usable.
        l.clear();
        assert!(l.as_slice().is_empty());
        l.insert(TileId(2));
        assert_eq!(l.as_slice(), &[TileId(2)]);
    }
}
