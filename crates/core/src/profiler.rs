//! Sampling wall-time profiler for the staged access pipeline.
//!
//! The [`StageBreakdown`](molcache_sim::StageBreakdown) accounts for
//! *simulated* cycles; this module accounts for *host* time — where the
//! simulator itself spends its nanoseconds while servicing an access.
//! That is the number an optimization PR has to move, so `molbench` and
//! `molstat --stages` report it next to the simulated-cycle split.
//!
//! Timing every access would distort exactly what it measures (two
//! `Instant` reads per stage, ten per access), so the profiler samples:
//! only every `sample_every`-th access is timed, bounding the overhead to
//! `10 / sample_every` clock reads per access (~3 % of the access cost at
//! the default stride of 64 on a modern TSC). The sampled per-stage sums
//! are an unbiased estimate of the full split because the sampling stride
//! is independent of the access stream's hit/miss pattern.
//!
//! The whole mechanism is compiled out unless the `stage-profiler`
//! feature is enabled: without it [`MolecularCache`] carries no sampler
//! state, `enable_stage_profiler` is a no-op and
//! [`MolecularCache::stage_wall_profile`] returns `None`, so default
//! builds are bit-identical to a tree without this module.
//!
//! [`MolecularCache`]: crate::MolecularCache
//! [`MolecularCache::stage_wall_profile`]: crate::MolecularCache::stage_wall_profile

use molcache_sim::Stage;

/// Sampled wall-clock time per pipeline stage.
///
/// Produced by [`MolecularCache::stage_wall_profile`] when the cache was
/// built with the `stage-profiler` feature and sampling was enabled via
/// [`MolecularCache::enable_stage_profiler`].
///
/// [`MolecularCache::stage_wall_profile`]: crate::MolecularCache::stage_wall_profile
/// [`MolecularCache::enable_stage_profiler`]: crate::MolecularCache::enable_stage_profiler
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageWallProfile {
    /// Sampling stride: every `sample_every`-th access was timed.
    pub sample_every: u64,
    /// Number of accesses that were actually timed.
    pub sampled_accesses: u64,
    /// Wall nanoseconds spent in each stage across the sampled accesses,
    /// indexed in [`Stage::ALL`] order.
    pub stage_ns: [u64; 5],
}

impl StageWallProfile {
    /// Wall nanoseconds the sampled accesses spent in `stage`.
    pub fn stage_ns_of(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Total wall nanoseconds across all stages of the sampled accesses.
    /// Always ≤ the wall time of the whole run that produced the profile
    /// (only a subset of accesses is sampled, and sampled accesses also
    /// spend un-attributed time between stages).
    pub fn total_sampled_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// Stages with their sampled wall nanoseconds, in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL.iter().map(move |&s| (s, self.stage_ns_of(s)))
    }
}

/// The sampler state a profiler-enabled [`MolecularCache`] carries.
///
/// [`MolecularCache`]: crate::MolecularCache
#[cfg(feature = "stage-profiler")]
#[derive(Debug, Clone, Default)]
pub(crate) struct StageSampler {
    /// 0 disables sampling entirely.
    pub(crate) sample_every: u64,
    /// Accesses seen since sampling was enabled.
    pub(crate) seen: u64,
    /// The accumulated profile handed out to callers.
    pub(crate) profile: StageWallProfile,
}

#[cfg(feature = "stage-profiler")]
impl StageSampler {
    /// Decides whether the access now starting should be timed.
    pub(crate) fn begin_access(&mut self) -> bool {
        if self.sample_every == 0 {
            return false;
        }
        let take = self.seen.is_multiple_of(self.sample_every);
        self.seen += 1;
        if take {
            self.profile.sampled_accesses += 1;
        }
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_indexes_stages_in_pipeline_order() {
        let p = StageWallProfile {
            sample_every: 64,
            sampled_accesses: 3,
            stage_ns: [1, 2, 3, 4, 5],
        };
        assert_eq!(p.stage_ns_of(Stage::AsidGate), 1);
        assert_eq!(p.stage_ns_of(Stage::Fill), 5);
        assert_eq!(p.total_sampled_ns(), 15);
        let order: Vec<u64> = p.iter().map(|(_, ns)| ns).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[cfg(feature = "stage-profiler")]
    #[test]
    fn sampler_takes_every_nth_access() {
        let mut s = StageSampler {
            sample_every: 3,
            ..StageSampler::default()
        };
        let pattern: Vec<bool> = (0..7).map(|_| s.begin_access()).collect();
        assert_eq!(pattern, vec![true, false, false, true, false, false, true]);
        assert_eq!(s.profile.sampled_accesses, 3);
    }

    #[cfg(feature = "stage-profiler")]
    #[test]
    fn sampler_stride_zero_is_disabled() {
        let mut s = StageSampler::default();
        assert!(!s.begin_access());
        assert_eq!(s.profile.sampled_accesses, 0);
    }
}
