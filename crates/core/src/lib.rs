//! # molcache-core — the Molecular Cache
//!
//! Implementation of the cache architecture from *"Molecular Caches: A
//! caching structure for dynamic creation of application-specific
//! Heterogeneous cache regions"* (MICRO 2006).
//!
//! A molecular cache is built from **molecules** — small (8–32 KB)
//! direct-mapped caching units with 64-byte lines ([`molecule`]).
//! Molecules are physically grouped into **tiles** (one read/write port
//! each) and tiles into **tile clusters**, each managed by a controller
//! called **Ulmo** ([`tile`]). A subset of molecules forms an
//! application-exclusive **cache region** bound by ASID ([`region`]),
//! with:
//!
//! * ASID-gated molecule access (§3.1) — only molecules configured with
//!   the requestor's ASID proceed past address decode;
//! * configurable line-size multiples per region (§3.2) — misses fetch
//!   `k` consecutive lines into consecutive frames of one molecule;
//! * the **Random** and **Randy** replacement policies (§3.3) — Randy
//!   views the region as a 2-D sparse matrix with per-row victim
//!   selection and non-uniform associativity per row;
//! * hierarchical lookup (§3.3) — home tile first, then Ulmo searches the
//!   cluster tiles contributing molecules to the region;
//! * goal-driven dynamic resizing (§3.4, Algorithm 1) — partitions grow
//!   and shrink to meet per-application miss-rate goals, with constant,
//!   global-adaptive or per-application-adaptive resize triggers.
//!
//! The top-level type is [`MolecularCache`], which implements
//! [`molcache_sim::CacheModel`] so it can be driven by the same harness
//! as the traditional caches it is compared against.
//!
//! ## Example
//!
//! ```
//! use molcache_core::{MolecularCache, MolecularConfig};
//! use molcache_sim::{CacheModel, Request};
//! use molcache_trace::{AccessKind, Address, Asid};
//!
//! // 1 MB: 1 cluster x 4 tiles x 32 molecules x 8 KB.
//! let config = MolecularConfig::builder()
//!     .clusters(1)
//!     .tiles_per_cluster(4)
//!     .tile_molecules(32)
//!     .miss_rate_goal(0.10)
//!     .build()?;
//! let mut cache = MolecularCache::new(config);
//! let req = Request {
//!     asid: Asid::new(1),
//!     addr: Address::new(0x4000),
//!     kind: AccessKind::Read,
//! };
//! assert!(!cache.access(req).hit); // cold miss allocates a region
//! assert!(cache.access(req).hit);
//! # Ok::<(), molcache_core::CoreError>(())
//! ```

pub mod cache;
pub mod config;
pub mod error;
pub mod ids;
mod lifecycle;
pub mod molecule;
mod observe;
pub mod pipeline;
pub mod policy;
pub mod profiler;
pub mod region;
pub mod region_table;
pub mod resize;
mod search_list;
pub mod stats;
pub mod tags;
pub mod tile;

pub use cache::MolecularCache;
pub use config::{InitialAllocation, MolecularConfig, MolecularConfigBuilder, RegionPolicy};
pub use error::CoreError;
pub use pipeline::{Lfsr16, MemoStats, VictimPolicy};
pub use policy::ResizePolicy;
pub use profiler::StageWallProfile;
pub use resize::ResizeTrigger;
