//! The molecular cache: hierarchical lookup, miss handling, resizing.

use crate::config::{InitialAllocation, MolecularConfig, VictimRng};
use crate::ids::{ClusterId, MoleculeId, TileId};
use crate::molecule::Molecule;
use crate::region::Region;
use crate::region_table::RegionTable;
use crate::resize::{algorithm1, Decision, ResizeController, ResizeEvent};
use crate::stats::RegionSnapshot;
use crate::tile::{Tile, TileCluster};
use molcache_sim::{AccessOutcome, Activity, BatchOutcome, CacheModel, CacheStats, Request};
use molcache_telemetry::{EpochActivity, EpochSample, Event, ResizeKind, ResizeRecord, SinkHandle};
use molcache_trace::rng::Rng;
use molcache_trace::{Asid, LineAddr};

/// The molecular cache (Figure 1/2 of the paper).
///
/// Create one from a [`MolecularConfig`]; drive it through the
/// [`CacheModel`] trait. Regions are created on demand: the first access
/// from a new ASID assigns the application to a cluster and home tile and
/// grants its initial molecule allocation ("Ground Zero", §3.4).
/// A 16-bit Galois LFSR (taps 16, 14, 13, 11 — maximal length), the
/// kind of generator a cache controller implements in a handful of
/// flip-flops. Its draws are cheap but correlated: consecutive values
/// differ by one shift, which is precisely the low-entropy behaviour the
/// paper blames for Random replacement's load imbalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR from a seed (zero is mapped to a non-zero state).
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Advances one step and returns the 16-bit state.
    pub fn next_u16(&mut self) -> u16 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= 0xB400; // taps 16,14,13,11
        }
        self.state
    }
}

#[derive(Debug, Clone)]
pub struct MolecularCache {
    cfg: MolecularConfig,
    molecules: Vec<Molecule>,
    tiles: Vec<Tile>,
    clusters: Vec<TileCluster>,
    regions: RegionTable,
    resizer: ResizeController,
    rng: Rng,
    lfsr: Lfsr16,
    stats: CacheStats,
    activity: Activity,
    next_cluster_rr: usize,
    next_tile_rr: Vec<usize>,
    resize_rounds: u64,
    resize_partitions_touched: u64,
    failed_allocations: u64,
    sink: SinkHandle,
    epoch_index: u64,
    epoch_stats_base: CacheStats,
    epoch_activity_base: Activity,
}

impl MolecularCache {
    /// Builds the cache's physical structure from a configuration.
    pub fn new(cfg: MolecularConfig) -> Self {
        let frames = cfg.frames_per_molecule();
        let mut molecules = Vec::with_capacity(cfg.total_molecules());
        let mut tiles = Vec::with_capacity(cfg.total_tiles());
        let mut clusters = Vec::with_capacity(cfg.clusters());
        let mut mol_id = 0u32;
        let mut tile_id = 0u32;
        for c in 0..cfg.clusters() {
            let cluster = ClusterId(c as u32);
            let mut cluster_tiles = Vec::with_capacity(cfg.tiles_per_cluster());
            for _ in 0..cfg.tiles_per_cluster() {
                let tid = TileId(tile_id);
                let mut ids = Vec::with_capacity(cfg.tile_molecules());
                for _ in 0..cfg.tile_molecules() {
                    let id = MoleculeId(mol_id);
                    molecules.push(Molecule::new(id, tid, frames));
                    ids.push(id);
                    mol_id += 1;
                }
                tiles.push(Tile::new(tid, cluster, ids));
                cluster_tiles.push(tid);
                tile_id += 1;
            }
            clusters.push(TileCluster::new(cluster, cluster_tiles));
        }
        let resizer = ResizeController::new(cfg.trigger());
        let rng = Rng::seeded(cfg.seed);
        let lfsr = Lfsr16::new(cfg.seed as u16);
        let clusters_count = cfg.clusters();
        MolecularCache {
            cfg,
            molecules,
            tiles,
            clusters,
            regions: RegionTable::new(),
            resizer,
            rng,
            lfsr,
            stats: CacheStats::new(),
            activity: Activity::default(),
            next_cluster_rr: 0,
            next_tile_rr: vec![0; clusters_count],
            resize_rounds: 0,
            resize_partitions_touched: 0,
            failed_allocations: 0,
            sink: SinkHandle::null(),
            epoch_index: 0,
            epoch_stats_base: CacheStats::new(),
            epoch_activity_base: Activity::default(),
        }
    }

    /// Attaches a telemetry sink. The cache publishes per-partition epoch
    /// samples, cache-wide epoch activity and resize events into it; with
    /// the default [`SinkHandle::null`] every publish site short-circuits
    /// on a null-check and the cache behaves bit-identically to an
    /// unobserved one.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Builder-style [`set_sink`](Self::set_sink).
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.set_sink(sink);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &MolecularConfig {
        &self.cfg
    }

    /// Total free (unassigned) molecules.
    pub fn free_molecules(&self) -> usize {
        self.tiles.iter().map(Tile::free_count).sum()
    }

    /// Number of resize rounds executed so far.
    pub fn resize_rounds(&self) -> u64 {
        self.resize_rounds
    }

    /// Cycles per application the paper budgets for one `resize()`
    /// computation on a host core (§3.4, "Who does the computation?").
    pub const RESIZE_CYCLES_PER_APP: u64 = 1_500;

    /// Estimated cycles an OS-level resize daemon has spent so far
    /// (§3.4: "The resize() function takes about 1500 cycles per
    /// application", scheduled periodically on one of the processors).
    /// One round touches every partition under the constant and
    /// global-adaptive triggers and a single partition under the per-app
    /// trigger; this estimate charges the per-partition cost actually
    /// incurred.
    pub fn estimated_resize_overhead_cycles(&self) -> u64 {
        self.resize_partitions_touched * Self::RESIZE_CYCLES_PER_APP
    }

    /// Number of growth requests that could not be (fully) satisfied for
    /// lack of free molecules — the "no free molecules, no resizing"
    /// phases the paper observes below the threshold cache size.
    pub fn failed_allocations(&self) -> u64 {
        self.failed_allocations
    }

    /// Snapshot of one application's region.
    pub fn region_snapshot(&self, asid: Asid) -> Option<RegionSnapshot> {
        self.regions.get(&asid).map(|r| self.snapshot_of(r))
    }

    /// Snapshots of all regions, in ASID order.
    pub fn snapshots(&self) -> Vec<RegionSnapshot> {
        self.regions.values().map(|r| self.snapshot_of(r)).collect()
    }

    /// The replacement-view row sizes of one region (diagnostics: the
    /// non-uniform way sizes of Figure 4).
    pub fn region_row_sizes(&self, asid: Asid) -> Option<Vec<usize>> {
        self.regions
            .get(&asid)
            .map(|r| (0..r.num_rows()).map(|i| r.row(i).len()).collect())
    }

    fn snapshot_of(&self, r: &Region) -> RegionSnapshot {
        RegionSnapshot {
            asid: r.asid(),
            molecules: r.size(),
            rows: r.num_rows(),
            avg_molecules: r.average_allocation(),
            accesses: r.lifetime_accesses(),
            hits: r.lifetime_hits(),
            window_miss_rate: r.window_miss_rate(),
            last_window_miss_rate: r.last_miss_rate(),
            goal: r.goal(),
            hits_per_molecule: r.hits_per_molecule(),
        }
    }

    /// Checks the structural invariant that no line is resident in more
    /// than one molecule of the same region (diagnostics / property
    /// tests). Returns the ASID of the first violating region, if any.
    pub fn find_duplicate_line(&self) -> Option<Asid> {
        for (asid, region) in &self.regions {
            let mut seen = std::collections::HashSet::new();
            for id in region.molecules() {
                for line in self.molecules[id.index()].resident_lines() {
                    if !seen.insert(line) {
                        return Some(*asid);
                    }
                }
            }
        }
        None
    }

    /// Destroys an application's region (process termination): every
    /// member molecule is flushed (dirty lines counted as writebacks) and
    /// returned to its tile's free pool. Returns the number of molecules
    /// released, or `None` if the application had no region.
    pub fn release_region(&mut self, asid: Asid) -> Option<usize> {
        let mut region = self.regions.remove(&asid)?;
        let ids = region.drain_molecules();
        let released = ids.len();
        for id in ids {
            let flushed = self.molecules[id.index()].configure(Asid::NONE);
            self.activity.writebacks += flushed;
            let tile = self.molecules[id.index()].tile();
            self.tiles[tile.index()].release(id);
        }
        Some(released)
    }

    /// Re-homes an application to another tile of its cluster — the
    /// paper's context-switch-time processor-tile remapping. Lookup now
    /// starts at the new tile; existing molecules stay where they are and
    /// are reached via Ulmo until resizing migrates the region.
    ///
    /// Returns `false` (and does nothing) if the application has no
    /// region or `tile_index` is not a tile of the region's cluster.
    pub fn rehome_app(&mut self, asid: Asid, tile_index: usize) -> bool {
        let Some(region) = self.regions.get_mut(&asid) else {
            return false;
        };
        if tile_index >= self.tiles.len() {
            return false;
        }
        let tid = self.tiles[tile_index].id();
        if !self.clusters[region.cluster().index()]
            .tiles()
            .contains(&tid)
        {
            return false;
        }
        region.set_home_tile(tid);
        true
    }

    /// Marks up to `n` free molecules of tile `tile_index` as shared
    /// (§3.1: the shared bit bypasses the ASID comparison, making the
    /// molecule visible to every application on the tile). Returns how
    /// many were marked.
    pub fn make_shared(&mut self, tile_index: usize, n: usize) -> usize {
        let mut granted = 0;
        for _ in 0..n {
            let Some(id) = self.tiles[tile_index].take_free() else {
                break;
            };
            self.molecules[id.index()].set_shared(true);
            granted += 1;
        }
        granted
    }

    // ---- region creation -------------------------------------------------

    fn ensure_region(&mut self, asid: Asid) {
        if self.regions.contains_key(&asid) {
            return;
        }
        let cluster_idx = self.cfg.app_cluster(asid).unwrap_or_else(|| {
            let c = self.next_cluster_rr % self.cfg.clusters();
            self.next_cluster_rr += 1;
            c
        });
        let tile_pos = self.next_tile_rr[cluster_idx] % self.cfg.tiles_per_cluster();
        self.next_tile_rr[cluster_idx] += 1;
        let home = self.clusters[cluster_idx].tiles()[tile_pos];

        let mut region = Region::new(
            asid,
            home,
            ClusterId(cluster_idx as u32),
            self.cfg.policy(),
            self.cfg.line_factor(asid),
            self.cfg.goal(asid),
            self.cfg.row_max(),
        );
        let want = match self.cfg.initial_allocation {
            InitialAllocation::HalfTile => self.cfg.tile_molecules() / 2,
            InitialAllocation::Molecules(n) => n,
        }
        .max(1);
        let granted = self.grant_molecules(&mut region, want);
        region.note_allocation(granted.max(1));
        self.resizer.register_app(asid);
        self.regions.insert(asid, region);
    }

    /// Takes up to `want` free molecules (home tile first, then the other
    /// tiles of the region's cluster), configures them into the region.
    fn grant_molecules(&mut self, region: &mut Region, want: usize) -> usize {
        let mut granted = 0;
        let home = region.home_tile();
        let cluster_tiles: Vec<TileId> = self.clusters[region.cluster().index()].tiles().to_vec();
        let order = std::iter::once(home).chain(cluster_tiles.into_iter().filter(|t| *t != home));
        for tid in order {
            while granted < want {
                let Some(id) = self.tiles[tid.index()].take_free() else {
                    break;
                };
                let flushed = self.molecules[id.index()].configure(region.asid());
                self.activity.writebacks += flushed;
                region.add_molecule(id);
                granted += 1;
            }
            if granted >= want {
                break;
            }
        }
        if granted < want {
            self.failed_allocations += 1;
        }
        granted
    }

    // ---- lookup ----------------------------------------------------------

    /// Probes one tile's ASID-matching molecules for a line. Updates
    /// activity counters; on a hit also updates the molecule's counters.
    fn search_tile(
        &mut self,
        tile: TileId,
        asid: Asid,
        line: LineAddr,
        is_write: bool,
    ) -> Option<MoleculeId> {
        // Every molecule of the tile performs the ASID comparison stage.
        let capacity = self.tiles[tile.index()].capacity();
        self.activity.asid_compares += capacity as u64;
        let mut found = None;
        for k in 0..capacity {
            let id = self.tiles[tile.index()].molecules()[k];
            if !self.molecules[id.index()].matches(asid) {
                continue;
            }
            self.activity.ways_probed += 1;
            if found.is_some() {
                // Remaining matching molecules still burn probe energy in
                // the hardware's parallel lookup, but cannot also hit: a
                // line is resident in at most one molecule.
                continue;
            }
            let m = &mut self.molecules[id.index()];
            let hit = if is_write {
                m.mark_dirty(line)
            } else {
                m.touch(line)
            };
            if hit {
                found = Some(id);
            }
        }
        found
    }

    /// Remote tiles of the cluster holding molecules of this region
    /// (Ulmo's search list), excluding the home tile.
    fn remote_tiles(&self, region: &Region) -> Vec<TileId> {
        let home = region.home_tile();
        let mut tiles: Vec<TileId> = region
            .molecules()
            .map(|id| self.molecules[id.index()].tile())
            .filter(|t| *t != home)
            .collect();
        tiles.sort_unstable();
        tiles.dedup();
        tiles
    }

    // ---- miss handling ---------------------------------------------------

    /// Fills the `line_factor`-line block containing `line` into the
    /// victim molecule (§3.2: consecutive lines land in consecutive
    /// frames of the same molecule). Returns whether any writeback
    /// occurred.
    fn fill_block(
        &mut self,
        region_asid: Asid,
        victim: MoleculeId,
        line: LineAddr,
        is_write: bool,
    ) -> bool {
        let k = self.regions[&region_asid].line_factor() as u64;
        let block_start = LineAddr(line.0 - line.0 % k);
        let member_ids: Vec<MoleculeId> = self.regions[&region_asid].molecules().collect();
        let mut writeback = false;
        for j in 0..k {
            let l = LineAddr(block_start.0 + j);
            // Invalidate stale copies elsewhere in the region so that a
            // block fill never duplicates a line.
            for id in &member_ids {
                if *id != victim {
                    if let Some(dirty) = self.molecules[id.index()].invalidate(l) {
                        writeback |= dirty;
                        if dirty {
                            self.activity.writebacks += 1;
                        }
                    }
                }
            }
            let dirty_fill = is_write && l == line;
            let evicted_dirty = self.molecules[victim.index()].fill(l, dirty_fill);
            if evicted_dirty {
                self.activity.writebacks += 1;
            }
            writeback |= evicted_dirty;
            self.activity.line_fills += 1;
        }
        writeback
    }

    // ---- telemetry ---------------------------------------------------------

    /// Fraction of a region's line frames holding valid lines.
    fn occupancy_of(&self, region: &Region) -> f64 {
        let frames = region.size() * self.cfg.frames_per_molecule();
        if frames == 0 {
            return 0.0;
        }
        let valid: usize = region
            .molecules()
            .map(|id| self.molecules[id.index()].occupancy())
            .sum();
        valid as f64 / frames as f64
    }

    /// Publishes per-partition samples and cache-wide activity when the
    /// current access closes an epoch. Telemetry only reads cache state,
    /// so results stay bit-identical whether or not a sink is attached.
    fn maybe_close_epoch(&mut self) {
        if !self.sink.is_enabled() || self.activity.accesses == 0 {
            return;
        }
        if !self.activity.accesses.is_multiple_of(self.sink.epoch_length()) {
            return;
        }
        let epoch = self.epoch_index;
        let delta = self.stats.since(&self.epoch_stats_base);
        let samples: Vec<EpochSample> = self
            .regions
            .iter()
            .map(|(asid, region)| {
                let app = delta.app(*asid);
                EpochSample {
                    epoch,
                    asid: *asid,
                    accesses: app.accesses,
                    misses: app.misses,
                    molecules: region.size(),
                    rows: region.num_rows(),
                    occupancy: self.occupancy_of(region),
                    goal: region.goal(),
                }
            })
            .collect();
        let base = self.epoch_activity_base;
        let activity = EpochActivity {
            epoch,
            accesses: self.activity.accesses - base.accesses,
            ways_probed: self.activity.ways_probed - base.ways_probed,
            line_fills: self.activity.line_fills - base.line_fills,
            writebacks: self.activity.writebacks - base.writebacks,
            asid_compares: self.activity.asid_compares - base.asid_compares,
            ulmo_searches: self.activity.ulmo_searches - base.ulmo_searches,
            free_molecules: self.free_molecules(),
        };
        for sample in &samples {
            self.sink.emit(Event::Partition(sample));
        }
        self.sink.emit(Event::Epoch(&activity));
        self.epoch_index += 1;
        self.epoch_stats_base = self.stats.clone();
        self.epoch_activity_base = self.activity;
    }

    /// Publishes one applied resize decision.
    #[allow(clippy::too_many_arguments)]
    fn publish_resize(
        &self,
        asid: Asid,
        kind: ResizeKind,
        requested: usize,
        applied: usize,
        before: usize,
        window_miss_rate: f64,
        goal: f64,
    ) {
        if !self.sink.is_enabled() {
            return;
        }
        let record = ResizeRecord {
            at_access: self.activity.accesses,
            trigger: self.cfg.trigger().name().to_string(),
            asid,
            kind,
            requested,
            applied,
            before,
            after: self.regions[&asid].size(),
            window_miss_rate,
            goal,
        };
        self.sink.emit(Event::Resize(&record));
    }

    // ---- resizing (Algorithm 1) -------------------------------------------

    fn resize_partition(&mut self, asid: Asid) -> (u64, u64) {
        let Some(region) = self.regions.get(&asid) else {
            return (0, 0);
        };
        let window = (region.window_accesses(), {
            let r = self.regions.get(&asid).expect("checked");
            (r.window_miss_rate() * r.window_accesses() as f64).round() as u64
        });
        if region.window_accesses() == 0 {
            // Idle partition: nothing to learn this window.
            return window;
        }
        let mr = region.window_miss_rate();
        let goal = region.goal();
        let last = region.last_miss_rate();
        let current = region.size();
        let last_alloc = region.last_allocation();
        let decision = algorithm1(
            mr,
            goal,
            last,
            current,
            last_alloc,
            self.cfg.max_allocation(),
        );
        match decision {
            Decision::Grow(n) => {
                let mut region = self.regions.remove(&asid).expect("present");
                let granted = self.grant_molecules(&mut region, n);
                region.note_allocation(granted);
                self.regions.insert(asid, region);
                self.publish_resize(asid, ResizeKind::Grow, n, granted, current, mr, goal);
            }
            Decision::Shrink(n) => {
                let mut region = self.regions.remove(&asid).expect("present");
                let mut removed = 0;
                for _ in 0..n {
                    let Some(id) =
                        region.remove_coldest(|m| self.molecules[m.index()].miss_count())
                    else {
                        break;
                    };
                    let flushed = self.molecules[id.index()].configure(Asid::NONE);
                    self.activity.writebacks += flushed;
                    let tile = self.molecules[id.index()].tile();
                    self.tiles[tile.index()].release(id);
                    removed += 1;
                }
                self.regions.insert(asid, region);
                self.publish_resize(asid, ResizeKind::Shrink, n, removed, current, mr, goal);
            }
            Decision::Hold => {}
        }
        // Close the window: store the observed miss rate, clear counters.
        let member_ids: Vec<MoleculeId> = self.regions[&asid].molecules().collect();
        for id in member_ids {
            self.molecules[id.index()].reset_window_counters();
        }
        self.regions.get_mut(&asid).expect("present").close_window();
        window
    }

    fn resize_all(&mut self) {
        self.resize_rounds += 1;
        self.resize_partitions_touched += self.regions.len() as u64;
        let asids: Vec<Asid> = self.regions.keys().copied().collect();
        let mut total_accesses = 0u64;
        let mut total_misses = 0u64;
        let mut weighted_goal = 0.0;
        for asid in &asids {
            let goal = self.regions[asid].goal();
            let (acc, miss) = self.resize_partition(*asid);
            total_accesses += acc;
            total_misses += miss;
            weighted_goal += goal * acc as f64;
        }
        if total_accesses > 0 {
            let overall_mr = total_misses as f64 / total_accesses as f64;
            let goal = weighted_goal / total_accesses as f64;
            self.resizer.adapt_global(overall_mr, goal);
        }
    }

    fn resize_one(&mut self, asid: Asid) {
        self.resize_rounds += 1;
        self.resize_partitions_touched += 1;
        let Some(region) = self.regions.get(&asid) else {
            return;
        };
        let goal = region.goal();
        let mr = region.window_miss_rate();
        let had_window = region.window_accesses() > 0;
        self.resize_partition(asid);
        if had_window {
            self.resizer.adapt_app(asid, mr, goal);
        }
    }
}

impl CacheModel for MolecularCache {
    fn access(&mut self, req: Request) -> AccessOutcome {
        self.ensure_region(req.asid);
        self.activity.accesses += 1;
        let outcome = self.service(req);
        match self.resizer.on_access(req.asid) {
            ResizeEvent::None => {}
            ResizeEvent::AllPartitions => self.resize_all(),
            ResizeEvent::Partition(asid) => self.resize_one(asid),
        }
        self.maybe_close_epoch();
        outcome
    }

    /// Batched entry point: one ASID-gate dispatch (region-presence check
    /// and on-demand creation) per run of same-ASID requests instead of
    /// one per request.
    ///
    /// Bit-identical to the per-request loop: `ensure_region` is
    /// idempotent, so hoisting it across a same-ASID run changes nothing,
    /// and the per-access resize trigger still fires between every two
    /// requests exactly as in [`access`](CacheModel::access). Region
    /// creation order therefore interleaves with resize events precisely
    /// as the serial loop would have it.
    fn access_batch(&mut self, reqs: &[Request]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        let mut i = 0;
        while i < reqs.len() {
            let asid = reqs[i].asid;
            self.ensure_region(asid);
            while i < reqs.len() && reqs[i].asid == asid {
                self.activity.accesses += 1;
                out.note(self.service(reqs[i]));
                match self.resizer.on_access(asid) {
                    ResizeEvent::None => {}
                    ResizeEvent::AllPartitions => self.resize_all(),
                    ResizeEvent::Partition(a) => self.resize_one(a),
                }
                self.maybe_close_epoch();
                i += 1;
            }
        }
        out
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn activity(&self) -> Activity {
        self.activity
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.activity = Activity::default();
        // Epoch time restarts with the counters it is derived from.
        self.epoch_index = 0;
        self.epoch_stats_base = CacheStats::new();
        self.epoch_activity_base = Activity::default();
    }

    fn describe(&self) -> String {
        let total_mb = self.cfg.total_bytes() as f64 / (1024.0 * 1024.0);
        format!(
            "{}MB molecular ({}, {} clusters x {} tiles x {}KB, {}KB molecules)",
            total_mb,
            self.cfg.policy(),
            self.cfg.clusters(),
            self.cfg.tiles_per_cluster(),
            self.cfg.tile_bytes() >> 10,
            self.cfg.molecule_size() >> 10,
        )
    }
}

impl MolecularCache {
    fn service(&mut self, req: Request) -> AccessOutcome {
        let asid = req.asid;
        let line = req.addr.line(self.cfg.line_size());
        let is_write = req.kind.is_write();
        let home = self.regions[&asid].home_tile();
        let base_latency = self.cfg.asid_stage_cycles + self.cfg.hit_latency;

        // Home-tile search.
        if let Some(hit_mol) = self.search_tile(home, asid, line, is_write) {
            let clock = self.activity.accesses;
            let region = self.regions.get_mut(&asid).expect("region");
            region.note_molecule_use(hit_mol, clock);
            region.record_access(false);
            self.stats.record(asid, true, false, base_latency);
            return AccessOutcome::hit(base_latency);
        }

        // Ulmo: remote tiles of the cluster holding region molecules.
        let remote = {
            let region = &self.regions[&asid];
            self.remote_tiles(region)
        };
        let mut latency = base_latency;
        if !remote.is_empty() {
            self.activity.ulmo_searches += 1;
            latency += self.cfg.ulmo_penalty;
            for tile in remote {
                if let Some(hit_mol) = self.search_tile(tile, asid, line, is_write) {
                    let clock = self.activity.accesses;
                    let region = self.regions.get_mut(&asid).expect("region");
                    region.note_molecule_use(hit_mol, clock);
                    region.record_access(false);
                    self.stats.record(asid, true, false, latency);
                    return AccessOutcome::hit(latency);
                }
            }
        }

        // Miss. Choose a victim molecule and fill the block.
        latency += self.cfg.miss_penalty;
        self.regions
            .get_mut(&asid)
            .expect("region")
            .record_access(true);
        let victim = {
            let draw = match self.cfg.victim_rng() {
                VictimRng::Lfsr16 => self.lfsr.next_u16() as u64,
                VictimRng::HighQuality => self.rng.next_u64(),
            };
            let molecule_size = self.cfg.molecule_size();
            let region = self.regions.get_mut(&asid).expect("region");
            region.select_victim(req.addr, molecule_size, draw)
        };
        let victim = victim.or_else(|| {
            // Region owns no molecules (cache fully committed elsewhere):
            // fall back to the home tile's shared molecules, which accept
            // fills from every application (§3.1's shared bit).
            let tile = &self.tiles[home.index()];
            let shared: Vec<MoleculeId> = tile
                .molecules()
                .iter()
                .copied()
                .filter(|id| self.molecules[id.index()].is_shared())
                .collect();
            if shared.is_empty() {
                None
            } else {
                Some(shared[(self.lfsr.next_u16() as usize) % shared.len()])
            }
        });
        let Some(victim) = victim else {
            // No region molecules and no shared fallback: the request
            // bypasses the cache entirely.
            self.stats.record(asid, false, false, latency);
            return AccessOutcome {
                hit: false,
                latency,
                writeback: false,
                lines_fetched: 0,
            };
        };
        self.molecules[victim.index()].record_replacement_miss();
        let writeback = self.fill_block(asid, victim, line, is_write);
        self.stats.record(asid, false, writeback, latency);
        AccessOutcome {
            hit: false,
            latency,
            writeback,
            lines_fetched: self.regions[&asid].line_factor(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MolecularConfig;
    use crate::resize::ResizeTrigger;
    use molcache_trace::{AccessKind, Address};

    fn small_config() -> MolecularConfig {
        // 1 cluster x 2 tiles x 8 molecules x 1KB (16 frames of 64B).
        MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap()
    }

    fn read(asid: u16, addr: u64) -> Request {
        Request {
            asid: Asid::new(asid),
            addr: Address::new(addr),
            kind: AccessKind::Read,
        }
    }

    fn write(asid: u16, addr: u64) -> Request {
        Request {
            asid: Asid::new(asid),
            addr: Address::new(addr),
            kind: AccessKind::Write,
        }
    }

    #[test]
    fn first_access_creates_region_with_half_tile() {
        let mut c = MolecularCache::new(small_config());
        c.access(read(1, 0));
        let snap = c.region_snapshot(Asid::new(1)).unwrap();
        assert_eq!(snap.molecules, 4, "half of an 8-molecule tile");
        assert_eq!(c.free_molecules(), 12);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = MolecularCache::new(small_config());
        assert!(!c.access(read(1, 0x100)).hit);
        assert!(c.access(read(1, 0x100)).hit);
        assert!(c.access(read(1, 0x100 + 32)).hit, "same 64B line");
    }

    #[test]
    fn asid_isolation() {
        let mut c = MolecularCache::new(small_config());
        c.access(read(1, 0x1000));
        // A different app accessing the same physical address misses:
        // app 2's region does not include app 1's molecules.
        assert!(!c.access(read(2, 0x1000)).hit);
        // And app 1 still hits: app 2 did not disturb its region.
        assert!(c.access(read(1, 0x1000)).hit);
    }

    #[test]
    fn apps_assigned_round_robin_to_tiles() {
        let mut c = MolecularCache::new(small_config());
        c.access(read(1, 0));
        c.access(read(2, 0));
        let home1 = c.regions[&Asid::new(1)].home_tile();
        let home2 = c.regions[&Asid::new(2)].home_tile();
        assert_ne!(home1, home2);
    }

    #[test]
    fn write_miss_then_eviction_writes_back() {
        let cfg = MolecularConfig::builder()
            .molecule_size(128) // 2 frames per molecule
            .tile_molecules(2)
            .tiles_per_cluster(1)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(1))
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // One molecule, 2 frames. Write line 0, then conflict with line 2
        // (same frame 0 of the only molecule).
        assert!(!c.access(write(1, 0)).hit);
        let out = c.access(read(1, 2 * 64));
        assert!(!out.hit);
        assert!(out.writeback, "dirty line 0 must be written back");
    }

    #[test]
    fn region_grows_when_missing() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(1))
            .trigger(ResizeTrigger::Constant { period: 200 })
            .miss_rate_goal(0.05)
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // Stream far more lines than one molecule holds: miss rate ~100%
        // -> Algorithm 1's >50% branch grows the partition each round.
        for i in 0..2_000u64 {
            c.access(read(1, (i % 256) * 64));
        }
        let snap = c.region_snapshot(Asid::new(1)).unwrap();
        assert!(snap.molecules > 1, "partition must have grown");
        assert!(c.resize_rounds() > 0);
    }

    #[test]
    fn region_shrinks_when_idle_hot() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(8))
            .trigger(ResizeTrigger::Constant { period: 500 })
            .miss_rate_goal(0.20)
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // Two hot lines, hit rate ~100% -> far below goal -> withdraw.
        for i in 0..5_000u64 {
            c.access(read(1, (i % 2) * 64));
        }
        let snap = c.region_snapshot(Asid::new(1)).unwrap();
        assert!(snap.molecules < 8, "partition must have shrunk");
        assert!(snap.molecules >= 1, "never below one molecule");
    }

    #[test]
    fn freed_molecules_are_reusable_by_other_apps() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(4)
            .tiles_per_cluster(1)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(4))
            .trigger(ResizeTrigger::Constant { period: 200 })
            .miss_rate_goal(0.2)
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // App 1 grabs all molecules, then goes idle-hot so it shrinks.
        for i in 0..3_000u64 {
            c.access(read(1, (i % 2) * 64));
        }
        assert!(c.free_molecules() > 0, "app 1 must have released some");
        // App 2 can now build a region.
        c.access(read(2, 1 << 20));
        let snap2 = c.region_snapshot(Asid::new(2)).unwrap();
        assert!(snap2.molecules >= 1);
    }

    #[test]
    fn ulmo_searches_remote_tiles() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(2)
            .tiles_per_cluster(2)
            .clusters(1)
            // Want 3 molecules: 2 from home tile + 1 remote.
            .initial_allocation(InitialAllocation::Molecules(2))
            .max_allocation(4)
            .trigger(ResizeTrigger::Constant { period: 100 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // Thrash so the region grows beyond its home tile.
        for i in 0..1_000u64 {
            c.access(read(1, (i % 64) * 64));
        }
        let region = &c.regions[&Asid::new(1)];
        let remote = c.remote_tiles(region);
        assert!(!remote.is_empty(), "region should span tiles");
        assert!(c.activity().ulmo_searches > 0);
    }

    #[test]
    fn shared_molecules_visible_to_all() {
        let mut c = MolecularCache::new(small_config());
        assert_eq!(c.make_shared(0, 2), 2);
        // Shared molecules pass the ASID stage for every app; they are
        // probed (ways_probed counts them) even before a region exists.
        c.access(read(1, 0));
        assert!(c.activity().ways_probed > 0);
    }

    #[test]
    fn shared_molecules_serve_regionless_apps() {
        // One tile, one molecule, marked shared before any region exists.
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(1)
            .tiles_per_cluster(1)
            .clusters(1)
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        assert_eq!(c.make_shared(0, 1), 1);
        // The app's region gets zero molecules (pool is empty), but the
        // shared molecule accepts its fills and serves its hits.
        assert!(!c.access(read(1, 0)).hit);
        assert!(c.access(read(1, 0)).hit, "shared molecule served the hit");
        // A second application shares the same molecule.
        assert!(!c.access(read(2, 1 << 20)).hit);
        assert!(c.access(read(2, 1 << 20)).hit);
    }

    #[test]
    fn no_duplicate_lines_across_region() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .app_line_factor(Asid::new(1), 4)
            .trigger(ResizeTrigger::Constant { period: 300 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        for i in 0..5_000u64 {
            c.access(read(1, (i % 300) * 64));
            if i % 512 == 0 {
                assert_eq!(c.find_duplicate_line(), None, "at access {i}");
            }
        }
        assert_eq!(c.find_duplicate_line(), None);
    }

    #[test]
    fn bypass_when_no_molecules_available() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(1)
            .tiles_per_cluster(1)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(1))
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        c.access(read(1, 0)); // app 1 takes the only molecule
        let out = c.access(read(2, 1 << 20)); // app 2 gets nothing
        assert!(!out.hit);
        assert_eq!(out.lines_fetched, 0, "bypass fetches nothing");
        assert!(c.failed_allocations() > 0);
        // App 2's accesses all miss but do not crash or steal.
        assert!(!c.access(read(2, 1 << 20)).hit);
        assert!(c.access(read(1, 0)).hit, "app 1 undisturbed");
    }

    #[test]
    fn line_factor_prefetches_block() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(1)
            .clusters(1)
            .app_line_factor(Asid::new(1), 4)
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        let out = c.access(read(1, 0));
        assert_eq!(out.lines_fetched, 4);
        // Neighbours in the 4-line block now hit.
        assert!(c.access(read(1, 64)).hit);
        assert!(c.access(read(1, 128)).hit);
        assert!(c.access(read(1, 192)).hit);
        // Next block misses.
        assert!(!c.access(read(1, 256)).hit);
    }

    #[test]
    fn activity_counts_asid_compares() {
        let mut c = MolecularCache::new(small_config());
        c.access(read(1, 0));
        // Home tile has 8 molecules: at least 8 ASID compares happened.
        assert!(c.activity().asid_compares >= 8);
        let probes = c.activity().ways_probed;
        assert!(probes >= 4, "the 4 region molecules are probed");
    }

    #[test]
    fn stats_reset_preserves_contents() {
        let mut c = MolecularCache::new(small_config());
        c.access(read(1, 0));
        c.reset_stats();
        assert_eq!(c.stats().global.accesses, 0);
        assert!(c.access(read(1, 0)).hit, "contents survive reset");
    }

    #[test]
    fn describe_mentions_policy_and_geometry() {
        let c = MolecularCache::new(small_config());
        let d = c.describe();
        assert!(d.contains("Randy"), "{d}");
        assert!(d.contains("molecular"), "{d}");
    }

    #[test]
    fn per_app_adaptive_trigger_resizes_only_that_app() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .trigger(ResizeTrigger::PerAppAdaptive {
                initial_period: 100,
            })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        for i in 0..500u64 {
            c.access(read(1, (i % 128) * 64));
        }
        assert!(c.resize_rounds() > 0);
    }

    #[test]
    fn lfsr_is_deterministic_and_full_period_like() {
        let mut a = Lfsr16::new(0xACE1);
        let mut b = Lfsr16::new(0xACE1);
        let mut seen_distinct = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let v = a.next_u16();
            assert_eq!(v, b.next_u16());
            seen_distinct.insert(v);
        }
        // Maximal-length 16-bit LFSR: 10k steps give 10k distinct states.
        assert_eq!(seen_distinct.len(), 10_000);
        // Zero seed is remapped, not stuck.
        let mut z = Lfsr16::new(0);
        assert_ne!(z.next_u16(), 0);
    }

    #[test]
    fn remote_hit_costs_more_than_home_hit() {
        // Region spans two tiles; a line resident in the remote tile pays
        // the Ulmo penalty on top of the base hit latency.
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(2)
            .tiles_per_cluster(2)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(4)) // spans both tiles
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // Touch enough distinct lines that some land in remote molecules,
        // then re-read: hits resolve either in the home tile (base
        // latency = 1 ASID stage + 4 hit cycles) or remotely through Ulmo
        // (base + 8).
        // 64 lines span replacement rows 0..3, so fills land in both the
        // home tile's molecules (rows 0-1) and the remote ones (rows 2-3).
        let mut hit_latencies = std::collections::BTreeSet::new();
        for round in 0..6 {
            for i in 0..64u64 {
                let out = c.access(read(1, i * 64));
                if round > 0 && out.hit {
                    hit_latencies.insert(out.latency);
                }
            }
        }
        assert!(
            hit_latencies.contains(&5),
            "expected home-tile hits at latency 5: {hit_latencies:?}"
        );
        assert!(
            hit_latencies.contains(&13),
            "expected Ulmo remote hits at latency 13: {hit_latencies:?}"
        );
        assert!(c.activity().ulmo_searches > 0);
    }

    #[test]
    fn high_quality_victim_rng_also_works() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(1)
            .clusters(1)
            .victim_rng(crate::config::VictimRng::HighQuality)
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // 48 lines fit comfortably in the initial 4-molecule allocation.
        for i in 0..500u64 {
            c.access(read(1, (i % 48) * 64));
        }
        let stats = c.stats();
        assert_eq!(stats.global.accesses, 500);
        assert!(stats.global.hits > 300, "hits {}", stats.global.hits);
    }

    #[test]
    fn lru_direct_cache_end_to_end() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .policy(crate::config::RegionPolicy::LruDirect)
            .trigger(ResizeTrigger::Constant { period: 500 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        for i in 0..3_000u64 {
            c.access(read(1, (i % 96) * 64));
        }
        assert!(c.stats().global.hits > 0, "LRU-Direct must serve hits");
        assert!(c.describe().contains("LRU-Direct"));
    }

    #[test]
    fn non_default_line_size() {
        // 128-byte base lines: two 64-byte offsets share a line.
        let cfg = MolecularConfig::builder()
            .molecule_size(2048)
            .line_size(128)
            .tile_molecules(4)
            .tiles_per_cluster(1)
            .clusters(1)
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        assert_eq!(c.config().frames_per_molecule(), 16);
        assert!(!c.access(read(1, 0)).hit);
        assert!(c.access(read(1, 64)).hit, "same 128B line");
        assert!(!c.access(read(1, 128)).hit, "next 128B line");
    }

    #[test]
    fn block_fill_marks_only_accessed_line_dirty() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(1)
            .clusters(1)
            .app_line_factor(Asid::new(1), 2)
            .trigger(ResizeTrigger::Constant { period: 1_000_000 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        // Write-miss on line 1 of a 2-line block: line 1 dirty, line 0 clean.
        let out = c.access(write(1, 64));
        assert_eq!(out.lines_fetched, 2);
        assert!(c.access(read(1, 0)).hit, "block partner prefetched");
        // Writebacks counted so far come only from fills/evictions, and a
        // fresh cache has none.
        assert_eq!(c.stats().global.writebacks, 0);
    }

    #[test]
    fn resize_overhead_estimate_tracks_partitions() {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .trigger(ResizeTrigger::Constant { period: 100 })
            .build()
            .unwrap();
        let mut c = MolecularCache::new(cfg);
        for i in 0..1_000u64 {
            c.access(read(1 + (i % 2) as u16, (i % 64) * 64));
        }
        // 10 rounds x 2 partitions x 1500 cycles.
        assert_eq!(c.resize_rounds(), 10);
        assert_eq!(
            c.estimated_resize_overhead_cycles(),
            10 * 2 * MolecularCache::RESIZE_CYCLES_PER_APP
        );
    }

    #[test]
    fn release_region_returns_molecules_to_pool() {
        let mut c = MolecularCache::new(small_config());
        c.access(write(1, 0));
        let before_free = c.free_molecules();
        let released = c.release_region(Asid::new(1)).unwrap();
        assert_eq!(released, 4, "half-tile initial allocation returned");
        assert_eq!(c.free_molecules(), before_free + released);
        assert!(c.region_snapshot(Asid::new(1)).is_none());
        assert!(c.activity().writebacks > 0, "dirty line flushed");
        // Releasing again is a no-op.
        assert_eq!(c.release_region(Asid::new(1)), None);
        // A later access rebuilds a fresh region.
        assert!(!c.access(read(1, 0)).hit);
        assert!(c.region_snapshot(Asid::new(1)).is_some());
    }

    #[test]
    fn rehome_moves_lookup_start() {
        let mut c = MolecularCache::new(small_config());
        c.access(read(1, 0));
        let old_home = c.regions[&Asid::new(1)].home_tile();
        let new_tile = if old_home.index() == 0 { 1 } else { 0 };
        assert!(c.rehome_app(Asid::new(1), new_tile));
        // The resident line is now remote: the hit goes through Ulmo.
        let before = c.activity().ulmo_searches;
        assert!(c.access(read(1, 0)).hit);
        assert!(c.activity().ulmo_searches > before);
        // Out-of-cluster / unknown targets are rejected.
        assert!(!c.rehome_app(Asid::new(1), 99));
        assert!(!c.rehome_app(Asid::new(42), 0));
    }

    #[test]
    fn access_batch_is_bit_identical_to_access_loop() {
        // Frequent resizes plus interleaved ASIDs: the batched path must
        // reproduce the serial path exactly, including resize timing.
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(2))
            .trigger(ResizeTrigger::Constant { period: 64 })
            .build()
            .unwrap();
        let reqs: Vec<Request> = (0..3_000u64)
            .map(|i| {
                let asid = 1 + (i % 3) as u16;
                read(asid, ((asid as u64) << 36) + (i % 200) * 64)
            })
            .collect();
        let mut serial = MolecularCache::new(cfg.clone());
        let mut expected = molcache_sim::BatchOutcome::default();
        for req in &reqs {
            expected.note(serial.access(*req));
        }
        let mut batched = MolecularCache::new(cfg);
        let mut got = molcache_sim::BatchOutcome::default();
        // Uneven chunk sizes exercise run boundaries at both edges.
        for chunk in reqs.chunks(777) {
            got.merge(&batched.access_batch(chunk));
        }
        assert_eq!(got, expected);
        assert_eq!(serial.stats(), batched.stats());
        assert_eq!(serial.activity(), batched.activity());
        assert_eq!(serial.snapshots(), batched.snapshots());
        assert_eq!(serial.resize_rounds(), batched.resize_rounds());
    }

    #[test]
    fn telemetry_sink_observes_without_perturbing() {
        use molcache_telemetry::{Recorder, Sink};
        use std::sync::{Arc, Mutex};
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(1))
            .trigger(ResizeTrigger::Constant { period: 200 })
            .miss_rate_goal(0.05)
            .build()
            .unwrap();
        let reqs: Vec<Request> = (0..2_000u64).map(|i| read(1, (i % 256) * 64)).collect();

        let mut plain = MolecularCache::new(cfg.clone());
        for req in &reqs {
            plain.access(*req);
        }

        let recorder: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::new("t")));
        let sink: Arc<Mutex<dyn Sink>> = recorder.clone();
        let mut observed = MolecularCache::new(cfg).with_sink(SinkHandle::shared(sink, 500));
        for req in &reqs {
            observed.access(*req);
        }

        // Observation changes nothing the simulation can see.
        assert_eq!(plain.stats(), observed.stats());
        assert_eq!(plain.activity(), observed.activity());
        assert_eq!(plain.snapshots(), observed.snapshots());

        let rec = recorder.lock().unwrap();
        // 2000 accesses / 500-long epochs = 4 epoch records.
        assert_eq!(rec.epochs().len(), 4);
        let total: u64 = rec.epochs().iter().map(|e| e.accesses).sum();
        assert_eq!(total, 2_000, "epoch activity deltas tile the run");
        assert_eq!(rec.partitions().len(), 4, "one app, one sample per epoch");
        let sampled: u64 = rec.partitions().iter().map(|s| s.accesses).sum();
        assert_eq!(sampled, 2_000);
        assert!(
            rec.partitions().iter().all(|s| s.occupancy <= 1.0),
            "occupancy is a fraction"
        );
        // The thrashing workload grows the partition: resize log non-empty,
        // tagged with the constant trigger, sizes consistent.
        assert!(!rec.resizes().is_empty());
        for r in rec.resizes() {
            assert_eq!(r.trigger, "constant");
            match r.kind {
                ResizeKind::Grow => assert_eq!(r.after, r.before + r.applied),
                ResizeKind::Shrink => assert_eq!(r.after, r.before - r.applied),
            }
            assert!(r.applied <= r.requested);
        }
        let grew: usize = rec
            .resizes()
            .iter()
            .filter(|r| r.kind == ResizeKind::Grow)
            .map(|r| r.applied)
            .sum();
        assert!(grew > 0, "cold-start thrash must grow the partition");
    }

    #[test]
    fn reset_stats_restarts_epoch_time() {
        use molcache_telemetry::{Recorder, Sink};
        use std::sync::{Arc, Mutex};
        let recorder: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::new("t")));
        let sink: Arc<Mutex<dyn Sink>> = recorder.clone();
        let mut c = MolecularCache::new(small_config()).with_sink(SinkHandle::shared(sink, 100));
        for i in 0..150u64 {
            c.access(read(1, (i % 8) * 64));
        }
        c.reset_stats();
        for i in 0..100u64 {
            c.access(read(1, (i % 8) * 64));
        }
        let rec = recorder.lock().unwrap();
        assert_eq!(rec.epochs().len(), 2);
        assert_eq!(rec.epochs()[0].epoch, 0);
        assert_eq!(rec.epochs()[1].epoch, 0, "epoch index restarts on reset");
        assert_eq!(rec.epochs()[1].accesses, 100);
    }

    #[test]
    fn molecular_cache_is_send() {
        // The parallel experiment engine moves caches across worker
        // threads; a non-Send field would break that at compile time.
        fn assert_send<T: Send>() {}
        assert_send::<MolecularCache>();
    }

    #[test]
    fn snapshots_sorted_by_asid() {
        let mut c = MolecularCache::new(small_config());
        c.access(read(2, 0));
        c.access(read(1, 0));
        let snaps = c.snapshots();
        assert_eq!(snaps.len(), 2);
        assert!(snaps[0].asid < snaps[1].asid);
    }
}
