//! The molecular cache: a thin driver over the staged access pipeline.
//!
//! The mechanics of servicing a request live in [`crate::pipeline`], one
//! module per hardware stage; this file owns the cache's physical
//! structure (molecules, tiles, clusters), the region table, and the
//! [`service`](MolecularCache) driver that sequences the stages and
//! assembles their [`StageTrace`](molcache_sim::StageTrace)s into the
//! per-access [`StageBreakdown`]. Region allocation and Algorithm-1
//! resizing live in [`crate::resize`]; telemetry publishing in the
//! `observe` module.

use crate::config::MolecularConfig;
use crate::ids::{ClusterId, MoleculeId, TileId};
use crate::molecule::Molecule;
use crate::policy::{PaperAlgorithm1, ResizeEvent, ResizePolicy};
use crate::profiler::StageWallProfile;
use crate::region::Region;
use crate::region_table::RegionTable;
use crate::stats::RegionSnapshot;
use crate::tags::{GateMask, TagStore};
use crate::tile::{Tile, TileCluster};
use molcache_sim::{
    AccessOutcome, Activity, BatchOutcome, CacheModel, CacheStats, Request, StageBreakdown,
};
use molcache_telemetry::SinkHandle;
use molcache_trace::rng::Rng;
use molcache_trace::Asid;

pub use crate::pipeline::victim::Lfsr16;

/// The molecular cache (Figure 1/2 of the paper).
///
/// Create one from a [`MolecularConfig`]; drive it through the
/// [`CacheModel`] trait. Regions are created on demand: the first access
/// from a new ASID assigns the application to a cluster and home tile and
/// grants its initial molecule allocation ("Ground Zero", §3.4).
#[derive(Debug, Clone)]
pub struct MolecularCache {
    pub(crate) cfg: MolecularConfig,
    pub(crate) molecules: Vec<Molecule>,
    /// Flat bit-packed tag/ASID/shared arrays for every molecule (the
    /// hot lookup state; `molecules` keeps only placement + counters).
    pub(crate) tags: TagStore,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) clusters: Vec<TileCluster>,
    pub(crate) regions: RegionTable,
    /// The installed resize decision policy (see [`crate::policy`]);
    /// defaults to [`PaperAlgorithm1`] on the configured trigger.
    pub(crate) resize_policy: Box<dyn ResizePolicy>,
    pub(crate) rng: Rng,
    pub(crate) lfsr: Lfsr16,
    pub(crate) stats: CacheStats,
    pub(crate) activity: Activity,
    pub(crate) next_cluster_rr: usize,
    pub(crate) next_tile_rr: Vec<usize>,
    pub(crate) resize_rounds: u64,
    pub(crate) resize_partitions_touched: u64,
    pub(crate) failed_allocations: u64,
    pub(crate) sink: SinkHandle,
    pub(crate) epoch_index: u64,
    pub(crate) epoch_stats_base: CacheStats,
    pub(crate) epoch_activity_base: Activity,
    /// Scratch match bitmask the ASID gate hands to the tag-probe stage
    /// (reused across accesses to keep the gate allocation-free).
    pub(crate) gate: GateMask,
    /// Structural-topology generation: bumped by
    /// [`note_structural_change`](Self::note_structural_change) on every
    /// grant/shrink/release/re-home/shared-bit/flush event. Regions stamp
    /// their cached Ulmo search lists with it; a stale stamp forces a
    /// lazy rebuild. Starts at 1 so a 0 stamp always reads as stale.
    pub(crate) structure_generation: u64,
    /// Runtime toggle for the cached Ulmo search lists (off = rebuild
    /// the list on every launched search, the pre-cache behaviour).
    pub(crate) search_cache_enabled: bool,
    /// Wall-time stage sampler (only with the `stage-profiler` feature;
    /// default builds carry no sampler state at all).
    #[cfg(feature = "stage-profiler")]
    pub(crate) sampler: crate::profiler::StageSampler,
    /// Way/molecule memoization front-end (only with the `memo-front`
    /// feature; see [`crate::pipeline::memo`]).
    #[cfg(feature = "memo-front")]
    pub(crate) memo: crate::pipeline::memo::MemoTable,
    /// Memo hits at the last epoch close, so epoch samples carry the
    /// per-epoch delta.
    #[cfg(feature = "memo-front")]
    pub(crate) epoch_memo_base: u64,
}

impl MolecularCache {
    /// Builds the cache's physical structure from a configuration.
    pub fn new(cfg: MolecularConfig) -> Self {
        let frames = cfg.frames_per_molecule();
        let mut molecules = Vec::with_capacity(cfg.total_molecules());
        let mut tiles = Vec::with_capacity(cfg.total_tiles());
        let mut clusters = Vec::with_capacity(cfg.clusters());
        let mut mol_id = 0u32;
        let mut tile_id = 0u32;
        for c in 0..cfg.clusters() {
            let cluster = ClusterId(c as u32);
            let mut cluster_tiles = Vec::with_capacity(cfg.tiles_per_cluster());
            for _ in 0..cfg.tiles_per_cluster() {
                let tid = TileId(tile_id);
                let mut ids = Vec::with_capacity(cfg.tile_molecules());
                for _ in 0..cfg.tile_molecules() {
                    let id = MoleculeId(mol_id);
                    molecules.push(Molecule::new(id, tid));
                    ids.push(id);
                    mol_id += 1;
                }
                tiles.push(Tile::new(tid, cluster, ids));
                cluster_tiles.push(tid);
                tile_id += 1;
            }
            clusters.push(TileCluster::new(cluster, cluster_tiles));
        }
        let resize_policy: Box<dyn ResizePolicy> = Box::new(PaperAlgorithm1::new(cfg.trigger()));
        let rng = Rng::seeded(cfg.seed);
        let lfsr = Lfsr16::new(cfg.seed as u16);
        let clusters_count = cfg.clusters();
        let tile_molecules = cfg.tile_molecules();
        let tags = TagStore::new(molecules.len(), frames);
        MolecularCache {
            cfg,
            molecules,
            tags,
            tiles,
            clusters,
            regions: RegionTable::new(),
            resize_policy,
            rng,
            lfsr,
            stats: CacheStats::new(),
            activity: Activity::default(),
            next_cluster_rr: 0,
            next_tile_rr: vec![0; clusters_count],
            resize_rounds: 0,
            resize_partitions_touched: 0,
            failed_allocations: 0,
            sink: SinkHandle::null(),
            epoch_index: 0,
            epoch_stats_base: CacheStats::new(),
            epoch_activity_base: Activity::default(),
            gate: GateMask::with_capacity(tile_molecules),
            structure_generation: 1,
            search_cache_enabled: true,
            #[cfg(feature = "stage-profiler")]
            sampler: crate::profiler::StageSampler::default(),
            #[cfg(feature = "memo-front")]
            memo: crate::pipeline::memo::MemoTable::default(),
            #[cfg(feature = "memo-front")]
            epoch_memo_base: 0,
        }
    }

    /// Configures a molecule to a new owner through the flat tag store
    /// (flushing its contents) and clears its per-window counters — the
    /// two halves of what reconfiguration means since the tag state
    /// moved out of [`Molecule`]. Returns the dirty frames flushed.
    pub(crate) fn configure_molecule(&mut self, id: MoleculeId, asid: Asid) -> u64 {
        self.molecules[id.index()].reset_window_counters();
        self.tags.configure(id, asid)
    }

    /// Records a structural change to the cache topology — any
    /// grant/shrink/release/re-home/shared-bit/flush event. One bump
    /// lazily invalidates every region's cached Ulmo search list (their
    /// generation stamps stop matching) and drops the memoization
    /// front-end's entries the same way. The runtime memo toggle
    /// ([`set_memo_front`](Self::set_memo_front)) is *not* structural:
    /// it bumps only the memo's own generation.
    #[inline]
    pub(crate) fn note_structural_change(&mut self) {
        self.structure_generation += 1;
        #[cfg(feature = "memo-front")]
        self.memo.bump_generation();
    }

    /// Enables the sampling wall-time stage profiler: every
    /// `sample_every`-th access is timed with `Instant` around each
    /// pipeline stage, so profiler overhead stays bounded at ten clock
    /// reads per `sample_every` accesses. `sample_every == 0` disables
    /// sampling again.
    ///
    /// A no-op unless the crate is built with the `stage-profiler`
    /// feature — default builds never read the clock on the access path.
    pub fn enable_stage_profiler(&mut self, sample_every: u64) {
        #[cfg(feature = "stage-profiler")]
        {
            self.sampler.sample_every = sample_every;
            self.sampler.profile.sample_every = sample_every;
        }
        #[cfg(not(feature = "stage-profiler"))]
        let _ = sample_every;
    }

    /// The sampled wall-time stage profile, when the `stage-profiler`
    /// feature is compiled in and sampling was enabled; `None` otherwise,
    /// which callers render as a `-` column.
    pub fn stage_wall_profile(&self) -> Option<StageWallProfile> {
        #[cfg(feature = "stage-profiler")]
        if self.sampler.sample_every > 0 {
            return Some(self.sampler.profile);
        }
        None
    }

    /// Attaches a telemetry sink. The cache publishes per-partition epoch
    /// samples, cache-wide epoch activity and resize events into it; with
    /// the default [`SinkHandle::null`] every publish site short-circuits
    /// on a null-check and the cache behaves bit-identically to an
    /// unobserved one.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Builder-style [`set_sink`](Self::set_sink).
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.set_sink(sink);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &MolecularConfig {
        &self.cfg
    }

    /// Installs a resize decision policy, replacing the current one.
    /// Every existing region is registered with the incoming policy so
    /// per-application trigger timers exist from the first access after
    /// the swap. Mechanism state (allocations, windows, structural
    /// generation) is untouched — only future decisions change.
    pub fn set_resize_policy(&mut self, mut policy: Box<dyn ResizePolicy>) {
        for asid in self.regions.keys() {
            policy.register_app(*asid);
        }
        self.resize_policy = policy;
    }

    /// Builder-style [`set_resize_policy`](Self::set_resize_policy).
    #[must_use]
    pub fn with_resize_policy(mut self, policy: Box<dyn ResizePolicy>) -> Self {
        self.set_resize_policy(policy);
        self
    }

    /// Stable name of the installed resize policy.
    pub fn resize_policy_name(&self) -> &'static str {
        self.resize_policy.name()
    }

    /// Delivers a declared working-set-size annotation (a trace phase
    /// marker, see `molcache_trace::annotate`) to the installed policy,
    /// converted from bytes to whole molecules. Policies that do not
    /// consume hints ignore it.
    pub fn note_phase_hint(&mut self, asid: Asid, working_set_bytes: u64) {
        let ms = self.cfg.molecule_size();
        let molecules = working_set_bytes.div_ceil(ms).max(1) as usize;
        self.resize_policy.phase_hint(asid, molecules);
    }

    /// Changes one application's miss-rate goal at runtime (per-tenant
    /// SLA adjustment; the configuration's goal map is the initial
    /// value). Returns `false` if the application has no region yet.
    pub fn set_region_goal(&mut self, asid: Asid, goal: f64) -> bool {
        if !(goal > 0.0 && goal < 1.0) {
            return false;
        }
        match self.regions.get_mut(&asid) {
            Some(region) => {
                region.set_goal(goal);
                true
            }
            None => false,
        }
    }

    /// Total free (unassigned) molecules.
    pub fn free_molecules(&self) -> usize {
        self.tiles.iter().map(Tile::free_count).sum()
    }

    /// Number of resize rounds executed so far.
    pub fn resize_rounds(&self) -> u64 {
        self.resize_rounds
    }

    /// Cycles per application the paper budgets for one `resize()`
    /// computation on a host core (§3.4, "Who does the computation?").
    pub const RESIZE_CYCLES_PER_APP: u64 = 1_500;

    /// Estimated cycles an OS-level resize daemon has spent so far
    /// (§3.4: "The resize() function takes about 1500 cycles per
    /// application", scheduled periodically on one of the processors).
    /// One round touches every partition under the constant and
    /// global-adaptive triggers and a single partition under the per-app
    /// trigger; this estimate charges the per-partition cost actually
    /// incurred.
    pub fn estimated_resize_overhead_cycles(&self) -> u64 {
        self.resize_partitions_touched * Self::RESIZE_CYCLES_PER_APP
    }

    /// Number of growth requests that could not be (fully) satisfied for
    /// lack of free molecules — the "no free molecules, no resizing"
    /// phases the paper observes below the threshold cache size.
    pub fn failed_allocations(&self) -> u64 {
        self.failed_allocations
    }

    /// Snapshot of one application's region.
    pub fn region_snapshot(&self, asid: Asid) -> Option<RegionSnapshot> {
        self.regions.get(&asid).map(|r| self.snapshot_of(r))
    }

    /// Snapshots of all regions, in ASID order.
    pub fn snapshots(&self) -> Vec<RegionSnapshot> {
        self.regions.values().map(|r| self.snapshot_of(r)).collect()
    }

    /// The replacement-view row sizes of one region (diagnostics: the
    /// non-uniform way sizes of Figure 4).
    pub fn region_row_sizes(&self, asid: Asid) -> Option<Vec<usize>> {
        self.regions
            .get(&asid)
            .map(|r| (0..r.num_rows()).map(|i| r.row(i).len()).collect())
    }

    fn snapshot_of(&self, r: &Region) -> RegionSnapshot {
        RegionSnapshot {
            asid: r.asid(),
            molecules: r.size(),
            rows: r.num_rows(),
            avg_molecules: r.average_allocation(),
            accesses: r.lifetime_accesses(),
            hits: r.lifetime_hits(),
            window_miss_rate: r.window_miss_rate(),
            last_window_miss_rate: r.last_miss_rate(),
            goal: r.goal(),
            hits_per_molecule: r.hits_per_molecule(),
        }
    }

    /// Destroys an application's region (process termination): every
    /// member molecule is flushed (dirty lines counted as writebacks) and
    /// returned to its tile's free pool. Returns the number of molecules
    /// released, or `None` if the application had no region.
    pub fn release_region(&mut self, asid: Asid) -> Option<usize> {
        let mut region = self.regions.remove(&asid)?;
        self.note_structural_change();
        let ids = region.drain_molecules();
        let released = ids.len();
        for id in ids {
            let flushed = self.configure_molecule(id, Asid::NONE);
            self.activity.writebacks += flushed;
            let tile = self.molecules[id.index()].tile();
            self.tiles[tile.index()].release(id);
        }
        Some(released)
    }

    /// Re-homes an application to another tile of its cluster — the
    /// paper's context-switch-time processor-tile remapping. Lookup now
    /// starts at the new tile; existing molecules stay where they are and
    /// are reached via Ulmo until resizing migrates the region.
    ///
    /// Returns `false` (and does nothing) if the application has no
    /// region or `tile_index` is not a tile of the region's cluster.
    pub fn rehome_app(&mut self, asid: Asid, tile_index: usize) -> bool {
        let Some(region) = self.regions.get_mut(&asid) else {
            return false;
        };
        if tile_index >= self.tiles.len() {
            return false;
        }
        let tid = self.tiles[tile_index].id();
        if !self.clusters[region.cluster().index()]
            .tiles()
            .contains(&tid)
        {
            return false;
        }
        region.set_home_tile(tid);
        self.note_structural_change();
        true
    }

    /// Marks up to `n` free molecules of tile `tile_index` as shared
    /// (§3.1: the shared bit bypasses the ASID comparison, making the
    /// molecule visible to every application on the tile). Returns how
    /// many were marked.
    pub fn make_shared(&mut self, tile_index: usize, n: usize) -> usize {
        self.note_structural_change();
        let mut granted = 0;
        for _ in 0..n {
            let Some(id) = self.tiles[tile_index].take_free() else {
                break;
            };
            self.tags.set_shared(id, true);
            granted += 1;
        }
        granted
    }
}

impl CacheModel for MolecularCache {
    fn access(&mut self, req: Request) -> AccessOutcome {
        self.ensure_region(req.asid);
        self.activity.accesses += 1;
        let outcome = self.service(req);
        match self.resize_policy.on_access(req.asid) {
            ResizeEvent::None => {}
            ResizeEvent::AllPartitions => self.resize_all(),
            ResizeEvent::Partition(asid) => self.resize_one(asid),
        }
        self.maybe_close_epoch();
        outcome
    }

    /// Batched entry point: one ASID-gate dispatch (region-presence check
    /// and on-demand creation) per run of same-ASID requests instead of
    /// one per request.
    ///
    /// Bit-identical to the per-request loop: `ensure_region` is
    /// idempotent, so hoisting it across a same-ASID run changes nothing,
    /// and the per-access resize trigger still fires between every two
    /// requests exactly as in [`access`](CacheModel::access). Region
    /// creation order therefore interleaves with resize events precisely
    /// as the serial loop would have it.
    fn access_batch(&mut self, reqs: &[Request]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        let mut i = 0;
        while i < reqs.len() {
            let asid = reqs[i].asid;
            self.ensure_region(asid);
            while i < reqs.len() && reqs[i].asid == asid {
                self.activity.accesses += 1;
                out.note(self.service(reqs[i]));
                match self.resize_policy.on_access(asid) {
                    ResizeEvent::None => {}
                    ResizeEvent::AllPartitions => self.resize_all(),
                    ResizeEvent::Partition(a) => self.resize_one(a),
                }
                self.maybe_close_epoch();
                i += 1;
            }
        }
        out
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn activity(&self) -> Activity {
        self.activity
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.activity = Activity::default();
        // Epoch time restarts with the counters it is derived from.
        self.epoch_index = 0;
        self.epoch_stats_base = CacheStats::new();
        self.epoch_activity_base = Activity::default();
        // Memo lifetime counters restart too; the memo's entries survive
        // like cache contents do (a stats reset is not a flush).
        #[cfg(feature = "memo-front")]
        {
            self.memo.reset_counters();
            self.epoch_memo_base = 0;
        }
    }

    fn describe(&self) -> String {
        let total_mb = self.cfg.total_bytes() as f64 / (1024.0 * 1024.0);
        format!(
            "{}MB molecular ({}, {} clusters x {} tiles x {}KB, {}KB molecules)",
            total_mb,
            self.cfg.policy(),
            self.cfg.clusters(),
            self.cfg.tiles_per_cluster(),
            self.cfg.tile_bytes() >> 10,
            self.cfg.molecule_size() >> 10,
        )
    }
}

/// Times `$body` (one pipeline-stage call) into the sampler's slot
/// `$idx` when `$sampled` is set. Expands to the bare `$body` without the
/// `stage-profiler` feature, so default builds gain no code on the access
/// path.
#[cfg(feature = "stage-profiler")]
macro_rules! timed_stage {
    ($cache:expr, $sampled:expr, $idx:expr, $body:expr) => {{
        if $sampled {
            let __start = std::time::Instant::now();
            let __out = $body;
            $cache.sampler.profile.stage_ns[$idx] += __start.elapsed().as_nanos() as u64;
            __out
        } else {
            $body
        }
    }};
}
#[cfg(not(feature = "stage-profiler"))]
macro_rules! timed_stage {
    ($cache:expr, $sampled:expr, $idx:expr, $body:expr) => {{
        let _ = $sampled;
        $body
    }};
}

impl MolecularCache {
    /// Drives one request through the five-stage pipeline.
    ///
    /// Each stage writes what it did into its slot of the
    /// [`StageBreakdown`]; the driver assigns the stage cycles (ASID gate
    /// = the gate stage cycles, home lookup = the hit latency, Ulmo = its
    /// penalty when launched, fill = the miss penalty on a miss, victim =
    /// zero) so that the breakdown's cycles sum exactly to the access's
    /// reported latency on every path, and folds the breakdown into the
    /// cache-wide [`Activity`] exactly once per access.
    fn service(&mut self, req: Request) -> AccessOutcome {
        let asid = req.asid;
        let line = req.addr.line(self.cfg.line_size());
        let is_write = req.kind.is_write();
        #[cfg(feature = "stage-profiler")]
        let sampled = self.sampler.begin_access();
        #[cfg(not(feature = "stage-profiler"))]
        let sampled = false;

        // Stage 0 — memoization front-end: a verified memo hit replays
        // the gate/lookup counters the full pipeline would emit and
        // skips stages 1–3 entirely (see `pipeline::memo` for why the
        // replay is exact). Falls through on any doubt.
        #[cfg(feature = "memo-front")]
        if self.memo.enabled {
            if let Some((mol, gate_count)) = self.memo.lookup(asid, line) {
                let verified = timed_stage!(self, sampled, 1, self.tags.probe(mol, line, is_write));
                if verified {
                    self.memo.note_hit();
                    self.molecules[mol.index()].record_hit();
                    let mut stages = StageBreakdown::default();
                    stages.asid_gate.cycles = self.cfg.asid_stage_cycles;
                    stages.asid_gate.asid_compares = self.cfg.tile_molecules() as u32;
                    stages.home_lookup.cycles = self.cfg.hit_latency;
                    stages.home_lookup.tag_probes = gate_count;
                    let latency = self.cfg.asid_stage_cycles + self.cfg.hit_latency;
                    return self.finish_hit(asid, mol, latency, stages);
                }
                self.memo.note_stale(asid, line);
            }
        }

        let home = self.regions[&asid].home_tile();
        let mut stages = StageBreakdown::default();

        // Stage 1 — ASID gate, stage 2 — home-tile tag probe.
        stages.asid_gate.cycles = self.cfg.asid_stage_cycles;
        stages.home_lookup.cycles = self.cfg.hit_latency;
        let mut latency = self.cfg.asid_stage_cycles + self.cfg.hit_latency;
        timed_stage!(
            self,
            sampled,
            0,
            self.asid_gate(home, asid, &mut stages.asid_gate)
        );
        if let Some(hit_mol) = timed_stage!(
            self,
            sampled,
            1,
            self.probe_gated(line, is_write, &mut stages.home_lookup)
        ) {
            #[cfg(feature = "memo-front")]
            self.memo_note_home_hit(asid, line, hit_mol);
            return self.finish_hit(asid, hit_mol, latency, stages);
        }

        // Stage 3 — Ulmo cross-tile search (charges its penalty to its
        // trace only when the region actually spans tiles).
        let remote_hit = timed_stage!(
            self,
            sampled,
            2,
            self.ulmo_search(asid, line, is_write, &mut stages.ulmo_search)
        );
        latency += stages.ulmo_search.cycles;
        if let Some(hit_mol) = remote_hit {
            return self.finish_hit(asid, hit_mol, latency, stages);
        }

        // Miss: stage 4 — victim selection, stage 5 — block fill.
        latency += self.cfg.miss_penalty;
        stages.fill.cycles = self.cfg.miss_penalty;
        let region = self.regions.get_mut(&asid).expect("region");
        region.record_access(true);
        let lines_fetched = region.line_factor();
        let Some(victim) = timed_stage!(self, sampled, 3, self.victim_select(asid, req.addr, home))
        else {
            // No region molecules and no shared fallback: the request
            // bypasses the cache entirely (fill stage touches no frame).
            self.stats.record(asid, false, false, latency);
            self.activity.record_stages(&stages);
            return AccessOutcome {
                hit: false,
                latency,
                writeback: false,
                lines_fetched: 0,
                stages: Some(stages),
            };
        };
        self.molecules[victim.index()].record_replacement_miss();
        let writeback = timed_stage!(
            self,
            sampled,
            4,
            self.fill_block(asid, victim, line, is_write, &mut stages.fill)
        );
        self.stats.record(asid, false, writeback, latency);
        self.activity.record_stages(&stages);
        AccessOutcome {
            hit: false,
            latency,
            writeback,
            lines_fetched,
            stages: Some(stages),
        }
    }

    /// Books a hit found by the lookup stages: replacement recency, region
    /// and cache statistics, and the stage breakdown.
    fn finish_hit(
        &mut self,
        asid: Asid,
        hit_mol: MoleculeId,
        latency: u32,
        stages: StageBreakdown,
    ) -> AccessOutcome {
        let clock = self.activity.accesses;
        let region = self.regions.get_mut(&asid).expect("region");
        region.note_molecule_use(hit_mol, clock);
        region.record_access(false);
        self.stats.record(asid, true, false, latency);
        self.activity.record_stages(&stages);
        AccessOutcome::hit(latency).with_stages(stages)
    }
}

#[cfg(test)]
#[path = "cache_tests.rs"]
mod tests;
