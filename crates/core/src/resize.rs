//! Resize *mechanism*: region allocation and the resize driver (§3.4).
//!
//! The decision half — triggers, Algorithm 1, and the alternative
//! policies — lives in [`crate::policy`]; this module is the plumbing
//! that applies whatever the installed [`ResizePolicy`] decides:
//! granting molecules from the free pools, withdrawing them through the
//! one shared shrink path, and closing observation windows. Every
//! membership change made here bumps the memo/search-list structural
//! generation via `note_structural_change`, no matter which policy asked
//! for it.
//!
//! The decision-layer names are re-exported so long-standing paths like
//! `molcache_core::resize::algorithm1` keep working.

pub use crate::policy::{
    adapt_period, algorithm1, AdaptScope, Decision, ResizeController, ResizeEvent, ResizeTrigger,
    GROWTH_IMPROVEMENT_EPS, PERIOD_HYSTERESIS, PHASE_CHANGE_EPS, SHRINK_MARGIN,
};

use crate::cache::MolecularCache;
use crate::config::InitialAllocation;
use crate::ids::ClusterId;
use crate::policy::{DecisionInputs, PartitionWindow};
use crate::region::Region;
use molcache_telemetry::ResizeKind;
use molcache_trace::Asid;

impl MolecularCache {
    /// Creates `asid`'s region on first contact ("Ground Zero", §3.4):
    /// round-robin cluster and home-tile assignment, then the initial
    /// molecule grant. Idempotent for existing regions.
    pub(crate) fn ensure_region(&mut self, asid: Asid) {
        if self.regions.contains_key(&asid) {
            return;
        }
        let cluster_idx = self.cfg.app_cluster(asid).unwrap_or_else(|| {
            let c = self.next_cluster_rr % self.cfg.clusters();
            self.next_cluster_rr += 1;
            c
        });
        let tile_pos = self.next_tile_rr[cluster_idx] % self.cfg.tiles_per_cluster();
        self.next_tile_rr[cluster_idx] += 1;
        let home = self.clusters[cluster_idx].tiles()[tile_pos];

        let mut region = Region::new(
            asid,
            home,
            ClusterId(cluster_idx as u32),
            self.cfg.policy(),
            self.cfg.line_factor(asid),
            self.cfg.goal(asid),
            self.cfg.row_max(),
        );
        let want = match self.cfg.initial_allocation {
            InitialAllocation::HalfTile => self.cfg.tile_molecules() / 2,
            InitialAllocation::Molecules(n) => n,
        }
        .max(1);
        let granted = self.grant_molecules(&mut region, want);
        region.note_allocation(granted.max(1));
        self.resize_policy.register_app(asid);
        self.regions.insert(asid, region);
    }

    /// Takes up to `want` free molecules (home tile first, then the other
    /// tiles of the region's cluster), configures them into the region.
    pub(crate) fn grant_molecules(&mut self, region: &mut Region, want: usize) -> usize {
        let mut granted = 0;
        let home = region.home_tile();
        let cluster_tiles: Vec<crate::ids::TileId> =
            self.clusters[region.cluster().index()].tiles().to_vec();
        let order = std::iter::once(home).chain(cluster_tiles.into_iter().filter(|t| *t != home));
        for tid in order {
            while granted < want {
                let Some(id) = self.tiles[tid.index()].take_free() else {
                    break;
                };
                let flushed = self.configure_molecule(id, region.asid());
                self.activity.writebacks += flushed;
                region.add_molecule(id);
                granted += 1;
            }
            if granted >= want {
                break;
            }
        }
        if granted < want {
            self.failed_allocations += 1;
        }
        // Any change to the region's membership (and even a failed grant
        // round) is a structural event: drop every memoized location.
        self.note_structural_change();
        granted
    }

    pub(crate) fn resize_partition(&mut self, asid: Asid) -> (u64, u64) {
        let Some(region) = self.regions.get(&asid) else {
            return (0, 0);
        };
        let window = (region.window_accesses(), {
            let r = self.regions.get(&asid).expect("checked");
            (r.window_miss_rate() * r.window_accesses() as f64).round() as u64
        });
        if region.window_accesses() == 0 {
            // Idle partition: nothing to learn this window.
            return window;
        }
        let inputs = DecisionInputs {
            asid,
            window_accesses: region.window_accesses(),
            window_miss_rate: region.window_miss_rate(),
            last_miss_rate: region.last_miss_rate(),
            goal: region.goal(),
            current: region.size(),
            last_allocation: region.last_allocation(),
            max_allocation: self.cfg.max_allocation(),
            free_molecules: self.free_molecules(),
        };
        let decision = self.resize_policy.decide(&inputs);
        let (mr, goal, current) = (inputs.window_miss_rate, inputs.goal, inputs.current);
        match decision {
            Decision::Grow(n) => {
                let mut region = self.regions.remove(&asid).expect("present");
                let granted = self.grant_molecules(&mut region, n);
                region.note_allocation(granted);
                self.regions.insert(asid, region);
                self.publish_resize(
                    asid,
                    ResizeKind::Grow,
                    n,
                    granted,
                    current,
                    mr,
                    goal,
                    &inputs,
                );
            }
            Decision::Shrink(n) => {
                // The one shrink path, shared with the lifecycle API so
                // goal-driven and tenant-driven withdrawal bump the memo
                // generation identically (see `crate::lifecycle`).
                let removed = self.shrink_region(asid, n);
                self.publish_resize(
                    asid,
                    ResizeKind::Shrink,
                    n,
                    removed,
                    current,
                    mr,
                    goal,
                    &inputs,
                );
            }
            Decision::Hold => {}
        }
        // Close the window: store the observed miss rate, clear counters.
        let region = &self.regions[&asid];
        let molecules = &mut self.molecules;
        for id in region.molecules() {
            molecules[id.index()].reset_window_counters();
        }
        self.regions.get_mut(&asid).expect("present").close_window();
        window
    }

    pub(crate) fn resize_all(&mut self) {
        self.resize_rounds += 1;
        self.resize_partitions_touched += self.regions.len() as u64;
        let asids: Vec<Asid> = self.regions.keys().copied().collect();
        // Hand arbitrating policies every partition's closing window
        // before any per-partition decision of this round (a no-op for
        // the default policy).
        let windows: Vec<PartitionWindow> = asids
            .iter()
            .map(|asid| {
                let r = &self.regions[asid];
                PartitionWindow {
                    asid: *asid,
                    window_accesses: r.window_accesses(),
                    window_miss_rate: r.window_miss_rate(),
                    last_miss_rate: r.last_miss_rate(),
                    goal: r.goal(),
                    size: r.size(),
                }
            })
            .collect();
        self.resize_policy.begin_round(&windows);
        let mut total_accesses = 0u64;
        let mut total_misses = 0u64;
        let mut weighted_goal = 0.0;
        for asid in &asids {
            let goal = self.regions[asid].goal();
            let (acc, miss) = self.resize_partition(*asid);
            total_accesses += acc;
            total_misses += miss;
            weighted_goal += goal * acc as f64;
        }
        if total_accesses > 0 {
            let overall_mr = total_misses as f64 / total_accesses as f64;
            let goal = weighted_goal / total_accesses as f64;
            self.resize_policy
                .adapt(AdaptScope::Global, overall_mr, goal);
        }
    }

    pub(crate) fn resize_one(&mut self, asid: Asid) {
        self.resize_rounds += 1;
        self.resize_partitions_touched += 1;
        let Some(region) = self.regions.get(&asid) else {
            return;
        };
        let goal = region.goal();
        let mr = region.window_miss_rate();
        let had_window = region.window_accesses() > 0;
        self.resize_partition(asid);
        if had_window {
            self.resize_policy.adapt(AdaptScope::App(asid), mr, goal);
        }
    }
}
