//! Dynamic partition resizing (§3.4 and Algorithm 1).

use molcache_trace::Asid;
use std::collections::BTreeMap;

/// When resizing is evaluated (§3.4, "When to add?").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResizeTrigger {
    /// Resize every `period` serviced addresses, always.
    Constant {
        /// Addresses between resize rounds.
        period: u64,
    },
    /// Adaptive period driven by the *overall* cache miss rate: doubled
    /// when the cache meets the goal, cut to 10 % when it does not. The
    /// paper finds this works best for small tiles.
    GlobalAdaptive {
        /// First resize happens after this many addresses.
        initial_period: u64,
    },
    /// Adaptive period per application, driven by that application's
    /// miss rate. The paper finds this works better for large tiles
    /// (>= 2 MB).
    PerAppAdaptive {
        /// First per-application resize after this many addresses.
        initial_period: u64,
    },
}

impl ResizeTrigger {
    /// Stable lowercase name, used to tag telemetry resize records.
    pub fn name(&self) -> &'static str {
        match self {
            ResizeTrigger::Constant { .. } => "constant",
            ResizeTrigger::GlobalAdaptive { .. } => "global-adaptive",
            ResizeTrigger::PerAppAdaptive { .. } => "per-app-adaptive",
        }
    }

    fn initial_period(&self) -> u64 {
        match *self {
            ResizeTrigger::Constant { period } => period,
            ResizeTrigger::GlobalAdaptive { initial_period }
            | ResizeTrigger::PerAppAdaptive { initial_period } => initial_period,
        }
    }
}

/// What a trigger fires on one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeEvent {
    /// No resize due.
    None,
    /// Resize every partition (constant / global-adaptive schemes).
    AllPartitions,
    /// Resize just this application's partition (per-app adaptive).
    Partition(Asid),
}

/// Tracks resize countdowns and adapts periods.
#[derive(Debug, Clone)]
pub struct ResizeController {
    trigger: ResizeTrigger,
    period: u64,
    countdown: u64,
    per_app: BTreeMap<Asid, AppTimer>,
}

#[derive(Debug, Clone, Copy)]
struct AppTimer {
    period: u64,
    countdown: u64,
}

/// Period adaptation bounds: the period never shrinks below 1/10 of the
/// initial value nor grows beyond 16x (keeps Algorithm 1's x0.1 / x2
/// updates from degenerating).
const MIN_PERIOD_FRACTION: u64 = 10;
const MAX_PERIOD_FACTOR: u64 = 16;

impl ResizeController {
    /// Creates a controller for the given trigger scheme.
    pub fn new(trigger: ResizeTrigger) -> Self {
        let period = trigger.initial_period().max(1);
        ResizeController {
            trigger,
            period,
            countdown: period,
            per_app: BTreeMap::new(),
        }
    }

    /// The scheme in use.
    pub fn trigger(&self) -> ResizeTrigger {
        self.trigger
    }

    /// Current global period (constant / global-adaptive schemes).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Current period of one application (per-app scheme); `None` if the
    /// application has not been seen.
    pub fn app_period(&self, asid: Asid) -> Option<u64> {
        self.per_app.get(&asid).map(|t| t.period)
    }

    /// Registers an application (first access).
    pub fn register_app(&mut self, asid: Asid) {
        let initial = self.trigger.initial_period().max(1);
        self.per_app.entry(asid).or_insert(AppTimer {
            period: initial,
            countdown: initial,
        });
    }

    /// Advances the counters by one serviced address from `asid` and
    /// reports whether a resize is due.
    pub fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        match self.trigger {
            ResizeTrigger::Constant { .. } | ResizeTrigger::GlobalAdaptive { .. } => {
                self.countdown = self.countdown.saturating_sub(1);
                if self.countdown == 0 {
                    self.countdown = self.period;
                    ResizeEvent::AllPartitions
                } else {
                    ResizeEvent::None
                }
            }
            ResizeTrigger::PerAppAdaptive { .. } => {
                self.register_app(asid);
                let timer = self.per_app.get_mut(&asid).expect("registered above");
                timer.countdown = timer.countdown.saturating_sub(1);
                if timer.countdown == 0 {
                    timer.countdown = timer.period;
                    ResizeEvent::Partition(asid)
                } else {
                    ResizeEvent::None
                }
            }
        }
    }

    /// Applies Algorithm 1's period update after a global resize round:
    /// `x2` when the overall miss rate meets the goal, `x0.1` otherwise.
    /// No-op for the constant scheme.
    pub fn adapt_global(&mut self, overall_miss_rate: f64, goal: f64) {
        if let ResizeTrigger::GlobalAdaptive { initial_period } = self.trigger {
            self.period = adapt_period(self.period, initial_period, overall_miss_rate, goal);
            self.countdown = self.countdown.min(self.period);
        }
    }

    /// Period update after a per-application resize.
    pub fn adapt_app(&mut self, asid: Asid, miss_rate: f64, goal: f64) {
        if let ResizeTrigger::PerAppAdaptive { initial_period } = self.trigger {
            if let Some(timer) = self.per_app.get_mut(&asid) {
                timer.period = adapt_period(timer.period, initial_period, miss_rate, goal);
                timer.countdown = timer.countdown.min(timer.period);
            }
        }
    }
}

/// Hysteresis band of the period adaptation: a miss rate between the
/// goal and `goal * PERIOD_HYSTERESIS` is neither "well within acceptable
/// limits" (Algorithm 1's doubling case) nor "higher than expected" (the
/// 10% case), so the period holds. Without the band, a partition hovering
/// just above its goal is resized at the minimum period forever, and the
/// resulting allocate/withdraw churn itself keeps the miss rate inflated.
pub const PERIOD_HYSTERESIS: f64 = 1.5;

fn adapt_period(period: u64, initial: u64, miss_rate: f64, goal: f64) -> u64 {
    let initial = initial.max(1);
    let next = if miss_rate < goal {
        period.saturating_mul(2)
    } else if miss_rate > goal * PERIOD_HYSTERESIS {
        (period / 10).max(1)
    } else {
        period
    };
    next.clamp(
        (initial / MIN_PERIOD_FRACTION).max(1),
        initial.saturating_mul(MAX_PERIOD_FACTOR),
    )
}

/// Algorithm 1's per-partition decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Grow the partition by this many molecules (subject to free-pool
    /// availability).
    Grow(usize),
    /// Withdraw this many molecules.
    Shrink(usize),
    /// Leave the partition unchanged.
    Hold,
}

/// Minimum absolute miss-rate improvement a thrashing partition must
/// show for its last growth chunk before it is granted another one.
/// Algorithm 1's clamp (`max_allocation = last_allocation`) damps
/// thrash-growth; this makes the damping explicit, so an application with
/// pure compulsory misses (the paper's `mcf`) cannot convert the >50 %
/// branch into an unbounded land-grab "at the cost of performance of
/// other applications" (§3.4). Capacity-bound applications keep growing:
/// with Random/Randy replacement, added molecules lower their miss rate
/// window over window.
pub const GROWTH_IMPROVEMENT_EPS: f64 = 0.02;

/// Absolute window-to-window miss-rate *increase* that is read as a phase
/// change (§3.4's motivation for periodic resizing: working sets move).
/// A thrashing partition whose miss rate jumped this much since the last
/// window is granted growth even though it is not "improving" — without
/// this, a partition shrunk during a small-working-set phase would be
/// dead-locked at miss rate ≈ 1 when the program enters a larger phase
/// (stagnant-high is indistinguishable from compulsory-bound otherwise).
pub const PHASE_CHANGE_EPS: f64 = 0.10;

/// Fraction of the goal below which a partition is considered clearly
/// over-provisioned and starts giving molecules back. Window miss rates
/// are noisy; withdrawing on *any* below-goal sample lets a partition
/// that has converged onto its goal bleed molecules to neighbours one
/// noise sample at a time.
pub const SHRINK_MARGIN: f64 = 0.67;

/// Algorithm 1 (verbatim structure from the paper, with the two
/// `resize()` call sites interpreted as: grow *toward* the linear-model
/// target size, with the growth chunk capped by `max_allocation` and by
/// the most recent successful allocation when the partition is
/// thrashing).
///
/// * `miss_rate > 50 %` — partition is drowning: grow by a full chunk
///   (`max_allocation`, but never more than the last allocation granted,
///   per the paper's clamp) — provided the previous chunk actually
///   improved the miss rate (see [`GROWTH_IMPROVEMENT_EPS`]).
/// * `miss_rate < goal` — partition is over-provisioned: withdraw
///   `sqrt(current * miss_rate / goal)` molecules ("withdraw molecules
///   more slowly than you add — conservative").
/// * `miss_rate < last_miss_rate` — improving but above goal: the linear
///   cache-size/miss-rate model says the partition needs
///   `current * miss_rate / goal` molecules; grow toward that, capped.
/// * otherwise — hold (growth is not paying off).
///
/// ```
/// use molcache_core::resize::{algorithm1, Decision};
///
/// // Improving but above a 10% goal with 10 molecules: the linear model
/// // wants 10 * 0.30 / 0.10 = 30, so grow by 16 (the chunk cap).
/// assert_eq!(algorithm1(0.30, 0.10, 0.40, 10, 4, 16), Decision::Grow(16));
/// // Clearly below goal: withdraw sqrt(32 * 0.05 / 0.10) = 4.
/// assert_eq!(algorithm1(0.05, 0.10, 0.20, 32, 4, 16), Decision::Shrink(4));
/// ```
pub fn algorithm1(
    miss_rate: f64,
    goal: f64,
    last_miss_rate: f64,
    current: usize,
    last_allocation: usize,
    max_allocation: usize,
) -> Decision {
    debug_assert!(goal > 0.0);
    if miss_rate > 0.5 {
        let improving = miss_rate <= last_miss_rate - GROWTH_IMPROVEMENT_EPS;
        let first_window = last_miss_rate >= 1.0;
        let phase_change = miss_rate >= last_miss_rate + PHASE_CHANGE_EPS;
        if improving || first_window || phase_change {
            let chunk = max_allocation.min(last_allocation.max(1));
            Decision::Grow(chunk)
        } else {
            // Stagnant-high: growth is not converting into hits
            // (compulsory-miss bound) — stop feeding this partition.
            Decision::Hold
        }
    } else if miss_rate < goal * SHRINK_MARGIN {
        // Rounded *up*: a partition clearly below goal always gives back
        // at least one molecule (with miss_rate == 0 exactly, sqrt is 0
        // and the ceil stays 0 — a perfectly idle window holds).
        let temp = ((current as f64 * miss_rate) / goal).sqrt().ceil() as usize;
        if temp == 0 || current <= 1 {
            Decision::Hold
        } else {
            Decision::Shrink(temp.min(current - 1))
        }
    } else if miss_rate < goal {
        // Inside the dead band just under the goal: converged, hold.
        // Withdrawing here would only churn data and hand molecules to
        // whichever neighbour's window noise asks loudest.
        Decision::Hold
    } else if miss_rate < last_miss_rate {
        let target = ((current as f64 * miss_rate) / goal).ceil() as usize;
        if target <= current {
            Decision::Hold
        } else {
            Decision::Grow((target - current).min(max_allocation))
        }
    } else {
        Decision::Hold
    }
}

// ---- region allocation and the resize driver ---------------------------

use crate::cache::MolecularCache;
use crate::config::InitialAllocation;
use crate::ids::ClusterId;
use crate::region::Region;
use molcache_telemetry::ResizeKind;

impl MolecularCache {
    /// Creates `asid`'s region on first contact ("Ground Zero", §3.4):
    /// round-robin cluster and home-tile assignment, then the initial
    /// molecule grant. Idempotent for existing regions.
    pub(crate) fn ensure_region(&mut self, asid: Asid) {
        if self.regions.contains_key(&asid) {
            return;
        }
        let cluster_idx = self.cfg.app_cluster(asid).unwrap_or_else(|| {
            let c = self.next_cluster_rr % self.cfg.clusters();
            self.next_cluster_rr += 1;
            c
        });
        let tile_pos = self.next_tile_rr[cluster_idx] % self.cfg.tiles_per_cluster();
        self.next_tile_rr[cluster_idx] += 1;
        let home = self.clusters[cluster_idx].tiles()[tile_pos];

        let mut region = Region::new(
            asid,
            home,
            ClusterId(cluster_idx as u32),
            self.cfg.policy(),
            self.cfg.line_factor(asid),
            self.cfg.goal(asid),
            self.cfg.row_max(),
        );
        let want = match self.cfg.initial_allocation {
            InitialAllocation::HalfTile => self.cfg.tile_molecules() / 2,
            InitialAllocation::Molecules(n) => n,
        }
        .max(1);
        let granted = self.grant_molecules(&mut region, want);
        region.note_allocation(granted.max(1));
        self.resizer.register_app(asid);
        self.regions.insert(asid, region);
    }

    /// Takes up to `want` free molecules (home tile first, then the other
    /// tiles of the region's cluster), configures them into the region.
    pub(crate) fn grant_molecules(&mut self, region: &mut Region, want: usize) -> usize {
        let mut granted = 0;
        let home = region.home_tile();
        let cluster_tiles: Vec<crate::ids::TileId> =
            self.clusters[region.cluster().index()].tiles().to_vec();
        let order = std::iter::once(home).chain(cluster_tiles.into_iter().filter(|t| *t != home));
        for tid in order {
            while granted < want {
                let Some(id) = self.tiles[tid.index()].take_free() else {
                    break;
                };
                let flushed = self.configure_molecule(id, region.asid());
                self.activity.writebacks += flushed;
                region.add_molecule(id);
                granted += 1;
            }
            if granted >= want {
                break;
            }
        }
        if granted < want {
            self.failed_allocations += 1;
        }
        // Any change to the region's membership (and even a failed grant
        // round) is a structural event: drop every memoized location.
        self.note_structural_change();
        granted
    }

    pub(crate) fn resize_partition(&mut self, asid: Asid) -> (u64, u64) {
        let Some(region) = self.regions.get(&asid) else {
            return (0, 0);
        };
        let window = (region.window_accesses(), {
            let r = self.regions.get(&asid).expect("checked");
            (r.window_miss_rate() * r.window_accesses() as f64).round() as u64
        });
        if region.window_accesses() == 0 {
            // Idle partition: nothing to learn this window.
            return window;
        }
        let mr = region.window_miss_rate();
        let goal = region.goal();
        let last = region.last_miss_rate();
        let current = region.size();
        let last_alloc = region.last_allocation();
        let decision = algorithm1(
            mr,
            goal,
            last,
            current,
            last_alloc,
            self.cfg.max_allocation(),
        );
        match decision {
            Decision::Grow(n) => {
                let mut region = self.regions.remove(&asid).expect("present");
                let granted = self.grant_molecules(&mut region, n);
                region.note_allocation(granted);
                self.regions.insert(asid, region);
                self.publish_resize(asid, ResizeKind::Grow, n, granted, current, mr, goal);
            }
            Decision::Shrink(n) => {
                // The one shrink path, shared with the lifecycle API so
                // goal-driven and tenant-driven withdrawal bump the memo
                // generation identically (see `crate::lifecycle`).
                let removed = self.shrink_region(asid, n);
                self.publish_resize(asid, ResizeKind::Shrink, n, removed, current, mr, goal);
            }
            Decision::Hold => {}
        }
        // Close the window: store the observed miss rate, clear counters.
        let region = &self.regions[&asid];
        let molecules = &mut self.molecules;
        for id in region.molecules() {
            molecules[id.index()].reset_window_counters();
        }
        self.regions.get_mut(&asid).expect("present").close_window();
        window
    }

    pub(crate) fn resize_all(&mut self) {
        self.resize_rounds += 1;
        self.resize_partitions_touched += self.regions.len() as u64;
        let asids: Vec<Asid> = self.regions.keys().copied().collect();
        let mut total_accesses = 0u64;
        let mut total_misses = 0u64;
        let mut weighted_goal = 0.0;
        for asid in &asids {
            let goal = self.regions[asid].goal();
            let (acc, miss) = self.resize_partition(*asid);
            total_accesses += acc;
            total_misses += miss;
            weighted_goal += goal * acc as f64;
        }
        if total_accesses > 0 {
            let overall_mr = total_misses as f64 / total_accesses as f64;
            let goal = weighted_goal / total_accesses as f64;
            self.resizer.adapt_global(overall_mr, goal);
        }
    }

    pub(crate) fn resize_one(&mut self, asid: Asid) {
        self.resize_rounds += 1;
        self.resize_partitions_touched += 1;
        let Some(region) = self.regions.get(&asid) else {
            return;
        };
        let goal = region.goal();
        let mr = region.window_miss_rate();
        let had_window = region.window_accesses() > 0;
        self.resize_partition(asid);
        if had_window {
            self.resizer.adapt_app(asid, mr, goal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thrashing_partition_grows_by_chunk() {
        let d = algorithm1(0.9, 0.1, 0.95, 8, 8, 16);
        assert_eq!(d, Decision::Grow(8), "clamped by last allocation");
        let d2 = algorithm1(0.9, 0.1, 0.95, 8, 32, 16);
        assert_eq!(d2, Decision::Grow(16), "clamped by max allocation");
        // First window (last_miss_rate sentinel 1.0) always grows.
        assert_eq!(algorithm1(0.99, 0.1, 1.0, 8, 8, 16), Decision::Grow(8));
    }

    #[test]
    fn compulsory_miss_thrasher_stops_growing() {
        // A pointer-chasing partition whose miss rate does not improve
        // with added molecules must not monopolize the free pool.
        assert_eq!(algorithm1(0.68, 0.1, 0.68, 64, 16, 16), Decision::Hold);
        assert_eq!(algorithm1(0.68, 0.1, 0.69, 64, 16, 16), Decision::Hold);
        // A real capacity-bound thrasher (clear improvement) still grows.
        assert_eq!(algorithm1(0.60, 0.1, 0.70, 64, 16, 16), Decision::Grow(16));
    }

    #[test]
    fn phase_change_unlocks_growth() {
        // A partition that was comfortably at its goal (last window 0.08)
        // and suddenly thrashes (0.95) entered a larger phase: grow, even
        // though 0.95 is no "improvement" over 0.08.
        assert_eq!(algorithm1(0.95, 0.1, 0.08, 4, 4, 16), Decision::Grow(4));
        // A mild worsening inside the noise band stays held.
        assert_eq!(algorithm1(0.68, 0.1, 0.63, 64, 16, 16), Decision::Hold);
    }

    #[test]
    fn below_goal_withdraws_conservatively() {
        // current=32, mr=0.05, goal=0.1: sqrt(16) = 4.
        assert_eq!(algorithm1(0.05, 0.1, 0.2, 32, 4, 16), Decision::Shrink(4));
        // Near-zero miss rate: ceil keeps the withdrawal at one molecule.
        assert_eq!(algorithm1(0.0001, 0.1, 0.2, 16, 4, 16), Decision::Shrink(1));
        // Exactly zero: an idle window withdraws nothing.
        assert_eq!(algorithm1(0.0, 0.1, 0.2, 16, 4, 16), Decision::Hold);
    }

    #[test]
    fn shrink_never_empties_partition() {
        // current=2, mr=0.05, goal=0.1: clearly below goal -> shrink to
        // 1, never to 0.
        match algorithm1(0.05, 0.1, 0.5, 2, 1, 16) {
            Decision::Shrink(n) => assert!(n <= 1),
            other => panic!("expected shrink, got {other:?}"),
        }
        assert_eq!(algorithm1(0.05, 0.1, 0.5, 1, 1, 16), Decision::Hold);
    }

    #[test]
    fn dead_band_under_goal_holds() {
        // 0.09 is below the 0.10 goal but inside the dead band.
        assert_eq!(algorithm1(0.09, 0.1, 0.5, 32, 4, 16), Decision::Hold);
        // 0.05 is clearly below (0.05 < 0.067): withdraws.
        assert!(matches!(
            algorithm1(0.05, 0.1, 0.5, 32, 4, 16),
            Decision::Shrink(_)
        ));
    }

    #[test]
    fn improving_above_goal_grows_toward_linear_target() {
        // current=10, mr=0.3, goal=0.1 -> target 30, grow by 16 (cap).
        assert_eq!(algorithm1(0.3, 0.1, 0.4, 10, 4, 16), Decision::Grow(16));
        // Small gap: target 12, grow by 2.
        assert_eq!(algorithm1(0.12, 0.1, 0.2, 10, 4, 16), Decision::Grow(2));
    }

    #[test]
    fn stagnant_above_goal_holds() {
        assert_eq!(algorithm1(0.3, 0.1, 0.3, 10, 4, 16), Decision::Hold);
        assert_eq!(algorithm1(0.3, 0.1, 0.2, 10, 4, 16), Decision::Hold);
    }

    #[test]
    fn constant_trigger_fires_periodically() {
        let mut c = ResizeController::new(ResizeTrigger::Constant { period: 3 });
        let a = Asid::new(1);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        assert_eq!(c.on_access(a), ResizeEvent::AllPartitions);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        // Constant scheme ignores adaptation.
        c.adapt_global(0.9, 0.1);
        assert_eq!(c.period(), 3);
    }

    #[test]
    fn period_holds_inside_hysteresis_band() {
        let mut c = ResizeController::new(ResizeTrigger::GlobalAdaptive {
            initial_period: 100,
        });
        // Just above goal (0.12 vs 0.10): neither doubling nor slashing.
        c.adapt_global(0.12, 0.1);
        assert_eq!(c.period(), 100);
        // Well above the band: slashed.
        c.adapt_global(0.16, 0.1);
        assert_eq!(c.period(), 10);
    }

    #[test]
    fn global_adaptive_halves_and_doubles() {
        let mut c = ResizeController::new(ResizeTrigger::GlobalAdaptive {
            initial_period: 100,
        });
        c.adapt_global(0.5, 0.1); // missing the goal: x0.1
        assert_eq!(c.period(), 10);
        c.adapt_global(0.05, 0.1); // meeting: x2
        assert_eq!(c.period(), 20);
        // Lower clamp at initial/10.
        c.adapt_global(0.5, 0.1);
        c.adapt_global(0.5, 0.1);
        assert_eq!(c.period(), 10);
        // Upper clamp at 16x initial.
        for _ in 0..12 {
            c.adapt_global(0.01, 0.1);
        }
        assert_eq!(c.period(), 1600);
    }

    #[test]
    fn per_app_timers_are_independent() {
        let mut c = ResizeController::new(ResizeTrigger::PerAppAdaptive { initial_period: 2 });
        let a = Asid::new(1);
        let b = Asid::new(2);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        assert_eq!(c.on_access(b), ResizeEvent::None);
        assert_eq!(c.on_access(a), ResizeEvent::Partition(a));
        assert_eq!(c.on_access(b), ResizeEvent::Partition(b));
        c.adapt_app(a, 0.01, 0.1);
        assert_eq!(c.app_period(a), Some(4));
        assert_eq!(c.app_period(b), Some(2));
    }

    #[test]
    fn per_app_adaptation_requires_registration() {
        let mut c = ResizeController::new(ResizeTrigger::PerAppAdaptive { initial_period: 10 });
        // Adapting an unknown app is a no-op, not a panic.
        c.adapt_app(Asid::new(9), 0.5, 0.1);
        assert_eq!(c.app_period(Asid::new(9)), None);
    }
}
