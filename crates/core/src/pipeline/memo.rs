//! Stage 0 — the way/molecule memoization front-end (`memo-front`).
//!
//! The paper's access path pays an ASID gate over the whole home tile
//! plus a tag probe per gated molecule on *every* reference. Way
//! memoization observes that the common case re-touches a line whose
//! location is already known: a small direct-mapped array keyed by
//! (ASID, line) remembers the molecule that serviced the last hit, and
//! a memo hit jumps straight to that molecule's frame — one flat-array
//! probe instead of gate + scan.
//!
//! The structure is the classic lookup-cache shape: a fixed 509-slot
//! (largest prime below 512) direct-mapped array plus a **generation
//! counter**. Every structural mutation of the cache — region creation,
//! grow, shrink, teardown, re-homing, shared-bit changes — bumps the
//! generation, which implicitly invalidates every entry without touching
//! the array. Entries whose *line* merely got evicted or moved are
//! caught per-access by re-probing the memoized molecule's frame before
//! trusting it.
//!
//! **The bit-identity contract.** A memo hit must be observationally
//! indistinguishable from the full pipeline servicing the same request,
//! so only *home-tile hits in non-shared (region member) molecules* are
//! memoized. Within one generation that makes replay exact:
//!
//! * the home tile, the gate-match set and its size are all constant
//!   (anything that changes them bumps the generation), so the replayed
//!   [`StageTrace`](molcache_sim::StageTrace) counters — tile-capacity
//!   ASID compares, one tag probe per gated molecule — equal what the
//!   gate and probe stages would have recorded;
//! * the memoized member molecule is provably still the *first* gated
//!   molecule holding the line: a fill of the same line into another
//!   member invalidates this copy (the fill stage's no-duplicate
//!   protocol), and no shared molecule can acquire the line while the
//!   region is non-empty — so hit attribution, replacement recency and
//!   the dirty bit land exactly where the full scan would put them;
//! * latency is the constant hit path (`asid_stage_cycles +
//!   hit_latency`), identical to any home hit.
//!
//! Hit/miss/latency/energy statistics and telemetry JSON are therefore
//! byte-identical with the front-end on or off; the equivalence suites
//! and `memo_property` proptests enforce it. The memo's own counters are
//! reported out-of-band ([`MemoStats`], `molstat --memo`, molbench) and
//! never enter the canonical telemetry export.

use crate::cache::MolecularCache;
use crate::ids::MoleculeId;
use molcache_trace::{Asid, LineAddr};

/// Number of slots in the memo array: the largest prime below 512, so
/// the modulo spreads strided line addresses across all slots instead
/// of aliasing on power-of-two strides.
pub const MEMO_SLOTS: usize = 509;

/// Lifetime counters of the memoization front-end, for `molstat --memo`
/// and molbench's memo-hit-rate report.
///
/// Produced by `MolecularCache::memo_stats` when the crate is built with
/// the `memo-front` feature (`None` otherwise). These counters are
/// diagnostics only: they are deliberately kept out of the canonical
/// telemetry JSON export, which must stay byte-identical with the
/// front-end on or off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Whether the front-end is currently enabled (runtime toggle).
    pub enabled: bool,
    /// Accesses served entirely from the memo (gate + lookup + Ulmo
    /// stages bypassed).
    pub hits: u64,
    /// Lookups that found no usable entry (empty slot, key mismatch, or
    /// a stale generation).
    pub misses: u64,
    /// Lookups whose entry was current but whose line was no longer
    /// resident in the memoized molecule (evicted or invalidated since).
    pub stale: u64,
    /// Generation bumps (structural invalidations) so far.
    pub generation_bumps: u64,
    /// Current generation counter value.
    pub generation: u64,
    /// Capacity of the direct-mapped array.
    pub slots: usize,
}

impl MemoStats {
    /// Total front-end lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.stale
    }

    /// Fraction of lookups served from the memo (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// One slot of the memo array.
///
/// `generation == 0` marks a never-written slot: the table's counter
/// starts at 1 and only grows, so no live entry can carry 0.
#[cfg(feature = "memo-front")]
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    asid: u16,
    line: u64,
    molecule: MoleculeId,
    /// Size of the home tile's gate-match set when the entry was
    /// written — constant within a generation, replayed as the
    /// home-lookup stage's `tag_probes`.
    gate_count: u32,
    generation: u64,
}

#[cfg(feature = "memo-front")]
impl MemoEntry {
    const EMPTY: MemoEntry = MemoEntry {
        asid: 0,
        line: 0,
        molecule: MoleculeId(0),
        gate_count: 0,
        generation: 0,
    };
}

/// The direct-mapped memoization array a `memo-front` cache carries.
#[cfg(feature = "memo-front")]
#[derive(Debug, Clone)]
pub(crate) struct MemoTable {
    slots: Vec<MemoEntry>,
    /// Current generation; entries from older generations are dead.
    generation: u64,
    /// Runtime toggle (the feature compiles the machinery in; this
    /// decides whether the access path consults it).
    pub(crate) enabled: bool,
    hits: u64,
    misses: u64,
    stale: u64,
    generation_bumps: u64,
}

#[cfg(feature = "memo-front")]
impl Default for MemoTable {
    fn default() -> Self {
        MemoTable {
            slots: vec![MemoEntry::EMPTY; MEMO_SLOTS],
            generation: 1,
            enabled: true,
            hits: 0,
            misses: 0,
            stale: 0,
            generation_bumps: 0,
        }
    }
}

#[cfg(feature = "memo-front")]
impl MemoTable {
    /// The slot an (ASID, line) key maps to. The prime modulo does the
    /// scattering; folding the ASID in keeps co-resident applications
    /// streaming over the same lines from thrashing one slot.
    #[inline]
    fn slot_of(asid: Asid, line: LineAddr) -> usize {
        (line
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(asid.raw()))
            % MEMO_SLOTS as u64) as usize
    }

    /// Looks the key up; returns the memoized molecule and gate count on
    /// a current-generation key match. Counts a miss otherwise.
    #[inline]
    pub(crate) fn lookup(&mut self, asid: Asid, line: LineAddr) -> Option<(MoleculeId, u32)> {
        let e = &self.slots[Self::slot_of(asid, line)];
        if e.generation == self.generation && e.line == line.0 && e.asid == asid.raw() {
            Some((e.molecule, e.gate_count))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Books a verified memo hit.
    #[inline]
    pub(crate) fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Books a stale entry (line no longer resident) and clears it so
    /// the slot stops re-verifying a dead location.
    #[inline]
    pub(crate) fn note_stale(&mut self, asid: Asid, line: LineAddr) {
        self.stale += 1;
        self.slots[Self::slot_of(asid, line)] = MemoEntry::EMPTY;
    }

    /// Writes an entry for a home-tile member hit.
    #[inline]
    pub(crate) fn insert(
        &mut self,
        asid: Asid,
        line: LineAddr,
        molecule: MoleculeId,
        gate_count: u32,
    ) {
        self.slots[Self::slot_of(asid, line)] = MemoEntry {
            asid: asid.raw(),
            line: line.0,
            molecule,
            gate_count,
            generation: self.generation,
        };
    }

    /// Invalidates every entry by advancing the generation (structural
    /// change: any grant/shrink/release/re-home/shared-bit flip).
    #[inline]
    pub(crate) fn bump_generation(&mut self) {
        self.generation += 1;
        self.generation_bumps += 1;
    }

    /// Clears the lifetime counters (entries and generation survive, as
    /// cache contents survive a statistics reset).
    pub(crate) fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.stale = 0;
        self.generation_bumps = 0;
    }

    /// Lifetime memo hits since the last statistics reset (feeds the
    /// per-epoch delta in [`EpochActivity::memo_hits`](molcache_telemetry::EpochActivity)).
    #[inline]
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// The current counters as a [`MemoStats`].
    pub(crate) fn stats(&self) -> MemoStats {
        MemoStats {
            enabled: self.enabled,
            hits: self.hits,
            misses: self.misses,
            stale: self.stale,
            generation_bumps: self.generation_bumps,
            generation: self.generation,
            slots: MEMO_SLOTS,
        }
    }
}

impl MolecularCache {
    /// Enables or disables the memoization front-end at runtime.
    ///
    /// The toggle exists so one binary can compare memo-on and memo-off
    /// runs (the equivalence suites and `molbench --no-memo` do); it
    /// flushes the table on any change, and is a no-op without the
    /// `memo-front` feature.
    pub fn set_memo_front(&mut self, enabled: bool) {
        #[cfg(feature = "memo-front")]
        {
            if self.memo.enabled != enabled {
                self.memo.bump_generation();
                self.memo.enabled = enabled;
            }
        }
        #[cfg(not(feature = "memo-front"))]
        let _ = enabled;
    }

    /// Whether the memoization front-end is compiled in *and* enabled.
    pub fn memo_front_enabled(&self) -> bool {
        #[cfg(feature = "memo-front")]
        {
            self.memo.enabled
        }
        #[cfg(not(feature = "memo-front"))]
        false
    }

    /// The front-end's lifetime counters, when the `memo-front` feature
    /// is compiled in; `None` otherwise (callers render a `-`).
    pub fn memo_stats(&self) -> Option<MemoStats> {
        #[cfg(feature = "memo-front")]
        {
            Some(self.memo.stats())
        }
        #[cfg(not(feature = "memo-front"))]
        None
    }

    /// Whether a memo lookup for (`asid`, `line`) would find a
    /// current-generation entry (diagnostics: the `memo_property` suite
    /// asserts no entry survives a generation bump). Does not verify
    /// residency and perturbs nothing.
    pub fn memo_would_hit(&self, asid: Asid, line: LineAddr) -> bool {
        #[cfg(feature = "memo-front")]
        {
            let e = &self.memo.slots[MemoTable::slot_of(asid, line)];
            e.generation == self.memo.generation && e.line == line.0 && e.asid == asid.raw()
        }
        #[cfg(not(feature = "memo-front"))]
        {
            let _ = (asid, line);
            false
        }
    }

    /// Memoizes a home-tile hit for the next access to the same line.
    ///
    /// Shared-molecule hits are not memoized: a shared molecule's copy
    /// can be shadowed by a later member fill of the same line without
    /// this copy being invalidated, which would break first-match
    /// replay. Member copies cannot (the fill stage invalidates
    /// duplicates region-wide), so member hits replay exactly.
    #[cfg(feature = "memo-front")]
    #[inline]
    pub(crate) fn memo_note_home_hit(&mut self, asid: Asid, line: LineAddr, hit_mol: MoleculeId) {
        if self.memo.enabled && !self.tags.is_shared(hit_mol) {
            let gate_count = self.gate.count();
            self.memo.insert(asid, line, hit_mol, gate_count);
        }
    }
}

#[cfg(all(test, feature = "memo-front"))]
mod tests {
    use super::*;

    #[test]
    fn empty_table_misses() {
        let mut t = MemoTable::default();
        assert_eq!(t.lookup(Asid::new(1), LineAddr(5)), None);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let mut t = MemoTable::default();
        t.insert(Asid::new(1), LineAddr(5), MoleculeId(7), 3);
        assert_eq!(
            t.lookup(Asid::new(1), LineAddr(5)),
            Some((MoleculeId(7), 3))
        );
        // Same line, different ASID: distinct key.
        assert_eq!(t.lookup(Asid::new(2), LineAddr(5)), None);
    }

    #[test]
    fn generation_bump_kills_every_entry() {
        let mut t = MemoTable::default();
        for i in 0..1000u64 {
            t.insert(Asid::new(1), LineAddr(i), MoleculeId(0), 1);
        }
        t.bump_generation();
        for i in 0..1000u64 {
            assert_eq!(t.lookup(Asid::new(1), LineAddr(i)), None, "line {i}");
        }
        assert_eq!(t.stats().generation_bumps, 1);
    }

    #[test]
    fn stale_note_clears_the_slot() {
        let mut t = MemoTable::default();
        t.insert(Asid::new(1), LineAddr(5), MoleculeId(7), 3);
        t.note_stale(Asid::new(1), LineAddr(5));
        assert_eq!(t.lookup(Asid::new(1), LineAddr(5)), None);
        let s = t.stats();
        assert_eq!((s.stale, s.misses), (1, 1));
    }

    #[test]
    fn stats_hit_rate() {
        let mut t = MemoTable::default();
        t.insert(Asid::new(1), LineAddr(0), MoleculeId(0), 1);
        assert!(t.lookup(Asid::new(1), LineAddr(0)).is_some());
        t.note_hit();
        assert_eq!(t.lookup(Asid::new(1), LineAddr(1)), None);
        let s = t.stats();
        assert_eq!(s.lookups(), 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let empty = MemoStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn slot_spread_covers_the_table() {
        // Power-of-two strides must not alias onto a handful of slots.
        let mut used = std::collections::HashSet::new();
        for i in 0..MEMO_SLOTS as u64 {
            used.insert(MemoTable::slot_of(Asid::new(1), LineAddr(i * 64)));
        }
        assert!(
            used.len() > MEMO_SLOTS / 2,
            "stride aliasing: {}",
            used.len()
        );
    }
}
