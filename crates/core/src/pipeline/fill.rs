//! Stage 5 — the block fill (§3.2).
//!
//! A miss fetches the `line_factor`-line block containing the requested
//! line and lands it in consecutive frames of the single victim molecule
//! (consecutive lines map to consecutive frames, so an enlarged line
//! size never straddles molecules or replacement rows). Stale copies of
//! the block's lines elsewhere in the region are invalidated so a block
//! fill never duplicates a line, and every dirty eviction or
//! invalidation is counted as a writeback.
//!
//! The stage owns the fill/writeback counters: `Activity::line_fills`
//! and `Activity::writebacks` are incremented here (and by the
//! non-pipeline writeback sources — region shrink and teardown flushes —
//! which the energy model also prices as fill-stage traffic).

use crate::cache::MolecularCache;
use crate::ids::MoleculeId;
use molcache_sim::StageTrace;
use molcache_trace::{Asid, LineAddr};

impl MolecularCache {
    /// Fills the `line_factor`-line block containing `line` into the
    /// victim molecule. Each line landed counts one frame touched on
    /// `trace`. Returns whether any writeback occurred.
    ///
    /// The no-duplicate invalidation scan over the region's members is
    /// skipped for the requested line itself: by the time this stage
    /// runs, no member molecule can hold it. Every member sits either on
    /// the home tile — where the ASID gate matched it and the probe
    /// stage checked it — or on a tile of Ulmo's search list (the list
    /// covers exactly the tiles holding members), where the cross-tile
    /// search gated and probed it; had any held the line, the access
    /// would have hit and never reached fill. Shared molecules were
    /// never part of this scan (it walks region members only), and no
    /// structural change can intervene between lookup and fill within
    /// one access, so the skip is exact. With the default
    /// `line_factor == 1` the entire per-miss member walk disappears;
    /// for `k > 1` the other block lines still scan, in the same member
    /// order as before.
    pub(crate) fn fill_block(
        &mut self,
        region_asid: Asid,
        victim: MoleculeId,
        line: LineAddr,
        is_write: bool,
        trace: &mut StageTrace,
    ) -> bool {
        // Disjoint field borrows: membership is read straight from the
        // region while tags/activity mutate — no collected id list.
        let region = &self.regions[&region_asid];
        let tags = &mut self.tags;
        let activity = &mut self.activity;
        let k = region.line_factor() as u64;
        let block_start = LineAddr(line.0 - line.0 % k);
        let mut writeback = false;
        for j in 0..k {
            let l = LineAddr(block_start.0 + j);
            if l != line {
                // Invalidate stale copies elsewhere in the region so
                // that a block fill never duplicates a line.
                for id in region.molecules() {
                    if id != victim {
                        if let Some(dirty) = tags.invalidate(id, l) {
                            writeback |= dirty;
                            if dirty {
                                activity.writebacks += 1;
                            }
                        }
                    }
                }
            }
            let dirty_fill = is_write && l == line;
            let evicted_dirty = tags.fill(victim, l, dirty_fill);
            if evicted_dirty {
                activity.writebacks += 1;
            }
            writeback |= evicted_dirty;
            activity.line_fills += 1;
            trace.frames_touched += 1;
        }
        writeback
    }
}
