//! Stage 5 — the block fill (§3.2).
//!
//! A miss fetches the `line_factor`-line block containing the requested
//! line and lands it in consecutive frames of the single victim molecule
//! (consecutive lines map to consecutive frames, so an enlarged line
//! size never straddles molecules or replacement rows). Stale copies of
//! the block's lines elsewhere in the region are invalidated so a block
//! fill never duplicates a line, and every dirty eviction or
//! invalidation is counted as a writeback.
//!
//! The stage owns the fill/writeback counters: `Activity::line_fills`
//! and `Activity::writebacks` are incremented here (and by the
//! non-pipeline writeback sources — region shrink and teardown flushes —
//! which the energy model also prices as fill-stage traffic).

use crate::cache::MolecularCache;
use crate::ids::MoleculeId;
use molcache_sim::StageTrace;
use molcache_trace::{Asid, LineAddr};

impl MolecularCache {
    /// Fills the `line_factor`-line block containing `line` into the
    /// victim molecule. Each line landed counts one frame touched on
    /// `trace`. Returns whether any writeback occurred.
    pub(crate) fn fill_block(
        &mut self,
        region_asid: Asid,
        victim: MoleculeId,
        line: LineAddr,
        is_write: bool,
        trace: &mut StageTrace,
    ) -> bool {
        let k = self.regions[&region_asid].line_factor() as u64;
        let block_start = LineAddr(line.0 - line.0 % k);
        let member_ids: Vec<MoleculeId> = self.regions[&region_asid].molecules().collect();
        let mut writeback = false;
        for j in 0..k {
            let l = LineAddr(block_start.0 + j);
            // Invalidate stale copies elsewhere in the region so that a
            // block fill never duplicates a line.
            for id in &member_ids {
                if *id != victim {
                    if let Some(dirty) = self.tags.invalidate(*id, l) {
                        writeback |= dirty;
                        if dirty {
                            self.activity.writebacks += 1;
                        }
                    }
                }
            }
            let dirty_fill = is_write && l == line;
            let evicted_dirty = self.tags.fill(victim, l, dirty_fill);
            if evicted_dirty {
                self.activity.writebacks += 1;
            }
            writeback |= evicted_dirty;
            self.activity.line_fills += 1;
            trace.frames_touched += 1;
        }
        writeback
    }
}
