//! Stage 4 — victim selection (§3.3).
//!
//! On a miss the replacement view of the region picks the molecule to
//! fill into. The Random / Randy / LRU-Direct policies live behind the
//! [`VictimPolicy`] trait; [`Region::select_victim`] dispatches through
//! it. The raw random draw comes from whatever generator the cache
//! models in hardware — the cheap, correlated [`Lfsr16`] by default.
//!
//! Selection is pure bookkeeping that overlaps the miss handling, so the
//! stage contributes zero cycles to the access latency and leaves its
//! [`StageTrace`](molcache_sim::StageTrace) empty; it exists as a stage
//! because it sits between lookup and fill in the hardware pipeline and
//! because its draw order is part of the bit-identical contract (one
//! draw per miss, consumed even when the region turns out to be empty,
//! plus one LFSR draw for the shared-molecule fallback).

use crate::cache::MolecularCache;
use crate::config::{RegionPolicy, VictimRng};
use crate::ids::{MoleculeId, TileId};
use crate::region::Region;
use molcache_trace::{Address, Asid};

/// A 16-bit Galois LFSR (taps 16, 14, 13, 11 — maximal length), the
/// kind of generator a cache controller implements in a handful of
/// flip-flops. Its draws are cheap but correlated: consecutive values
/// differ by one shift, which is precisely the low-entropy behaviour the
/// paper blames for Random replacement's load imbalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR from a seed (zero is mapped to a non-zero state).
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Advances one step and returns the 16-bit state.
    pub fn next_u16(&mut self) -> u16 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= 0xB400; // taps 16,14,13,11
        }
        self.state
    }
}

/// A replacement policy over a region's replacement view (Figure 4's 2-D
/// sparse matrix of rows with non-uniform molecule counts).
///
/// `draw` is one raw random value from the victim RNG; policies that do
/// not need it (LRU-Direct) ignore it, but the driver consumes a draw
/// per miss regardless so that switching policies never perturbs the
/// RNG stream of unrelated decisions.
pub trait VictimPolicy {
    /// The policy's display name.
    fn name(&self) -> &'static str;

    /// Picks the victim molecule, updating the view's replacement
    /// bookkeeping (row miss counters). Returns `None` when the region
    /// has no molecules.
    fn select(
        &self,
        region: &mut Region,
        addr: Address,
        molecule_size: u64,
        draw: u64,
    ) -> Option<MoleculeId>;
}

/// Random replacement: the draw selects uniformly over the whole region
/// (a single replacement row).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomVictim;

impl VictimPolicy for RandomVictim {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn select(
        &self,
        region: &mut Region,
        _addr: Address,
        _molecule_size: u64,
        draw: u64,
    ) -> Option<MoleculeId> {
        if region.rows.is_empty() {
            return None;
        }
        let all = &region.rows[0];
        Some(all[(draw % all.len() as u64) as usize])
    }
}

/// Randy: the address deterministically picks the row, the draw only
/// picks within the row — which is why Randy "reduces the reliance on
/// random numbers" (§3.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandyVictim;

impl VictimPolicy for RandyVictim {
    fn name(&self) -> &'static str {
        "Randy"
    }

    fn select(
        &self,
        region: &mut Region,
        addr: Address,
        molecule_size: u64,
        draw: u64,
    ) -> Option<MoleculeId> {
        if region.rows.is_empty() {
            return None;
        }
        let row_max = region.rows.len() as u64;
        let row = ((addr.raw() / molecule_size) % row_max) as usize;
        region.row_misses[row] += 1;
        let candidates = &region.rows[row];
        Some(candidates[(draw % candidates.len() as u64) as usize])
    }
}

/// LRU-Direct: Randy's direct row mapping with true LRU within the row
/// (the draw is ignored).
#[derive(Debug, Clone, Copy, Default)]
pub struct LruDirectVictim;

impl VictimPolicy for LruDirectVictim {
    fn name(&self) -> &'static str {
        "LRU-Direct"
    }

    fn select(
        &self,
        region: &mut Region,
        addr: Address,
        molecule_size: u64,
        _draw: u64,
    ) -> Option<MoleculeId> {
        if region.rows.is_empty() {
            return None;
        }
        let row_max = region.rows.len() as u64;
        let row = ((addr.raw() / molecule_size) % row_max) as usize;
        region.row_misses[row] += 1;
        let candidates = &region.rows[row];
        candidates
            .iter()
            .copied()
            .min_by_key(|id| region.recency.get(id).copied().unwrap_or(0))
    }
}

/// The [`VictimPolicy`] implementation for a configured policy.
pub fn policy_of(policy: RegionPolicy) -> &'static dyn VictimPolicy {
    match policy {
        RegionPolicy::Random => &RandomVictim,
        RegionPolicy::Randy => &RandyVictim,
        RegionPolicy::LruDirect => &LruDirectVictim,
    }
}

impl MolecularCache {
    /// Runs the victim-selection stage for a miss by `asid` on `addr`.
    ///
    /// One draw is consumed from the configured victim RNG *before* the
    /// region is consulted (the hardware generator free-runs whether or
    /// not the region turns out to be empty). If the region owns no
    /// molecules, falls back to the home tile's shared molecules — §3.1's
    /// shared bit accepts fills from every application — indexed by a
    /// second, LFSR draw. Returns `None` when there is no shared
    /// fallback either (the request will bypass the cache).
    pub(crate) fn victim_select(
        &mut self,
        asid: Asid,
        addr: Address,
        home: TileId,
    ) -> Option<MoleculeId> {
        let draw = match self.cfg.victim_rng() {
            VictimRng::Lfsr16 => self.lfsr.next_u16() as u64,
            VictimRng::HighQuality => self.rng.next_u64(),
        };
        let molecule_size = self.cfg.molecule_size();
        let region = self.regions.get_mut(&asid).expect("region");
        let victim = region.select_victim(addr, molecule_size, draw);
        victim.or_else(|| {
            // Shared molecules occupy known positions of the packed
            // shared-bit words (ids are tile-contiguous), so the
            // fallback pool is counted and indexed straight off the
            // bitmask — no collected candidate list. `nth_shared` walks
            // ascending ids, the same order the old collect produced, so
            // the LFSR draw picks the identical molecule.
            let tile = &self.tiles[home.index()];
            let (base, cap) = (tile.molecule_base(), tile.capacity());
            let n = self.tags.count_shared(base, cap);
            if n == 0 {
                None
            } else {
                let k = (self.lfsr.next_u16() as usize) % n;
                Some(self.tags.nth_shared(base, cap, k))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClusterId;

    fn region(policy: RegionPolicy) -> Region {
        Region::new(Asid::new(1), TileId(0), ClusterId(0), policy, 1, 0.1, 4)
    }

    #[test]
    fn policy_of_matches_names() {
        assert_eq!(policy_of(RegionPolicy::Random).name(), "Random");
        assert_eq!(policy_of(RegionPolicy::Randy).name(), "Randy");
        assert_eq!(policy_of(RegionPolicy::LruDirect).name(), "LRU-Direct");
    }

    #[test]
    fn policies_agree_with_region_dispatch() {
        for policy in [
            RegionPolicy::Random,
            RegionPolicy::Randy,
            RegionPolicy::LruDirect,
        ] {
            let mut via_region = region(policy);
            let mut via_trait = region(policy);
            for i in 0..4 {
                via_region.add_molecule(MoleculeId(i));
                via_trait.add_molecule(MoleculeId(i));
            }
            for i in 0..32u64 {
                let addr = Address::new(i * 4096);
                let a = via_region.select_victim(addr, 8192, i * 7);
                let b = policy_of(policy).select(&mut via_trait, addr, 8192, i * 7);
                assert_eq!(a, b, "{policy:?} draw {i}");
            }
        }
    }

    #[test]
    fn empty_region_yields_no_victim() {
        for policy in [
            RegionPolicy::Random,
            RegionPolicy::Randy,
            RegionPolicy::LruDirect,
        ] {
            let mut r = region(policy);
            assert_eq!(
                policy_of(policy).select(&mut r, Address::new(0), 8192, 3),
                None
            );
        }
    }
}
