//! The staged access pipeline (§3 of the paper, one module per stage).
//!
//! A molecular cache services a request through an explicit hardware
//! pipeline, and this module tree mirrors it one file per stage:
//!
//! 0. [`memo`] — the optional (`memo-front`, default-on) way/molecule
//!    memoization front-end: a 509-slot direct-mapped array keyed by
//!    (ASID, line) that remembers the last hit location; a memo hit
//!    bypasses stages 1–3 while replaying their exact counters.
//! 1. [`asid_gate`] — the §3.1 ASID-compare stage: every molecule of the
//!    addressed tile compares the requestor's ASID, and only matching
//!    molecules proceed to tag lookup. This is the dynamic-power lever —
//!    non-matching molecules never burn tag/data energy.
//! 2. [`home_lookup`] — the tag-probe stage over the gated molecules of
//!    the home tile.
//! 3. [`ulmo_search`] — Ulmo's cross-tile search: when the home tile
//!    misses, remote tiles of the cluster holding region molecules are
//!    gated and probed in turn.
//! 4. [`victim`] — victim selection on a miss: the Random/Randy/
//!    LRU-Direct policies behind the [`VictimPolicy`] trait, the victim
//!    RNGs ([`Lfsr16`]), and the §3.1 shared-molecule fallback.
//! 5. [`fill`] — the block fill: line-factor prefetch into consecutive
//!    frames of the victim molecule, stale-copy invalidation, and
//!    writeback accounting.
//!
//! Each stage consumes and produces a typed
//! [`StageTrace`](molcache_sim::StageTrace);
//! [`MolecularCache::service`](crate::MolecularCache) is a thin driver
//! that sequences the stages and assembles the traces into the
//! [`StageBreakdown`](molcache_sim::StageBreakdown) carried on every
//! [`AccessOutcome`](molcache_sim::AccessOutcome). The contract the
//! driver keeps — and the determinism tests enforce — is that the staged
//! decomposition is *observationally free*: stats, latencies and activity
//! counters are bit-identical to the pre-pipeline monolith, and the stage
//! cycles of every access sum exactly to its reported latency.
//!
//! [`invariants`] holds cross-stage structural checks and diagnostics
//! (no line resident twice within a region, block-fill placement).

pub mod asid_gate;
pub mod fill;
pub mod home_lookup;
pub mod invariants;
pub mod memo;
pub mod ulmo_search;
pub mod victim;

pub use memo::MemoStats;
pub use victim::{Lfsr16, LruDirectVictim, RandomVictim, RandyVictim, VictimPolicy};
