//! Stage 3 — Ulmo's cross-tile search.
//!
//! When the home tile misses, Ulmo walks the remote tiles of the cluster
//! that hold molecules of the requesting region, gating and probing each
//! in turn until a tile hits or the list is exhausted. The stage is
//! launched only when the region actually spans tiles; an unlaunched
//! search leaves its [`StageTrace`] all-zero, so the stage cycles of the
//! access still sum exactly to its latency.

use crate::cache::MolecularCache;
use crate::ids::{MoleculeId, TileId};
use crate::region::Region;
use molcache_sim::StageTrace;
use molcache_trace::{Asid, LineAddr};

impl MolecularCache {
    /// Remote tiles of the cluster holding molecules of this region
    /// (Ulmo's search list), excluding the home tile — derived fresh
    /// from membership. The reference implementation the cached lists
    /// of [`crate::search_list`] must agree with; the hot path uses the
    /// cache, diagnostics and rebuild-equivalence tests use this.
    pub(crate) fn remote_tiles(&self, region: &Region) -> Vec<TileId> {
        let home = region.home_tile();
        let mut tiles: Vec<TileId> = region
            .molecules()
            .map(|id| self.molecules[id.index()].tile())
            .filter(|t| *t != home)
            .collect();
        tiles.sort_unstable();
        tiles.dedup();
        tiles
    }

    /// Runs the Ulmo stage for `asid` after a home-tile miss.
    ///
    /// If the region spans remote tiles the search launches: the Ulmo
    /// penalty is charged to `trace.cycles`, `ulmo_searches` is counted,
    /// and each remote tile is ASID-gated and tag-probed (compares and
    /// probes land in `trace`) until one hits. Returns the hit molecule,
    /// or `None` on a cache-wide miss or when no search was launched
    /// (distinguishable by `trace.cycles`).
    ///
    /// The search list comes from the region's cached [`TileList`]
    /// (`crate::search_list`), rebuilt here only when its generation
    /// stamp is stale — one membership walk per structural change
    /// instead of one allocation + sort per miss. With the cache
    /// disabled the stamp is pinned to the never-current 0, so every
    /// launched search rebuilds (the pre-cache behaviour).
    ///
    /// [`TileList`]: crate::search_list::TileList
    pub(crate) fn ulmo_search(
        &mut self,
        asid: Asid,
        line: LineAddr,
        is_write: bool,
        trace: &mut StageTrace,
    ) -> Option<MoleculeId> {
        let generation = if self.search_cache_enabled {
            self.structure_generation
        } else {
            0
        };
        // Disjoint field borrows: membership is read from the region
        // while the list inside the same region is rewritten — no
        // intermediate collect needed.
        let molecules = &self.molecules;
        let region = self.regions.get_mut(&asid).expect("region");
        if generation == 0 || region.search_generation() != generation {
            region.rebuild_search_list(generation, |id| molecules[id.index()].tile());
        }
        let tiles = region.search_tiles().len();
        if tiles == 0 {
            return None;
        }
        self.activity.ulmo_searches += 1;
        trace.cycles += self.cfg.ulmo_penalty;
        for i in 0..tiles {
            // Re-fetch through the dense region table each iteration:
            // `asid_gate`/`probe_gated` need `&mut self`, so the list
            // cannot stay borrowed across them. The table lookup is one
            // array index, and the list cannot change mid-search (gating
            // and probing are structurally read-only).
            let tile = self.regions[&asid].search_tiles()[i];
            self.asid_gate(tile, asid, trace);
            if let Some(hit_mol) = self.probe_gated(line, is_write, trace) {
                return Some(hit_mol);
            }
        }
        None
    }
}
