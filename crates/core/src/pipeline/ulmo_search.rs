//! Stage 3 — Ulmo's cross-tile search.
//!
//! When the home tile misses, Ulmo walks the remote tiles of the cluster
//! that hold molecules of the requesting region, gating and probing each
//! in turn until a tile hits or the list is exhausted. The stage is
//! launched only when the region actually spans tiles; an unlaunched
//! search leaves its [`StageTrace`] all-zero, so the stage cycles of the
//! access still sum exactly to its latency.

use crate::cache::MolecularCache;
use crate::ids::{MoleculeId, TileId};
use crate::region::Region;
use molcache_sim::StageTrace;
use molcache_trace::{Asid, LineAddr};

impl MolecularCache {
    /// Remote tiles of the cluster holding molecules of this region
    /// (Ulmo's search list), excluding the home tile.
    pub(crate) fn remote_tiles(&self, region: &Region) -> Vec<TileId> {
        let home = region.home_tile();
        let mut tiles: Vec<TileId> = region
            .molecules()
            .map(|id| self.molecules[id.index()].tile())
            .filter(|t| *t != home)
            .collect();
        tiles.sort_unstable();
        tiles.dedup();
        tiles
    }

    /// Runs the Ulmo stage for `asid` after a home-tile miss.
    ///
    /// If the region spans remote tiles the search launches: the Ulmo
    /// penalty is charged to `trace.cycles`, `ulmo_searches` is counted,
    /// and each remote tile is ASID-gated and tag-probed (compares and
    /// probes land in `trace`) until one hits. Returns the hit molecule,
    /// or `None` on a cache-wide miss or when no search was launched
    /// (distinguishable by `trace.cycles`).
    pub(crate) fn ulmo_search(
        &mut self,
        asid: Asid,
        line: LineAddr,
        is_write: bool,
        trace: &mut StageTrace,
    ) -> Option<MoleculeId> {
        let remote = {
            let region = &self.regions[&asid];
            self.remote_tiles(region)
        };
        if remote.is_empty() {
            return None;
        }
        self.activity.ulmo_searches += 1;
        trace.cycles += self.cfg.ulmo_penalty;
        for tile in remote {
            self.asid_gate(tile, asid, trace);
            if let Some(hit_mol) = self.probe_gated(line, is_write, trace) {
                return Some(hit_mol);
            }
        }
        None
    }
}
