//! Cross-stage structural invariants and placement diagnostics.
//!
//! The pipeline stages each touch a slice of the cache's state; the
//! checks here span stages and validate what no single stage can see on
//! its own — chiefly that the fill stage's invalidate-then-fill protocol
//! keeps every line resident in at most one molecule of its region, and
//! where a block fill actually landed (used by the line-factor property
//! tests).

use crate::cache::MolecularCache;
use crate::ids::MoleculeId;
use molcache_trace::{Asid, LineAddr};

impl MolecularCache {
    /// Checks the structural invariant that no line is resident in more
    /// than one molecule of the same region (diagnostics / property
    /// tests). Returns an ASID owning a duplicated line, if any.
    ///
    /// One pass over every molecule: resident lines are keyed by
    /// `(owning ASID, line)` in a hash set, so the scan is linear in the
    /// cache's resident lines instead of quadratic per region. Free and
    /// shared molecules carry [`Asid::NONE`] and are skipped — they
    /// belong to no region, exactly as the per-region scan never visited
    /// them.
    pub fn find_duplicate_line(&self) -> Option<Asid> {
        let mut seen: std::collections::HashSet<(Asid, LineAddr)> =
            std::collections::HashSet::new();
        for m in &self.molecules {
            let asid = self.tags.asid_of(m.id());
            if asid == Asid::NONE {
                continue;
            }
            for line in self.tags.resident_lines(m.id()) {
                if !seen.insert((asid, line)) {
                    return Some(asid);
                }
            }
        }
        None
    }

    /// The region molecule of `asid` in which `line` is resident, if any
    /// (diagnostics; does not consult shared molecules).
    pub fn resident_molecule_of(&self, asid: Asid, line: LineAddr) -> Option<MoleculeId> {
        let region = self.regions.get(&asid)?;
        region.molecules().find(|id| self.tags.lookup(*id, line))
    }

    /// The frame of `molecule` in which `line` is resident, if any
    /// (diagnostics: frames map lines direct-mapped, `line % frames`).
    pub fn resident_frame_of(&self, molecule: MoleculeId, line: LineAddr) -> Option<usize> {
        self.tags
            .lookup(molecule, line)
            .then(|| (line.0 % self.tags.frames_per_molecule() as u64) as usize)
    }

    /// The replacement-view row of `molecule` within `asid`'s region, if
    /// it is a member (diagnostics: Randy's victim-row boundaries).
    pub fn region_row_of(&self, asid: Asid, molecule: MoleculeId) -> Option<usize> {
        let region = self.regions.get(&asid)?;
        (0..region.num_rows()).find(|&i| region.row(i).contains(&molecule))
    }
}
