//! Stage 2 — the tag probe over the gated molecules.
//!
//! The molecules that passed the [`asid_gate`](crate::pipeline::asid_gate)
//! probe their tag arrays in parallel for the requested line. In the home
//! tile this *is* the home-lookup stage; Ulmo's cross-tile search
//! ([`ulmo_search`](crate::pipeline::ulmo_search)) reuses the same
//! machinery once per remote tile, charging its probes to its own trace.

use crate::cache::MolecularCache;
use crate::ids::MoleculeId;
use molcache_sim::StageTrace;
use molcache_trace::LineAddr;

impl MolecularCache {
    /// Probes the gated molecules (left in `gate_matches` by the ASID
    /// gate) for `line`, charging one tag probe per gated molecule to
    /// `trace`. On a hit the molecule's line state is updated (touch or
    /// mark-dirty) and its id returned.
    pub(crate) fn probe_gated(
        &mut self,
        line: LineAddr,
        is_write: bool,
        trace: &mut StageTrace,
    ) -> Option<MoleculeId> {
        let mut found = None;
        for k in 0..self.gate_matches.len() {
            let id = self.gate_matches[k];
            trace.tag_probes += 1;
            if found.is_some() {
                // Remaining matching molecules still burn probe energy in
                // the hardware's parallel lookup, but cannot also hit: a
                // line is resident in at most one molecule.
                continue;
            }
            if self.tags.probe(id, line, is_write) {
                self.molecules[id.index()].record_hit();
                found = Some(id);
            }
        }
        found
    }
}
