//! Stage 2 — the tag probe over the gated molecules.
//!
//! The molecules that passed the [`asid_gate`](crate::pipeline::asid_gate)
//! probe their tag arrays in parallel for the requested line. In the home
//! tile this *is* the home-lookup stage; Ulmo's cross-tile search
//! ([`ulmo_search`](crate::pipeline::ulmo_search)) reuses the same
//! machinery once per remote tile, charging its probes to its own trace.

use crate::cache::MolecularCache;
use crate::ids::MoleculeId;
use molcache_sim::StageTrace;
use molcache_trace::LineAddr;

impl MolecularCache {
    /// Probes the gated molecules (the bitmask left in `gate` by the
    /// ASID gate) for `line`, charging one tag probe per gated molecule
    /// to `trace`. On a hit the molecule's line state is updated (touch
    /// or mark-dirty) and its id returned.
    ///
    /// All gated molecules burn probe energy in the hardware's parallel
    /// lookup whether or not one hits, so the probe count is charged up
    /// front from the mask's popcount; the bit walk itself can then
    /// return on the first hit (a line is resident in at most one
    /// molecule, so no later bit could also hit).
    pub(crate) fn probe_gated(
        &mut self,
        line: LineAddr,
        is_write: bool,
        trace: &mut StageTrace,
    ) -> Option<MoleculeId> {
        trace.tag_probes += self.gate.count();
        let base = self.gate.word_base();
        for (wi, &word) in self.gate.words().iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let id = MoleculeId((((base + wi) << 2) + (bit >> 4)) as u32);
                if self.tags.probe(id, line, is_write) {
                    self.molecules[id.index()].record_hit();
                    return Some(id);
                }
            }
        }
        None
    }
}
