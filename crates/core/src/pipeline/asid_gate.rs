//! Stage 1 — the ASID-compare gate (§3.1).
//!
//! Every molecule of the addressed tile compares the requestor's ASID
//! against its configured ASID in parallel (shared molecules pass the
//! gate unconditionally). Only matching molecules proceed to the tag
//! probe of [`home_lookup`](crate::pipeline::home_lookup) — non-matching
//! molecules never spend tag/data-array energy, which is the mechanism
//! behind the paper's dynamic-power savings.

use crate::cache::MolecularCache;
use crate::ids::TileId;
use molcache_sim::StageTrace;
use molcache_trace::Asid;

impl MolecularCache {
    /// Runs the ASID gate over `tile`'s molecules for `asid`.
    ///
    /// Charges one ASID compare per molecule of the tile to `trace` and
    /// leaves the match bitmask in the reusable `gate` scratch
    /// [`GateMask`](crate::tags::GateMask) (cleared and refilled) for
    /// the tag-probe stage to walk in tile order.
    pub(crate) fn asid_gate(&mut self, tile: TileId, asid: Asid, trace: &mut StageTrace) {
        let tile = &self.tiles[tile.index()];
        let capacity = tile.capacity();
        trace.asid_compares += capacity as u32;
        // The tile's gate state is a dense lane range of the packed
        // ASID words (molecule ids are tile-contiguous), so the
        // hardware's parallel compare is modeled by the SWAR kernel:
        // four molecules per word, matches out as a bitmask.
        self.tags
            .gate_scan(tile.molecule_base(), capacity, asid, &mut self.gate);
    }
}
