//! Region-level statistics snapshots.

use molcache_trace::Asid;

/// A point-in-time summary of one region, for reports and experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSnapshot {
    /// The owning application.
    pub asid: Asid,
    /// Molecules currently allocated.
    pub molecules: usize,
    /// Replacement-view rows.
    pub rows: usize,
    /// Time-averaged molecule allocation.
    pub avg_molecules: f64,
    /// Lifetime accesses.
    pub accesses: u64,
    /// Lifetime hits.
    pub hits: u64,
    /// Miss rate of the current (possibly nearly empty) resize window.
    pub window_miss_rate: f64,
    /// Miss rate of the last *closed* resize window — the value
    /// Algorithm 1 most recently acted on.
    pub last_window_miss_rate: f64,
    /// The region's miss-rate goal.
    pub goal: f64,
    /// Hits per molecule (Figure 6's metric).
    pub hits_per_molecule: f64,
}

impl RegionSnapshot {
    /// Lifetime miss rate.
    pub fn lifetime_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.accesses as f64
        }
    }

    /// Absolute deviation of the lifetime miss rate from the goal.
    pub fn goal_deviation(&self) -> f64 {
        (self.lifetime_miss_rate() - self.goal).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(hits: u64, accesses: u64, goal: f64) -> RegionSnapshot {
        RegionSnapshot {
            asid: Asid::new(1),
            molecules: 4,
            rows: 2,
            avg_molecules: 4.0,
            accesses,
            hits,
            window_miss_rate: 0.0,
            last_window_miss_rate: 0.0,
            goal,
            hits_per_molecule: 0.0,
        }
    }

    #[test]
    fn miss_rate_and_deviation() {
        let s = snap(80, 100, 0.1);
        assert!((s.lifetime_miss_rate() - 0.2).abs() < 1e-12);
        assert!((s.goal_deviation() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_access_region() {
        let s = snap(0, 0, 0.1);
        assert_eq!(s.lifetime_miss_rate(), 0.0);
        assert!((s.goal_deviation() - 0.1).abs() < 1e-12);
    }
}
