//! Dense ASID-indexed region table.
//!
//! The access fast path resolves `ASID → region` several times per
//! request (home-tile lookup, hit bookkeeping, victim selection). A
//! `BTreeMap` pays a tree walk for each of those; this table indexes a
//! flat `Vec` by the raw 16-bit ASID instead, making every lookup O(1)
//! while preserving the ascending-ASID iteration order that
//! [`snapshots`](crate::MolecularCache::snapshots) and the resize rounds
//! rely on.

use crate::region::Region;
use molcache_trace::Asid;

/// Maps ASIDs to their cache regions with O(1) lookup and ordered
/// iteration. API mirrors the `BTreeMap` subset it replaced so call
/// sites read identically.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    /// Slot per raw ASID value; `None` where no region exists.
    slots: Vec<Option<Region>>,
    /// Occupied ASIDs in ascending order (the iteration order).
    asids: Vec<Asid>,
}

impl RegionTable {
    /// An empty table.
    pub fn new() -> Self {
        RegionTable::default()
    }

    fn idx(asid: Asid) -> usize {
        usize::from(asid.raw())
    }

    /// Whether `asid` has a region.
    pub fn contains_key(&self, asid: &Asid) -> bool {
        self.slots
            .get(Self::idx(*asid))
            .is_some_and(Option::is_some)
    }

    /// The region of `asid`, if any.
    pub fn get(&self, asid: &Asid) -> Option<&Region> {
        self.slots.get(Self::idx(*asid)).and_then(Option::as_ref)
    }

    /// Mutable access to the region of `asid`, if any.
    pub fn get_mut(&mut self, asid: &Asid) -> Option<&mut Region> {
        self.slots
            .get_mut(Self::idx(*asid))
            .and_then(Option::as_mut)
    }

    /// Inserts a region for `asid`, returning the one it replaced.
    pub fn insert(&mut self, asid: Asid, region: Region) -> Option<Region> {
        let i = Self::idx(asid);
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(region);
        if prev.is_none() {
            let pos = self
                .asids
                .binary_search(&asid)
                .expect_err("asid absent when slot was empty");
            self.asids.insert(pos, asid);
        }
        prev
    }

    /// Removes and returns the region of `asid`, if any.
    pub fn remove(&mut self, asid: &Asid) -> Option<Region> {
        let region = self.slots.get_mut(Self::idx(*asid))?.take()?;
        let pos = self
            .asids
            .binary_search(asid)
            .expect("asid present when slot was occupied");
        self.asids.remove(pos);
        Some(region)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.asids.len()
    }

    /// Whether the table holds no regions.
    pub fn is_empty(&self) -> bool {
        self.asids.is_empty()
    }

    /// ASIDs with regions, ascending.
    pub fn keys(&self) -> impl Iterator<Item = &Asid> {
        self.asids.iter()
    }

    /// Regions in ascending-ASID order.
    pub fn values(&self) -> impl Iterator<Item = &Region> {
        self.iter().map(|(_, r)| r)
    }

    /// `(asid, region)` pairs in ascending-ASID order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            table: self,
            pos: 0,
        }
    }
}

impl std::ops::Index<&Asid> for RegionTable {
    type Output = Region;

    fn index(&self, asid: &Asid) -> &Region {
        self.get(asid).expect("no region for asid")
    }
}

/// Ordered iterator over a [`RegionTable`].
#[derive(Debug)]
pub struct Iter<'a> {
    table: &'a RegionTable,
    pos: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a Asid, &'a Region);

    fn next(&mut self) -> Option<Self::Item> {
        let asid = self.table.asids.get(self.pos)?;
        self.pos += 1;
        let region = self.table.slots[RegionTable::idx(*asid)]
            .as_ref()
            .expect("indexed asid has a region");
        Some((asid, region))
    }
}

impl<'a> IntoIterator for &'a RegionTable {
    type Item = (&'a Asid, &'a Region);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegionPolicy;
    use crate::ids::{ClusterId, TileId};

    fn region(asid: u16) -> Region {
        Region::new(
            Asid::new(asid),
            TileId(0),
            ClusterId(0),
            RegionPolicy::Randy,
            1,
            0.1,
            64,
        )
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = RegionTable::new();
        assert!(t.is_empty());
        assert!(t.insert(Asid::new(5), region(5)).is_none());
        assert!(t.contains_key(&Asid::new(5)));
        assert!(!t.contains_key(&Asid::new(4)));
        assert_eq!(t.get(&Asid::new(5)).unwrap().asid(), Asid::new(5));
        assert_eq!(t.len(), 1);
        let removed = t.remove(&Asid::new(5)).unwrap();
        assert_eq!(removed.asid(), Asid::new(5));
        assert!(t.remove(&Asid::new(5)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn iteration_is_ascending_by_asid() {
        let mut t = RegionTable::new();
        for a in [9u16, 2, 40, 7] {
            t.insert(Asid::new(a), region(a));
        }
        let keys: Vec<u16> = t.keys().map(|a| a.raw()).collect();
        assert_eq!(keys, vec![2, 7, 9, 40]);
        let via_iter: Vec<u16> = t.iter().map(|(a, _)| a.raw()).collect();
        assert_eq!(via_iter, keys);
        let via_values: Vec<u16> = t.values().map(|r| r.asid().raw()).collect();
        assert_eq!(via_values, keys);
    }

    #[test]
    fn reinsert_replaces_without_duplicating_key() {
        let mut t = RegionTable::new();
        t.insert(Asid::new(3), region(3));
        assert!(t.insert(Asid::new(3), region(3)).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no region for asid")]
    fn index_panics_on_missing_asid() {
        let t = RegionTable::new();
        let _ = &t[&Asid::new(1)];
    }
}
