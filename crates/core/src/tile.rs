//! Tiles and tile clusters (the physical organization, Figure 2).

use crate::ids::{ClusterId, MoleculeId, TileId};

/// A tile: 32–256 molecules sharing one read/write port.
///
/// Tiles track which of their molecules are free (unconfigured); regions
/// draw molecules from their home tile first and from sibling tiles of
/// the cluster when the home tile runs out (§3.4, "Where to add?").
///
/// ```
/// use molcache_core::tile::Tile;
/// use molcache_core::ids::{ClusterId, MoleculeId, TileId};
///
/// let mut t = Tile::new(TileId(0), ClusterId(0), vec![MoleculeId(0), MoleculeId(1)]);
/// let granted = t.take_free().expect("fresh tiles are all free");
/// assert_eq!(t.free_count(), 1);
/// t.release(granted);
/// assert_eq!(t.free_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tile {
    id: TileId,
    cluster: ClusterId,
    molecules: Vec<MoleculeId>,
    free: Vec<MoleculeId>,
}

impl Tile {
    /// Creates a tile owning the given molecules, all initially free.
    ///
    /// The ids must be contiguous and ascending: the flat tag arrays
    /// ([`crate::tags::TagStore`]) rely on a tile's molecules occupying
    /// one dense id range so the ASID gate is a single linear scan.
    pub fn new(id: TileId, cluster: ClusterId, molecules: Vec<MoleculeId>) -> Self {
        debug_assert!(
            molecules.windows(2).all(|w| w[1].0 == w[0].0 + 1),
            "tile molecules must be id-contiguous for the flat tag arrays"
        );
        let free = molecules.clone();
        Tile {
            id,
            cluster,
            molecules,
            free,
        }
    }

    /// The flat-array index of the tile's first molecule: the tile's
    /// gate/tag state is the `capacity()`-long slice starting here.
    pub fn molecule_base(&self) -> usize {
        self.molecules.first().map_or(0, |m| m.index())
    }

    /// The tile's identifier.
    pub fn id(&self) -> TileId {
        self.id
    }

    /// The cluster this tile belongs to.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// All molecules physically in this tile.
    pub fn molecules(&self) -> &[MoleculeId] {
        &self.molecules
    }

    /// Number of currently free molecules.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Takes one free molecule, if any.
    pub fn take_free(&mut self) -> Option<MoleculeId> {
        self.free.pop()
    }

    /// Returns a molecule to the free pool.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the molecule does not belong to this tile
    /// or is already free.
    pub fn release(&mut self, id: MoleculeId) {
        debug_assert!(self.molecules.contains(&id), "molecule not of this tile");
        debug_assert!(!self.free.contains(&id), "double release");
        self.free.push(id);
    }

    /// Total molecules in the tile.
    pub fn capacity(&self) -> usize {
        self.molecules.len()
    }
}

/// A tile cluster with its Ulmo controller.
///
/// Ulmo handles tile misses (searching the other tiles of the cluster
/// that contribute molecules to the requesting region), inter-cluster
/// coherence traffic, and the free-molecule accounting used by resizing.
#[derive(Debug, Clone)]
pub struct TileCluster {
    id: ClusterId,
    tiles: Vec<TileId>,
}

impl TileCluster {
    /// Creates a cluster over the given tiles.
    pub fn new(id: ClusterId, tiles: Vec<TileId>) -> Self {
        TileCluster { id, tiles }
    }

    /// The cluster's identifier.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Tiles in this cluster.
    pub fn tiles(&self) -> &[TileId] {
        &self.tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> Tile {
        Tile::new(TileId(0), ClusterId(0), (0..4).map(MoleculeId).collect())
    }

    #[test]
    fn all_molecules_start_free() {
        let t = tile();
        assert_eq!(t.free_count(), 4);
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    fn take_and_release_roundtrip() {
        let mut t = tile();
        let a = t.take_free().unwrap();
        let b = t.take_free().unwrap();
        assert_ne!(a, b);
        assert_eq!(t.free_count(), 2);
        t.release(a);
        assert_eq!(t.free_count(), 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut t = tile();
        for _ in 0..4 {
            assert!(t.take_free().is_some());
        }
        assert!(t.take_free().is_none());
    }

    #[test]
    fn cluster_holds_tiles() {
        let c = TileCluster::new(ClusterId(1), vec![TileId(4), TileId(5)]);
        assert_eq!(c.id(), ClusterId(1));
        assert_eq!(c.tiles(), &[TileId(4), TileId(5)]);
    }
}
