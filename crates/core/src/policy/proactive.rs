//! Com-CAS-style proactive sizing from declared working-set phases
//! (PAPERS.md): the trace carries working-set-size annotations, the
//! policy sizes each hinted partition *directly to* its declared
//! footprint instead of feeling its way there through miss-rate
//! feedback. Unhinted partitions fall back to Algorithm 1.

use super::paper::{algorithm1, Decision};
use super::trigger::{ResizeController, ResizeEvent, ResizeTrigger};
use super::{DecisionInputs, ResizePolicy};
use molcache_trace::Asid;
use std::collections::BTreeMap;

/// Sizes partitions from compiler/runtime-declared working-set hints
/// delivered via [`ResizePolicy::phase_hint`] (in molecules; see
/// `MolecularCache::note_phase_hint` for the bytes → molecules
/// conversion and `molcache_trace::annotate` for the trace-side
/// markers). Runs on a constant period: hints, not miss-rate feedback,
/// carry the phase information, so there is nothing for the period to
/// adapt on.
#[derive(Debug, Clone)]
pub struct ProactiveHint {
    controller: ResizeController,
    hints: BTreeMap<Asid, usize>,
}

impl ProactiveHint {
    /// Creates the policy with a constant evaluation period.
    pub fn new(period: u64) -> Self {
        ProactiveHint {
            controller: ResizeController::new(ResizeTrigger::Constant {
                period: period.max(1),
            }),
            hints: BTreeMap::new(),
        }
    }

    /// The currently declared working set of `asid`, if any.
    pub fn hint(&self, asid: Asid) -> Option<usize> {
        self.hints.get(&asid).copied()
    }
}

impl ResizePolicy for ProactiveHint {
    fn name(&self) -> &'static str {
        "proactive-hint"
    }

    fn register_app(&mut self, _asid: Asid) {}

    fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        self.controller.on_access(asid)
    }

    fn decide(&mut self, inputs: &DecisionInputs) -> Decision {
        match self.hints.get(&inputs.asid) {
            Some(&declared) => {
                let target = declared.max(1);
                if target > inputs.current {
                    // March toward the declared footprint, one capped
                    // chunk per round (the mechanism still clamps to the
                    // free pool).
                    Decision::Grow((target - inputs.current).min(inputs.max_allocation))
                } else if target < inputs.current {
                    // Never below one molecule, like Algorithm 1.
                    let excess = inputs.current - target;
                    let cap = inputs.current.saturating_sub(1);
                    if cap == 0 {
                        Decision::Hold
                    } else {
                        Decision::Shrink(excess.min(cap))
                    }
                } else {
                    Decision::Hold
                }
            }
            // No declaration for this app: behave like the paper.
            None => algorithm1(
                inputs.window_miss_rate,
                inputs.goal,
                inputs.last_miss_rate,
                inputs.current,
                inputs.last_allocation,
                inputs.max_allocation,
            ),
        }
    }

    fn phase_hint(&mut self, asid: Asid, target_molecules: usize) {
        self.hints.insert(asid, target_molecules.max(1));
    }

    fn clone_box(&self) -> Box<dyn ResizePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(asid: u16, current: usize) -> DecisionInputs {
        DecisionInputs {
            asid: Asid::new(asid),
            window_accesses: 1_000,
            window_miss_rate: 0.30,
            last_miss_rate: 0.40,
            goal: 0.10,
            current,
            last_allocation: 4,
            max_allocation: 16,
            free_molecules: 50,
        }
    }

    #[test]
    fn hinted_partition_marches_to_declared_size() {
        let mut p = ProactiveHint::new(100);
        p.phase_hint(Asid::new(1), 40);
        // 10 -> 40 wants 30, capped at the 16-molecule chunk.
        assert_eq!(p.decide(&inputs(1, 10)), Decision::Grow(16));
        // At the target: hold, regardless of miss rate.
        assert_eq!(p.decide(&inputs(1, 40)), Decision::Hold);
        // Phase shrank: give the excess back at once.
        p.phase_hint(Asid::new(1), 8);
        assert_eq!(p.decide(&inputs(1, 40)), Decision::Shrink(32));
    }

    #[test]
    fn shrink_hint_never_empties_partition() {
        let mut p = ProactiveHint::new(100);
        p.phase_hint(Asid::new(1), 0); // degenerate hint clamps to 1
        assert_eq!(p.decide(&inputs(1, 3)), Decision::Shrink(2));
        assert_eq!(p.decide(&inputs(1, 1)), Decision::Hold);
    }

    #[test]
    fn unhinted_partition_follows_algorithm1() {
        let mut p = ProactiveHint::new(100);
        p.phase_hint(Asid::new(2), 64);
        assert_eq!(
            p.decide(&inputs(1, 10)),
            algorithm1(0.30, 0.10, 0.40, 10, 4, 16)
        );
    }
}
