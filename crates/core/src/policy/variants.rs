//! The global-vs-per-app goal variant pair: both run Algorithm 1's
//! decision kernel, but disagree about *whose* goal a partition is judged
//! against and which timer scheme paces the rounds (§3.4's "global
//! adaptive" vs "per-application adaptive" discussion, taken all the way
//! to the decision itself).

use super::paper::{algorithm1, Decision};
use super::trigger::{AdaptScope, ResizeController, ResizeEvent, ResizeTrigger};
use super::{DecisionInputs, ResizePolicy};
use molcache_trace::Asid;

/// Judges every partition against one cache-wide goal (the
/// configuration's default), ignoring per-application overrides, on the
/// global-adaptive timer. The whole cache converges toward a uniform
/// miss rate: simple, fair by construction, but unable to honor
/// per-tenant SLAs.
#[derive(Debug, Clone)]
pub struct GlobalGoal {
    goal: f64,
    controller: ResizeController,
}

impl GlobalGoal {
    /// Creates the policy with the cache-wide goal and initial period.
    pub fn new(goal: f64, initial_period: u64) -> Self {
        GlobalGoal {
            goal,
            controller: ResizeController::new(ResizeTrigger::GlobalAdaptive { initial_period }),
        }
    }

    /// The single goal every partition is judged against.
    pub fn goal(&self) -> f64 {
        self.goal
    }
}

impl ResizePolicy for GlobalGoal {
    fn name(&self) -> &'static str {
        "global-goal"
    }

    fn register_app(&mut self, asid: Asid) {
        self.controller.register_app(asid);
    }

    fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        self.controller.on_access(asid)
    }

    fn decide(&mut self, inputs: &DecisionInputs) -> Decision {
        algorithm1(
            inputs.window_miss_rate,
            self.goal,
            inputs.last_miss_rate,
            inputs.current,
            inputs.last_allocation,
            inputs.max_allocation,
        )
    }

    fn adapt(&mut self, scope: AdaptScope, miss_rate: f64, _goal: f64) {
        // The period, like the decision, tracks the uniform goal.
        self.controller.adapt(scope, miss_rate, self.goal);
    }

    fn clone_box(&self) -> Box<dyn ResizePolicy> {
        Box::new(self.clone())
    }
}

/// Judges each partition against its own goal on the *per-application*
/// adaptive timer: every application earns its own evaluation cadence,
/// so a converged tenant is left alone while a struggling one is
/// re-examined at 10x the rate. The decision kernel is Algorithm 1
/// unchanged — this isolates the paper's trigger-scheme question from
/// the goal question.
#[derive(Debug, Clone)]
pub struct PerAppGoal {
    controller: ResizeController,
}

impl PerAppGoal {
    /// Creates the policy with the per-application initial period.
    pub fn new(initial_period: u64) -> Self {
        PerAppGoal {
            controller: ResizeController::new(ResizeTrigger::PerAppAdaptive { initial_period }),
        }
    }
}

impl ResizePolicy for PerAppGoal {
    fn name(&self) -> &'static str {
        "per-app-goal"
    }

    fn register_app(&mut self, asid: Asid) {
        self.controller.register_app(asid);
    }

    fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        self.controller.on_access(asid)
    }

    fn decide(&mut self, inputs: &DecisionInputs) -> Decision {
        algorithm1(
            inputs.window_miss_rate,
            inputs.goal,
            inputs.last_miss_rate,
            inputs.current,
            inputs.last_allocation,
            inputs.max_allocation,
        )
    }

    fn adapt(&mut self, scope: AdaptScope, miss_rate: f64, goal: f64) {
        self.controller.adapt(scope, miss_rate, goal);
    }

    fn clone_box(&self) -> Box<dyn ResizePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(goal: f64) -> DecisionInputs {
        DecisionInputs {
            asid: Asid::new(1),
            window_accesses: 1_000,
            window_miss_rate: 0.30,
            last_miss_rate: 0.40,
            goal,
            current: 10,
            last_allocation: 4,
            max_allocation: 16,
            free_molecules: 50,
        }
    }

    #[test]
    fn global_goal_overrides_the_partition_goal() {
        // Against the partition's own 0.35 goal this window (mr 0.30) is
        // in the dead band -> Hold; against the cache-wide 0.10 goal it
        // is improving-above-goal -> Grow.
        let mut g = GlobalGoal::new(0.10, 100);
        assert_eq!(g.decide(&inputs(0.35)), Decision::Grow(16));
        let mut p = PerAppGoal::new(100);
        assert_eq!(p.decide(&inputs(0.35)), Decision::Hold);
    }

    #[test]
    fn variant_triggers_differ() {
        let a = Asid::new(7);
        let mut g = GlobalGoal::new(0.1, 2);
        g.register_app(a);
        assert_eq!(g.on_access(a), ResizeEvent::None);
        assert_eq!(g.on_access(a), ResizeEvent::AllPartitions);
        let mut p = PerAppGoal::new(2);
        p.register_app(a);
        assert_eq!(p.on_access(a), ResizeEvent::None);
        assert_eq!(p.on_access(a), ResizeEvent::Partition(a));
    }
}
