//! Resize triggers and the countdown/adaptation controller (§3.4,
//! "When to add?").
//!
//! The controller is the timing half of a resize policy: it decides
//! *when* a policy is consulted (every access decrements a countdown)
//! and adapts its period to how well the cache is tracking its goal —
//! Algorithm 1's `x2` on success / `x0.1` on failure update. Every
//! policy that wants periodic evaluation embeds one; the decision half
//! lives in the [`ResizePolicy`](crate::policy::ResizePolicy)
//! implementations.

use molcache_trace::Asid;
use std::collections::BTreeMap;

/// When resizing is evaluated (§3.4, "When to add?").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResizeTrigger {
    /// Resize every `period` serviced addresses, always.
    Constant {
        /// Addresses between resize rounds.
        period: u64,
    },
    /// Adaptive period driven by the *overall* cache miss rate: doubled
    /// when the cache meets the goal, cut to 10 % when it does not. The
    /// paper finds this works best for small tiles.
    GlobalAdaptive {
        /// First resize happens after this many addresses.
        initial_period: u64,
    },
    /// Adaptive period per application, driven by that application's
    /// miss rate. The paper finds this works better for large tiles
    /// (>= 2 MB).
    PerAppAdaptive {
        /// First per-application resize after this many addresses.
        initial_period: u64,
    },
}

impl ResizeTrigger {
    /// Stable lowercase name, used to tag telemetry resize records.
    pub fn name(&self) -> &'static str {
        match self {
            ResizeTrigger::Constant { .. } => "constant",
            ResizeTrigger::GlobalAdaptive { .. } => "global-adaptive",
            ResizeTrigger::PerAppAdaptive { .. } => "per-app-adaptive",
        }
    }

    /// The configured starting period of the scheme.
    pub fn initial_period(&self) -> u64 {
        match *self {
            ResizeTrigger::Constant { period } => period,
            ResizeTrigger::GlobalAdaptive { initial_period }
            | ResizeTrigger::PerAppAdaptive { initial_period } => initial_period,
        }
    }
}

/// What a trigger fires on one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeEvent {
    /// No resize due.
    None,
    /// Resize every partition (constant / global-adaptive schemes).
    AllPartitions,
    /// Resize just this application's partition (per-app adaptive).
    Partition(Asid),
}

/// Which timer a period adaptation targets: the cache-wide countdown or
/// one application's. The single [`ResizeController::adapt`] entry point
/// dispatches on it, so the global and per-app schemes share one
/// goal-band code path instead of reimplementing it per scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptScope {
    /// The cache-wide timer (global-adaptive scheme).
    Global,
    /// One application's timer (per-app adaptive scheme).
    App(Asid),
}

/// Tracks resize countdowns and adapts periods.
#[derive(Debug, Clone)]
pub struct ResizeController {
    trigger: ResizeTrigger,
    period: u64,
    countdown: u64,
    per_app: BTreeMap<Asid, AppTimer>,
}

#[derive(Debug, Clone, Copy)]
struct AppTimer {
    period: u64,
    countdown: u64,
}

/// Period adaptation bounds: the period never shrinks below 1/10 of the
/// initial value nor grows beyond 16x (keeps Algorithm 1's x0.1 / x2
/// updates from degenerating).
const MIN_PERIOD_FRACTION: u64 = 10;
const MAX_PERIOD_FACTOR: u64 = 16;

impl ResizeController {
    /// Creates a controller for the given trigger scheme.
    pub fn new(trigger: ResizeTrigger) -> Self {
        let period = trigger.initial_period().max(1);
        ResizeController {
            trigger,
            period,
            countdown: period,
            per_app: BTreeMap::new(),
        }
    }

    /// The scheme in use.
    pub fn trigger(&self) -> ResizeTrigger {
        self.trigger
    }

    /// Current global period (constant / global-adaptive schemes).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Current period of one application (per-app scheme); `None` if the
    /// application has not been seen.
    pub fn app_period(&self, asid: Asid) -> Option<u64> {
        self.per_app.get(&asid).map(|t| t.period)
    }

    /// Registers an application (first access).
    pub fn register_app(&mut self, asid: Asid) {
        let initial = self.trigger.initial_period().max(1);
        self.per_app.entry(asid).or_insert(AppTimer {
            period: initial,
            countdown: initial,
        });
    }

    /// Advances the counters by one serviced address from `asid` and
    /// reports whether a resize is due.
    pub fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        match self.trigger {
            ResizeTrigger::Constant { .. } | ResizeTrigger::GlobalAdaptive { .. } => {
                self.countdown = self.countdown.saturating_sub(1);
                if self.countdown == 0 {
                    self.countdown = self.period;
                    ResizeEvent::AllPartitions
                } else {
                    ResizeEvent::None
                }
            }
            ResizeTrigger::PerAppAdaptive { .. } => {
                self.register_app(asid);
                let timer = self.per_app.get_mut(&asid).expect("registered above");
                timer.countdown = timer.countdown.saturating_sub(1);
                if timer.countdown == 0 {
                    timer.countdown = timer.period;
                    ResizeEvent::Partition(asid)
                } else {
                    ResizeEvent::None
                }
            }
        }
    }

    /// Applies Algorithm 1's period update after a resize: `x2` when the
    /// observed miss rate meets the goal, `x0.1` when it overshoots the
    /// hysteresis band. The *one* goal-band code path — both the global
    /// and per-app schemes land on [`adapt_timer`]; the scope only
    /// selects which timer is touched. A scope the scheme does not use
    /// (or an unregistered application) is a no-op, and the constant
    /// scheme never adapts.
    pub fn adapt(&mut self, scope: AdaptScope, miss_rate: f64, goal: f64) {
        match (self.trigger, scope) {
            (ResizeTrigger::GlobalAdaptive { initial_period }, AdaptScope::Global) => {
                adapt_timer(
                    &mut self.period,
                    &mut self.countdown,
                    initial_period,
                    miss_rate,
                    goal,
                );
            }
            (ResizeTrigger::PerAppAdaptive { initial_period }, AdaptScope::App(asid)) => {
                if let Some(timer) = self.per_app.get_mut(&asid) {
                    adapt_timer(
                        &mut timer.period,
                        &mut timer.countdown,
                        initial_period,
                        miss_rate,
                        goal,
                    );
                }
            }
            _ => {}
        }
    }

    /// [`adapt`](Self::adapt) with [`AdaptScope::Global`].
    pub fn adapt_global(&mut self, overall_miss_rate: f64, goal: f64) {
        self.adapt(AdaptScope::Global, overall_miss_rate, goal);
    }

    /// [`adapt`](Self::adapt) with [`AdaptScope::App`].
    pub fn adapt_app(&mut self, asid: Asid, miss_rate: f64, goal: f64) {
        self.adapt(AdaptScope::App(asid), miss_rate, goal);
    }
}

/// Hysteresis band of the period adaptation: a miss rate between the
/// goal and `goal * PERIOD_HYSTERESIS` is neither "well within acceptable
/// limits" (Algorithm 1's doubling case) nor "higher than expected" (the
/// 10% case), so the period holds. Without the band, a partition hovering
/// just above its goal is resized at the minimum period forever, and the
/// resulting allocate/withdraw churn itself keeps the miss rate inflated.
pub const PERIOD_HYSTERESIS: f64 = 1.5;

/// Applies one period update to a (period, countdown) timer pair through
/// [`adapt_period`], clamping the countdown so a shortened period takes
/// effect immediately.
fn adapt_timer(period: &mut u64, countdown: &mut u64, initial: u64, miss_rate: f64, goal: f64) {
    *period = adapt_period(*period, initial, miss_rate, goal);
    *countdown = (*countdown).min(*period);
}

/// The goal-band period update itself: double below the goal, slash to
/// 10% above the hysteresis band, hold inside it; the result is clamped
/// to `[initial/10, initial*16]`.
pub fn adapt_period(period: u64, initial: u64, miss_rate: f64, goal: f64) -> u64 {
    let initial = initial.max(1);
    let next = if miss_rate < goal {
        period.saturating_mul(2)
    } else if miss_rate > goal * PERIOD_HYSTERESIS {
        (period / 10).max(1)
    } else {
        period
    };
    next.clamp(
        (initial / MIN_PERIOD_FRACTION).max(1),
        initial.saturating_mul(MAX_PERIOD_FACTOR),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trigger_fires_periodically() {
        let mut c = ResizeController::new(ResizeTrigger::Constant { period: 3 });
        let a = Asid::new(1);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        assert_eq!(c.on_access(a), ResizeEvent::AllPartitions);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        // Constant scheme ignores adaptation.
        c.adapt_global(0.9, 0.1);
        assert_eq!(c.period(), 3);
    }

    #[test]
    fn period_holds_inside_hysteresis_band() {
        let mut c = ResizeController::new(ResizeTrigger::GlobalAdaptive {
            initial_period: 100,
        });
        // Just above goal (0.12 vs 0.10): neither doubling nor slashing.
        c.adapt_global(0.12, 0.1);
        assert_eq!(c.period(), 100);
        // Well above the band: slashed.
        c.adapt_global(0.16, 0.1);
        assert_eq!(c.period(), 10);
    }

    /// Pins [`PERIOD_HYSTERESIS`]'s exact boundaries through the unified
    /// [`adapt_period`] path: the band is closed on both ends — a miss
    /// rate exactly at the goal or exactly at `goal * 1.5` holds, and
    /// only strict overshoot past the band slashes.
    #[test]
    fn hysteresis_band_boundaries_are_exact() {
        let goal = 0.10;
        // Strictly below the goal: doubled.
        assert_eq!(adapt_period(100, 100, goal - 1e-9, goal), 200);
        // Exactly at the goal: inside the band, held.
        assert_eq!(adapt_period(100, 100, goal, goal), 100);
        // Exactly at the band edge (goal * PERIOD_HYSTERESIS): held.
        assert_eq!(adapt_period(100, 100, goal * PERIOD_HYSTERESIS, goal), 100);
        // Strictly past the band: slashed to 10%.
        assert_eq!(
            adapt_period(100, 100, goal * PERIOD_HYSTERESIS + 1e-9, goal),
            10
        );
        // Clamps: never below initial/10 nor above initial*16.
        assert_eq!(adapt_period(10, 100, 1.0, goal), 10);
        assert_eq!(adapt_period(1600, 100, 0.0, goal), 1600);
    }

    /// The global and per-app schemes share one adapt code path: the
    /// same miss-rate sequence produces the same period trajectory on a
    /// global timer and on an application timer.
    #[test]
    fn adapt_scopes_share_one_code_path() {
        let sequence = [(0.5, 0.1), (0.05, 0.1), (0.12, 0.1), (0.01, 0.1)];
        let mut global = ResizeController::new(ResizeTrigger::GlobalAdaptive {
            initial_period: 100,
        });
        let mut per_app = ResizeController::new(ResizeTrigger::PerAppAdaptive {
            initial_period: 100,
        });
        let a = Asid::new(3);
        per_app.register_app(a);
        for (mr, goal) in sequence {
            global.adapt(AdaptScope::Global, mr, goal);
            per_app.adapt(AdaptScope::App(a), mr, goal);
            assert_eq!(global.period(), per_app.app_period(a).unwrap());
        }
        // Mismatched scopes are no-ops on both schemes.
        let before = (global.period(), per_app.app_period(a));
        global.adapt(AdaptScope::App(a), 0.9, 0.1);
        per_app.adapt(AdaptScope::Global, 0.9, 0.1);
        assert_eq!(before, (global.period(), per_app.app_period(a)));
    }

    #[test]
    fn global_adaptive_halves_and_doubles() {
        let mut c = ResizeController::new(ResizeTrigger::GlobalAdaptive {
            initial_period: 100,
        });
        c.adapt_global(0.5, 0.1); // missing the goal: x0.1
        assert_eq!(c.period(), 10);
        c.adapt_global(0.05, 0.1); // meeting: x2
        assert_eq!(c.period(), 20);
        // Lower clamp at initial/10.
        c.adapt_global(0.5, 0.1);
        c.adapt_global(0.5, 0.1);
        assert_eq!(c.period(), 10);
        // Upper clamp at 16x initial.
        for _ in 0..12 {
            c.adapt_global(0.01, 0.1);
        }
        assert_eq!(c.period(), 1600);
    }

    #[test]
    fn per_app_timers_are_independent() {
        let mut c = ResizeController::new(ResizeTrigger::PerAppAdaptive { initial_period: 2 });
        let a = Asid::new(1);
        let b = Asid::new(2);
        assert_eq!(c.on_access(a), ResizeEvent::None);
        assert_eq!(c.on_access(b), ResizeEvent::None);
        assert_eq!(c.on_access(a), ResizeEvent::Partition(a));
        assert_eq!(c.on_access(b), ResizeEvent::Partition(b));
        c.adapt_app(a, 0.01, 0.1);
        assert_eq!(c.app_period(a), Some(4));
        assert_eq!(c.app_period(b), Some(2));
    }

    #[test]
    fn per_app_adaptation_requires_registration() {
        let mut c = ResizeController::new(ResizeTrigger::PerAppAdaptive { initial_period: 10 });
        // Adapting an unknown app is a no-op, not a panic.
        c.adapt_app(Asid::new(9), 0.5, 0.1);
        assert_eq!(c.app_period(Asid::new(9)), None);
    }
}
