//! The paper's Algorithm 1 as a [`ResizePolicy`] — the default, and the
//! bit-identical behavior baseline every refactor is gated against.

use super::trigger::{AdaptScope, ResizeController, ResizeEvent, ResizeTrigger};
use super::{DecisionInputs, ResizePolicy};
use molcache_trace::Asid;

/// Algorithm 1's per-partition decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Grow the partition by this many molecules (subject to free-pool
    /// availability).
    Grow(usize),
    /// Withdraw this many molecules.
    Shrink(usize),
    /// Leave the partition unchanged.
    Hold,
}

/// Minimum absolute miss-rate improvement a thrashing partition must
/// show for its last growth chunk before it is granted another one.
/// Algorithm 1's clamp (`max_allocation = last_allocation`) damps
/// thrash-growth; this makes the damping explicit, so an application with
/// pure compulsory misses (the paper's `mcf`) cannot convert the >50 %
/// branch into an unbounded land-grab "at the cost of performance of
/// other applications" (§3.4). Capacity-bound applications keep growing:
/// with Random/Randy replacement, added molecules lower their miss rate
/// window over window.
pub const GROWTH_IMPROVEMENT_EPS: f64 = 0.02;

/// Absolute window-to-window miss-rate *increase* that is read as a phase
/// change (§3.4's motivation for periodic resizing: working sets move).
/// A thrashing partition whose miss rate jumped this much since the last
/// window is granted growth even though it is not "improving" — without
/// this, a partition shrunk during a small-working-set phase would be
/// dead-locked at miss rate ≈ 1 when the program enters a larger phase
/// (stagnant-high is indistinguishable from compulsory-bound otherwise).
pub const PHASE_CHANGE_EPS: f64 = 0.10;

/// Fraction of the goal below which a partition is considered clearly
/// over-provisioned and starts giving molecules back. Window miss rates
/// are noisy; withdrawing on *any* below-goal sample lets a partition
/// that has converged onto its goal bleed molecules to neighbours one
/// noise sample at a time.
pub const SHRINK_MARGIN: f64 = 0.67;

/// Algorithm 1 (verbatim structure from the paper, with the two
/// `resize()` call sites interpreted as: grow *toward* the linear-model
/// target size, with the growth chunk capped by `max_allocation` and by
/// the most recent successful allocation when the partition is
/// thrashing).
///
/// * `miss_rate > 50 %` — partition is drowning: grow by a full chunk
///   (`max_allocation`, but never more than the last allocation granted,
///   per the paper's clamp) — provided the previous chunk actually
///   improved the miss rate (see [`GROWTH_IMPROVEMENT_EPS`]).
/// * `miss_rate < goal` — partition is over-provisioned: withdraw
///   `sqrt(current * miss_rate / goal)` molecules ("withdraw molecules
///   more slowly than you add — conservative").
/// * `miss_rate < last_miss_rate` — improving but above goal: the linear
///   cache-size/miss-rate model says the partition needs
///   `current * miss_rate / goal` molecules; grow toward that, capped.
/// * otherwise — hold (growth is not paying off).
///
/// ```
/// use molcache_core::resize::{algorithm1, Decision};
///
/// // Improving but above a 10% goal with 10 molecules: the linear model
/// // wants 10 * 0.30 / 0.10 = 30, so grow by 16 (the chunk cap).
/// assert_eq!(algorithm1(0.30, 0.10, 0.40, 10, 4, 16), Decision::Grow(16));
/// // Clearly below goal: withdraw sqrt(32 * 0.05 / 0.10) = 4.
/// assert_eq!(algorithm1(0.05, 0.10, 0.20, 32, 4, 16), Decision::Shrink(4));
/// ```
pub fn algorithm1(
    miss_rate: f64,
    goal: f64,
    last_miss_rate: f64,
    current: usize,
    last_allocation: usize,
    max_allocation: usize,
) -> Decision {
    debug_assert!(goal > 0.0);
    if miss_rate > 0.5 {
        let improving = miss_rate <= last_miss_rate - GROWTH_IMPROVEMENT_EPS;
        let first_window = last_miss_rate >= 1.0;
        let phase_change = miss_rate >= last_miss_rate + PHASE_CHANGE_EPS;
        if improving || first_window || phase_change {
            let chunk = max_allocation.min(last_allocation.max(1));
            Decision::Grow(chunk)
        } else {
            // Stagnant-high: growth is not converting into hits
            // (compulsory-miss bound) — stop feeding this partition.
            Decision::Hold
        }
    } else if miss_rate < goal * SHRINK_MARGIN {
        // Rounded *up*: a partition clearly below goal always gives back
        // at least one molecule (with miss_rate == 0 exactly, sqrt is 0
        // and the ceil stays 0 — a perfectly idle window holds).
        let temp = ((current as f64 * miss_rate) / goal).sqrt().ceil() as usize;
        if temp == 0 || current <= 1 {
            Decision::Hold
        } else {
            Decision::Shrink(temp.min(current - 1))
        }
    } else if miss_rate < goal {
        // Inside the dead band just under the goal: converged, hold.
        // Withdrawing here would only churn data and hand molecules to
        // whichever neighbour's window noise asks loudest.
        Decision::Hold
    } else if miss_rate < last_miss_rate {
        let target = ((current as f64 * miss_rate) / goal).ceil() as usize;
        if target <= current {
            Decision::Hold
        } else {
            Decision::Grow((target - current).min(max_allocation))
        }
    } else {
        Decision::Hold
    }
}

/// The default policy: [`algorithm1`] decisions on the configured trigger
/// scheme, each partition judged against its own goal — exactly the
/// pre-trait behavior, bit for bit (its telemetry `trigger` label is the
/// trigger scheme's name, as before the refactor).
#[derive(Debug, Clone)]
pub struct PaperAlgorithm1 {
    controller: ResizeController,
}

impl PaperAlgorithm1 {
    /// Creates the policy on the given trigger scheme.
    pub fn new(trigger: ResizeTrigger) -> Self {
        PaperAlgorithm1 {
            controller: ResizeController::new(trigger),
        }
    }

    /// The embedded trigger controller (read-only; for inspection).
    pub fn controller(&self) -> &ResizeController {
        &self.controller
    }
}

impl ResizePolicy for PaperAlgorithm1 {
    fn name(&self) -> &'static str {
        "paper-algorithm1"
    }

    fn trigger_label(&self) -> &'static str {
        self.controller.trigger().name()
    }

    fn register_app(&mut self, asid: Asid) {
        self.controller.register_app(asid);
    }

    fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        self.controller.on_access(asid)
    }

    fn decide(&mut self, inputs: &DecisionInputs) -> Decision {
        algorithm1(
            inputs.window_miss_rate,
            inputs.goal,
            inputs.last_miss_rate,
            inputs.current,
            inputs.last_allocation,
            inputs.max_allocation,
        )
    }

    fn adapt(&mut self, scope: AdaptScope, miss_rate: f64, goal: f64) {
        self.controller.adapt(scope, miss_rate, goal);
    }

    fn clone_box(&self) -> Box<dyn ResizePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thrashing_partition_grows_by_chunk() {
        let d = algorithm1(0.9, 0.1, 0.95, 8, 8, 16);
        assert_eq!(d, Decision::Grow(8), "clamped by last allocation");
        let d2 = algorithm1(0.9, 0.1, 0.95, 8, 32, 16);
        assert_eq!(d2, Decision::Grow(16), "clamped by max allocation");
        // First window (last_miss_rate sentinel 1.0) always grows.
        assert_eq!(algorithm1(0.99, 0.1, 1.0, 8, 8, 16), Decision::Grow(8));
    }

    #[test]
    fn compulsory_miss_thrasher_stops_growing() {
        // A pointer-chasing partition whose miss rate does not improve
        // with added molecules must not monopolize the free pool.
        assert_eq!(algorithm1(0.68, 0.1, 0.68, 64, 16, 16), Decision::Hold);
        assert_eq!(algorithm1(0.68, 0.1, 0.69, 64, 16, 16), Decision::Hold);
        // A real capacity-bound thrasher (clear improvement) still grows.
        assert_eq!(algorithm1(0.60, 0.1, 0.70, 64, 16, 16), Decision::Grow(16));
    }

    #[test]
    fn phase_change_unlocks_growth() {
        // A partition that was comfortably at its goal (last window 0.08)
        // and suddenly thrashes (0.95) entered a larger phase: grow, even
        // though 0.95 is no "improvement" over 0.08.
        assert_eq!(algorithm1(0.95, 0.1, 0.08, 4, 4, 16), Decision::Grow(4));
        // A mild worsening inside the noise band stays held.
        assert_eq!(algorithm1(0.68, 0.1, 0.63, 64, 16, 16), Decision::Hold);
    }

    #[test]
    fn below_goal_withdraws_conservatively() {
        // current=32, mr=0.05, goal=0.1: sqrt(16) = 4.
        assert_eq!(algorithm1(0.05, 0.1, 0.2, 32, 4, 16), Decision::Shrink(4));
        // Near-zero miss rate: ceil keeps the withdrawal at one molecule.
        assert_eq!(algorithm1(0.0001, 0.1, 0.2, 16, 4, 16), Decision::Shrink(1));
        // Exactly zero: an idle window withdraws nothing.
        assert_eq!(algorithm1(0.0, 0.1, 0.2, 16, 4, 16), Decision::Hold);
    }

    #[test]
    fn shrink_never_empties_partition() {
        // current=2, mr=0.05, goal=0.1: clearly below goal -> shrink to
        // 1, never to 0.
        match algorithm1(0.05, 0.1, 0.5, 2, 1, 16) {
            Decision::Shrink(n) => assert!(n <= 1),
            other => panic!("expected shrink, got {other:?}"),
        }
        assert_eq!(algorithm1(0.05, 0.1, 0.5, 1, 1, 16), Decision::Hold);
    }

    #[test]
    fn dead_band_under_goal_holds() {
        // 0.09 is below the 0.10 goal but inside the dead band.
        assert_eq!(algorithm1(0.09, 0.1, 0.5, 32, 4, 16), Decision::Hold);
        // 0.05 is clearly below (0.05 < 0.067): withdraws.
        assert!(matches!(
            algorithm1(0.05, 0.1, 0.5, 32, 4, 16),
            Decision::Shrink(_)
        ));
    }

    #[test]
    fn improving_above_goal_grows_toward_linear_target() {
        // current=10, mr=0.3, goal=0.1 -> target 30, grow by 16 (cap).
        assert_eq!(algorithm1(0.3, 0.1, 0.4, 10, 4, 16), Decision::Grow(16));
        // Small gap: target 12, grow by 2.
        assert_eq!(algorithm1(0.12, 0.1, 0.2, 10, 4, 16), Decision::Grow(2));
    }

    #[test]
    fn stagnant_above_goal_holds() {
        assert_eq!(algorithm1(0.3, 0.1, 0.3, 10, 4, 16), Decision::Hold);
        assert_eq!(algorithm1(0.3, 0.1, 0.2, 10, 4, 16), Decision::Hold);
    }

    #[test]
    fn default_policy_reports_trigger_scheme_label() {
        let p = PaperAlgorithm1::new(ResizeTrigger::GlobalAdaptive {
            initial_period: 100,
        });
        assert_eq!(p.name(), "paper-algorithm1");
        assert_eq!(p.trigger_label(), "global-adaptive");
        let c = PaperAlgorithm1::new(ResizeTrigger::Constant { period: 5 });
        assert_eq!(c.trigger_label(), "constant");
    }

    #[test]
    fn default_policy_decides_exactly_like_the_free_function() {
        let mut p = PaperAlgorithm1::new(ResizeTrigger::Constant { period: 5 });
        let inputs = DecisionInputs {
            asid: Asid::new(1),
            window_accesses: 100,
            window_miss_rate: 0.3,
            last_miss_rate: 0.4,
            goal: 0.1,
            current: 10,
            last_allocation: 4,
            max_allocation: 16,
            free_molecules: 99,
        };
        assert_eq!(p.decide(&inputs), algorithm1(0.3, 0.1, 0.4, 10, 4, 16));
    }
}
