//! Memshare-style marginal-benefit arbitration (PAPERS.md): instead of
//! judging each partition in isolation, every all-partitions round ranks
//! the live partitions by the marginal hit-rate return their last
//! allocation bought, then transfers capacity from clearly-satisfied
//! donors to the highest-return claimants. Algorithm 1 asks "is this
//! partition meeting *its* goal?"; this asks "where does the next
//! molecule buy the most hits?".

use super::paper::{Decision, SHRINK_MARGIN};
use super::trigger::{AdaptScope, ResizeController, ResizeEvent, ResizeTrigger};
use super::{DecisionInputs, PartitionWindow, ResizePolicy};
use molcache_trace::Asid;
use std::collections::BTreeMap;

/// What the round planner decided for a partition; sized in `decide`
/// where the authoritative current allocation is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pressure {
    Claim,
    Donate,
}

/// Per-epoch arbitration by marginal hit-rate deltas.
///
/// [`begin_round`](ResizePolicy::begin_round) snapshots every live
/// partition, computes each one's marginal utility — the absolute
/// miss-rate improvement of the closing window over the previous one,
/// i.e. the hit-rate return on whatever the last round granted — and
/// plans:
///
/// - **Donors**: partitions clearly under goal (Algorithm 1's
///   [`SHRINK_MARGIN`] band) release capacity conservatively.
/// - **Claimants**: the top half (at least one) of the above-goal
///   partitions ranked by marginal utility, first-window partitions
///   ranked highest — growth goes where it has been paying off, not to
///   whoever misses hardest. A stagnant over-goal partition with zero
///   marginal return claims nothing, starving compulsory-miss thrashers
///   without a special case.
///
/// All ranking is deterministic: utilities are compared exactly, ties
/// broken by ASID order.
#[derive(Debug, Clone)]
pub struct MemsharePressure {
    controller: ResizeController,
    plan: BTreeMap<Asid, Pressure>,
}

impl MemsharePressure {
    /// Creates the arbiter on a global-adaptive period.
    pub fn new(initial_period: u64) -> Self {
        MemsharePressure {
            controller: ResizeController::new(ResizeTrigger::GlobalAdaptive { initial_period }),
            plan: BTreeMap::new(),
        }
    }
}

impl ResizePolicy for MemsharePressure {
    fn name(&self) -> &'static str {
        "memshare-pressure"
    }

    fn register_app(&mut self, asid: Asid) {
        self.controller.register_app(asid);
    }

    fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        self.controller.on_access(asid)
    }

    fn begin_round(&mut self, windows: &[PartitionWindow]) {
        self.plan.clear();
        // (utility, asid) for every above-goal active partition; donors
        // planned directly. First windows (last == 1.0 sentinel) get the
        // sentinel-sized delta, ranking them ahead of any steady-state
        // partition — new tenants must be able to bootstrap.
        let mut claimants: Vec<(f64, Asid)> = Vec::new();
        for w in windows {
            if w.window_accesses == 0 {
                continue;
            }
            if w.window_miss_rate < w.goal * SHRINK_MARGIN {
                self.plan.insert(w.asid, Pressure::Donate);
            } else if w.window_miss_rate > w.goal {
                let utility = w.last_miss_rate - w.window_miss_rate;
                if utility > 0.0 {
                    claimants.push((utility, w.asid));
                }
            }
        }
        // Highest marginal return first; exact f64 compare is fine (the
        // values are differences of window ratios) with ASID tiebreak.
        claimants.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let take = claimants.len().div_ceil(2);
        for (_, asid) in claimants.into_iter().take(take) {
            self.plan.insert(asid, Pressure::Claim);
        }
    }

    fn decide(&mut self, inputs: &DecisionInputs) -> Decision {
        match self.plan.get(&inputs.asid) {
            Some(Pressure::Claim) => {
                // Linear-model target like Algorithm 1's improving branch,
                // but granted only because the round ranked this
                // partition's marginal return highest.
                let target = ((inputs.current as f64 * inputs.window_miss_rate) / inputs.goal)
                    .ceil() as usize;
                let want = target
                    .saturating_sub(inputs.current)
                    .clamp(1, inputs.max_allocation);
                Decision::Grow(want)
            }
            Some(Pressure::Donate) => {
                let temp = ((inputs.current as f64 * inputs.window_miss_rate) / inputs.goal)
                    .sqrt()
                    .ceil() as usize;
                if temp == 0 || inputs.current <= 1 {
                    Decision::Hold
                } else {
                    Decision::Shrink(temp.min(inputs.current - 1))
                }
            }
            None => Decision::Hold,
        }
    }

    fn adapt(&mut self, scope: AdaptScope, miss_rate: f64, goal: f64) {
        self.controller.adapt(scope, miss_rate, goal);
    }

    fn clone_box(&self) -> Box<dyn ResizePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(asid: u16, mr: f64, last: f64, goal: f64, size: usize) -> PartitionWindow {
        PartitionWindow {
            asid: Asid::new(asid),
            window_accesses: 1_000,
            window_miss_rate: mr,
            last_miss_rate: last,
            goal,
            size,
        }
    }

    fn inputs(asid: u16, mr: f64, goal: f64, current: usize) -> DecisionInputs {
        DecisionInputs {
            asid: Asid::new(asid),
            window_accesses: 1_000,
            window_miss_rate: mr,
            last_miss_rate: 1.0,
            goal,
            current,
            last_allocation: 4,
            max_allocation: 16,
            free_molecules: 50,
        }
    }

    #[test]
    fn highest_marginal_return_claims_first() {
        let mut p = MemsharePressure::new(100);
        // App 1 improved a lot (0.6 -> 0.3), app 2 barely (0.32 -> 0.30):
        // only the top half (one of two) claims.
        p.begin_round(&[
            window(1, 0.30, 0.60, 0.10, 10),
            window(2, 0.30, 0.32, 0.10, 10),
        ]);
        assert!(matches!(
            p.decide(&inputs(1, 0.30, 0.10, 10)),
            Decision::Grow(_)
        ));
        assert_eq!(p.decide(&inputs(2, 0.30, 0.10, 10)), Decision::Hold);
    }

    #[test]
    fn satisfied_partitions_donate() {
        let mut p = MemsharePressure::new(100);
        p.begin_round(&[window(1, 0.05, 0.06, 0.10, 32)]);
        // sqrt(32 * 0.05 / 0.10) = 4.
        assert_eq!(p.decide(&inputs(1, 0.05, 0.10, 32)), Decision::Shrink(4));
        // A one-molecule partition never donates itself away.
        assert_eq!(p.decide(&inputs(1, 0.05, 0.10, 1)), Decision::Hold);
    }

    #[test]
    fn stagnant_thrashers_claim_nothing() {
        let mut p = MemsharePressure::new(100);
        // Zero marginal return (0.8 -> 0.8): no claim, even though the
        // partition misses hardest of everyone.
        p.begin_round(&[
            window(1, 0.80, 0.80, 0.10, 10),
            window(2, 0.20, 0.25, 0.10, 10),
        ]);
        assert_eq!(p.decide(&inputs(1, 0.80, 0.10, 10)), Decision::Hold);
        assert!(matches!(
            p.decide(&inputs(2, 0.20, 0.10, 10)),
            Decision::Grow(_)
        ));
    }

    #[test]
    fn first_window_partitions_rank_ahead() {
        let mut p = MemsharePressure::new(100);
        // App 3 is brand new (sentinel last == 1.0 -> utility 0.2); app 1
        // improved by 0.05. Top half of two claimants = one: app 3.
        p.begin_round(&[
            window(1, 0.30, 0.35, 0.10, 10),
            window(3, 0.80, 1.00, 0.10, 2),
        ]);
        assert!(matches!(
            p.decide(&inputs(3, 0.80, 0.10, 2)),
            Decision::Grow(_)
        ));
        assert_eq!(p.decide(&inputs(1, 0.30, 0.10, 10)), Decision::Hold);
    }

    #[test]
    fn idle_windows_are_ignored() {
        let mut p = MemsharePressure::new(100);
        let mut idle = window(1, 0.05, 0.06, 0.10, 32);
        idle.window_accesses = 0;
        p.begin_round(&[idle]);
        assert_eq!(p.decide(&inputs(1, 0.05, 0.10, 32)), Decision::Hold);
    }
}
