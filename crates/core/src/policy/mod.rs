//! Resize *decision* policies (§3.4, Algorithm 1 and alternatives).
//!
//! PR 5 proved the shape with `VictimPolicy`; this module does the same
//! for resizing. The split is decision vs mechanism:
//!
//! - **Policy (this module)** — when to evaluate a partition and
//!   whether it should grow, shrink, or hold. Implementations of
//!   [`ResizePolicy`] see an immutable [`DecisionInputs`] snapshot per
//!   partition and cache-wide [`PartitionWindow`] snapshots per round.
//! - **Mechanism (`crate::resize`)** — how molecules actually move:
//!   grant/shrink/rehome plumbing on `MolecularCache`, which stays in
//!   core and keeps bumping the memo/search-list structural generation
//!   no matter which policy asked for the move.
//!
//! The default [`PaperAlgorithm1`] reproduces the paper's behavior
//! bit-identically; the alternatives ([`GlobalGoal`], [`PerAppGoal`],
//! [`ProactiveHint`], [`MemsharePressure`]) grow the design space the
//! `moltourney` bench races across workloads.

pub mod memshare;
pub mod paper;
pub mod proactive;
pub mod trigger;
pub mod variants;

pub use memshare::MemsharePressure;
pub use paper::{
    algorithm1, Decision, PaperAlgorithm1, GROWTH_IMPROVEMENT_EPS, PHASE_CHANGE_EPS, SHRINK_MARGIN,
};
pub use proactive::ProactiveHint;
pub use trigger::{
    adapt_period, AdaptScope, ResizeController, ResizeEvent, ResizeTrigger, PERIOD_HYSTERESIS,
};
pub use variants::{GlobalGoal, PerAppGoal};

use molcache_trace::Asid;

/// Everything a policy may consult when deciding one partition's fate.
/// Snapshotted by the mechanism layer immediately before the decision
/// and recorded verbatim on the telemetry `ResizeRecord`, so a resize
/// can always be replayed from its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionInputs {
    /// Partition being decided.
    pub asid: Asid,
    /// Accesses the partition served in the closing window.
    pub window_accesses: u64,
    /// Miss rate over the closing window.
    pub window_miss_rate: f64,
    /// Miss rate of the previous window (1.0 before the first window).
    pub last_miss_rate: f64,
    /// The partition's miss-rate goal.
    pub goal: f64,
    /// Current allocation in molecules.
    pub current: usize,
    /// Molecules granted or withdrawn by the previous resize.
    pub last_allocation: usize,
    /// Per-resize grant cap from the cache configuration.
    pub max_allocation: usize,
    /// Unallocated molecules across the whole cache.
    pub free_molecules: usize,
}

/// One partition's closing-window summary, handed to
/// [`ResizePolicy::begin_round`] for every live partition before the
/// per-partition decisions of an all-partitions round. Lets arbitrating
/// policies (Memshare-style) rank partitions against each other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// Partition the window belongs to.
    pub asid: Asid,
    /// Accesses served in the closing window.
    pub window_accesses: u64,
    /// Miss rate over the closing window.
    pub window_miss_rate: f64,
    /// Miss rate of the previous window (1.0 before the first window).
    pub last_miss_rate: f64,
    /// The partition's miss-rate goal.
    pub goal: f64,
    /// Current allocation in molecules.
    pub size: usize,
}

/// A resize decision policy: owns the trigger timing and the
/// grow/shrink/hold choice, but never moves a molecule itself — the
/// mechanism layer in `crate::resize` applies decisions and is the only
/// code that touches tiles (and the structural generation).
///
/// Contract (see DESIGN.md §14):
/// - `on_access` is called once per serviced address and must be O(1).
/// - `begin_round` is called once per all-partitions round with every
///   live partition's window, before any `decide` of that round.
/// - `decide` must be deterministic in the policy's state and `inputs`.
/// - `adapt` receives the post-round miss rate for the scope the
///   trigger scheme adapts on; policies without adaptive periods ignore
///   it.
/// - `trigger_label` is what telemetry stores in the `ResizeRecord`
///   `trigger` field; the default policy forwards the trigger scheme's
///   name so pre-refactor records are reproduced byte-identically.
pub trait ResizePolicy: Send + std::fmt::Debug {
    /// Stable kebab-case identifier (`"paper-algorithm1"`, ...).
    fn name(&self) -> &'static str;

    /// Label for the telemetry `trigger` field.
    fn trigger_label(&self) -> &'static str {
        self.name()
    }

    /// Called when an application first receives a region (and on
    /// policy installation for every existing region).
    fn register_app(&mut self, asid: Asid);

    /// Advances trigger timing by one serviced address.
    fn on_access(&mut self, asid: Asid) -> ResizeEvent;

    /// Observes every live partition's closing window at the start of
    /// an all-partitions round. Default: no cross-partition state.
    fn begin_round(&mut self, windows: &[PartitionWindow]) {
        let _ = windows;
    }

    /// Decides one partition's fate from its inputs snapshot.
    fn decide(&mut self, inputs: &DecisionInputs) -> Decision;

    /// Feeds the post-round miss rate back into the trigger period
    /// (Algorithm 1's x2 / x0.1 update). Default: fixed period.
    fn adapt(&mut self, scope: AdaptScope, miss_rate: f64, goal: f64) {
        let _ = (scope, miss_rate, goal);
    }

    /// Delivers a declared working-set-size annotation (in molecules)
    /// from a trace phase marker. Default: ignored.
    fn phase_hint(&mut self, asid: Asid, target_molecules: usize) {
        let _ = (asid, target_molecules);
    }

    /// Clones the policy behind the trait object (`MolecularCache` is
    /// `Clone`).
    fn clone_box(&self) -> Box<dyn ResizePolicy>;
}

impl Clone for Box<dyn ResizePolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Every policy name [`by_name`] resolves, in tournament order.
pub const POLICY_NAMES: [&str; 5] = [
    "paper-algorithm1",
    "global-goal",
    "per-app-goal",
    "proactive-hint",
    "memshare-pressure",
];

/// Builds a policy by its stable name, parameterized from the cache
/// configuration (trigger scheme + default goal). Returns `None` for an
/// unknown name.
pub fn by_name(name: &str, cfg: &crate::MolecularConfig) -> Option<Box<dyn ResizePolicy>> {
    let trigger = cfg.trigger();
    let initial = trigger.initial_period();
    match name {
        "paper-algorithm1" | "paper" | "default" => Some(Box::new(PaperAlgorithm1::new(trigger))),
        "global-goal" => Some(Box::new(GlobalGoal::new(cfg.default_goal(), initial))),
        "per-app-goal" => Some(Box::new(PerAppGoal::new(initial))),
        "proactive-hint" => Some(Box::new(ProactiveHint::new(initial))),
        "memshare-pressure" => Some(Box::new(MemsharePressure::new(initial))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> crate::MolecularConfig {
        crate::MolecularConfig::builder()
            .molecule_size(1 << 10)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn registry_resolves_every_published_name() {
        let cfg = cfg();
        for name in POLICY_NAMES {
            let policy = by_name(name, &cfg).expect("published name resolves");
            assert_eq!(policy.name(), name);
        }
        assert!(by_name("no-such-policy", &cfg).is_none());
    }

    #[test]
    fn boxed_policies_clone() {
        let cfg = cfg();
        let mut policy = by_name("paper-algorithm1", &cfg).unwrap();
        policy.register_app(Asid::new(1));
        let cloned = policy.clone();
        assert_eq!(cloned.name(), policy.name());
    }
}
