//! Property tests for Randy replacement (§3.3): the victim row is a pure
//! function of the address, and victims never leave the requesting region.

use molcache_core::config::RegionPolicy;
use molcache_core::ids::{ClusterId, MoleculeId, TileId};
use molcache_core::region::Region;
use molcache_trace::{Address, Asid};
use proptest::prelude::*;

fn region_with(policy: RegionPolicy, row_max: usize, molecules: u32) -> Region {
    let mut region = Region::new(
        Asid::new(1),
        TileId(0),
        ClusterId(0),
        policy,
        1,
        0.25,
        row_max,
    );
    for i in 0..molecules {
        region.add_molecule(MoleculeId(i));
    }
    region
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Randy always indexes the row `(addr / molecule_size) mod row_max`
    /// (mod the rows actually built while the region is still growing),
    /// and the chosen molecule belongs to the requesting region.
    #[test]
    fn randy_victim_row_is_address_mod_rows(
        (row_max, molecules) in (1u64..9, 1u32..40),
        addr in proptest::num::u64::ANY,
        draw in proptest::num::u64::ANY,
        size_shift in 10u32..16,
    ) {
        let molecule_size = 1u64 << size_shift; // 1KB..32KB molecules
        let mut region = region_with(RegionPolicy::Randy, row_max as usize, molecules);
        prop_assert_eq!(region.num_rows(), (row_max as usize).min(molecules as usize));

        let victim = region
            .select_victim(Address::new(addr), molecule_size, draw)
            .expect("non-empty region always yields a victim");

        // Victim belongs to the requesting region.
        prop_assert!(region.molecules().any(|m| m == victim));
        prop_assert!(victim.0 < molecules);

        // And to exactly the row Randy's address hash names.
        let row = ((addr / molecule_size) % region.num_rows() as u64) as usize;
        prop_assert!(region.row(row).contains(&victim));
    }

    /// Two misses on the same address always index the same row, no
    /// matter what the replacement draw does — Randy's row choice is
    /// deterministic in the address alone.
    #[test]
    fn randy_row_choice_ignores_the_draw(
        addr in proptest::num::u64::ANY,
        (draw_a, draw_b) in (proptest::num::u64::ANY, proptest::num::u64::ANY),
    ) {
        const MOLECULE_SIZE: u64 = 8 * 1024;
        let mut region = region_with(RegionPolicy::Randy, 4, 16);
        let row = ((addr / MOLECULE_SIZE) % region.num_rows() as u64) as usize;
        let a = region.select_victim(Address::new(addr), MOLECULE_SIZE, draw_a).unwrap();
        let b = region.select_victim(Address::new(addr), MOLECULE_SIZE, draw_b).unwrap();
        prop_assert!(region.row(row).contains(&a));
        prop_assert!(region.row(row).contains(&b));
    }

    /// LRU-Direct uses the same address-to-row mapping as Randy and also
    /// never picks a molecule outside the region.
    #[test]
    fn lru_direct_victims_stay_in_region(
        (row_max, molecules) in (1u64..9, 1u32..40),
        addr in proptest::num::u64::ANY,
    ) {
        const MOLECULE_SIZE: u64 = 8 * 1024;
        let mut region = region_with(RegionPolicy::LruDirect, row_max as usize, molecules);
        let victim = region
            .select_victim(Address::new(addr), MOLECULE_SIZE, 0)
            .expect("non-empty region always yields a victim");
        let row = ((addr / MOLECULE_SIZE) % region.num_rows() as u64) as usize;
        prop_assert!(region.row(row).contains(&victim));
    }
}
