//! Property tests for the cached Ulmo search lists (`search_list`):
//! arbitrary access/grow/shrink/release/re-home/shared-bit
//! interleavings produce identical global and per-app statistics with
//! the search cache on vs off, a current generation stamp always
//! implies agreement with the membership-derived reference list, and
//! no stale list survives a structural-generation bump as current.

use molcache_core::config::InitialAllocation;
use molcache_core::{MolecularCache, MolecularConfig, ResizeTrigger};
use molcache_sim::{CacheModel, Request};
use molcache_trace::{AccessKind, Address, Asid};
use proptest::prelude::*;

/// A small cache with an aggressive resize trigger so short op
/// sequences still exercise grows, shrinks and generation churn.
fn torture_config() -> MolecularConfig {
    MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(ResizeTrigger::Constant { period: 64 })
        .miss_rate_goal(0.05)
        .build()
        .unwrap()
}

/// One step of a generated interleaving, decoded from two raw u64
/// draws. Compared with the memo suite this mix adds explicit
/// grow/shrink ops so search lists churn through every structural
/// path, not just the trigger-driven resizes.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access { asid: u16, addr: u64, write: bool },
    Grow { asid: u16, by: usize },
    Shrink { asid: u16, by: usize },
    Release { asid: u16 },
    Rehome { asid: u16, tile: usize },
    MakeShared { tile: usize },
}

/// Decodes `(selector, payload)` into an op. Accesses dominate (so
/// cross-tile searches actually launch); structural ops are sprinkled
/// in.
fn decode(selector: u64, payload: u64) -> Op {
    let asid = (payload % 3 + 1) as u16;
    match selector % 16 {
        11 => Op::Grow {
            asid,
            by: (payload >> 8) as usize % 4 + 1,
        },
        12 => Op::Shrink {
            asid,
            by: (payload >> 8) as usize % 4 + 1,
        },
        13 => Op::Release { asid },
        14 => Op::Rehome {
            asid,
            tile: (payload >> 8) as usize % 2,
        },
        15 => Op::MakeShared {
            tile: (payload >> 8) as usize % 2,
        },
        _ => Op::Access {
            asid,
            // A handful of hot lines per app plus a streaming tail.
            addr: if payload.is_multiple_of(4) {
                u64::from(asid) * 4096 + (payload >> 4) % 4 * 64
            } else {
                (payload >> 4) % 256 * 64
            },
            write: payload.is_multiple_of(5),
        },
    }
}

fn apply(c: &mut MolecularCache, op: Op) {
    match op {
        Op::Access { asid, addr, write } => {
            c.access(Request {
                asid: Asid::new(asid),
                addr: Address::new(addr),
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            });
        }
        Op::Grow { asid, by } => {
            if let Some(size) = c.region_size(Asid::new(asid)) {
                c.set_region_size(Asid::new(asid), size + by);
            }
        }
        Op::Shrink { asid, by } => {
            if let Some(size) = c.region_size(Asid::new(asid)) {
                c.set_region_size(Asid::new(asid), size.saturating_sub(by));
            }
        }
        Op::Release { asid } => {
            c.release_region(Asid::new(asid));
        }
        Op::Rehome { asid, tile } => {
            c.rehome_app(Asid::new(asid), tile);
        }
        Op::MakeShared { tile } => {
            c.make_shared(tile, 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of accesses, explicit grows/shrinks,
    /// trigger-driven resizes and revocations yields bit-identical
    /// stats, activity and region state with the search cache on vs
    /// off.
    #[test]
    fn search_cache_is_stat_invisible_under_arbitrary_interleavings(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..400),
    ) {
        let mut on = MolecularCache::new(torture_config());
        let mut off = MolecularCache::new(torture_config());
        on.set_search_cache(true);
        off.set_search_cache(false);
        for &(sel, payload) in &ops {
            let op = decode(sel, payload);
            apply(&mut on, op);
            apply(&mut off, op);
        }
        prop_assert_eq!(on.stats(), off.stats());
        prop_assert_eq!(on.activity(), off.activity());
        prop_assert_eq!(on.snapshots(), off.snapshots());
        prop_assert_eq!(on.free_molecules(), off.free_molecules());
        prop_assert_eq!(on.find_duplicate_line(), None);
    }

    /// Per-app breakdown of the same property: every application's
    /// hit/miss counters agree between the two runs.
    #[test]
    fn search_cache_keeps_every_apps_counters_identical(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..250),
    ) {
        let mut on = MolecularCache::new(torture_config());
        let mut off = MolecularCache::new(torture_config());
        on.set_search_cache(true);
        off.set_search_cache(false);
        for &(sel, payload) in &ops {
            let op = decode(sel, payload);
            apply(&mut on, op);
            apply(&mut off, op);
        }
        for asid in 1u16..=3 {
            let a = on.stats().app(Asid::new(asid));
            let b = off.stats().app(Asid::new(asid));
            prop_assert_eq!(a, b, "per-app stats diverged for ASID {}", asid);
        }
    }

    /// The search-list invalidation contract, checked after every op:
    ///
    /// 1. A current stamp is trustworthy — whenever a region's cached
    ///    stamp equals the live structural generation, the cached tile
    ///    list equals the list derived directly from membership.
    /// 2. No stale list survives a generation bump as current — after
    ///    any op that advances the generation, no stamp written before
    ///    the op can equal the new generation (stamps only move by
    ///    rebuilds, which re-derive from membership and satisfy 1).
    #[test]
    fn no_stale_search_list_reads_as_current(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..300),
    ) {
        let mut c = MolecularCache::new(torture_config());
        c.set_search_cache(true);
        let mut generation = c.structure_generation();

        for &(sel, payload) in &ops {
            // Stamps observed before the op, to detect a stale stamp
            // getting promoted by a bump instead of a rebuild.
            let before: Vec<(u16, u64)> = (1u16..=3)
                .filter_map(|a| {
                    c.cached_search_list(Asid::new(a)).map(|(s, _)| (a, s))
                })
                .collect();

            let op = decode(sel, payload);
            apply(&mut c, op);

            let now = c.structure_generation();
            prop_assert!(now >= generation, "generation went backwards");
            if now != generation {
                for &(asid, stamp) in &before {
                    prop_assert!(
                        stamp != now,
                        "pre-bump stamp for ASID {} reads as current",
                        asid
                    );
                }
                generation = now;
            }

            for asid in 1u16..=3 {
                let Some((stamp, cached)) = c.cached_search_list(Asid::new(asid))
                else {
                    continue;
                };
                if stamp == now {
                    let reference = c
                        .reference_search_list(Asid::new(asid))
                        .expect("region exists");
                    prop_assert_eq!(
                        &cached, &reference,
                        "current-stamped list diverged from membership for ASID {}",
                        asid
                    );
                }
            }
        }
    }
}
