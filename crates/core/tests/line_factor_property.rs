//! Property tests for the fill stage's line-factor contract (§3.2): a
//! `line_factor = k` miss lands its k-line block in k **consecutive
//! frames of one molecule**, so an enlarged line size never straddles a
//! molecule — and therefore never crosses a Randy victim-row boundary,
//! since replacement rows partition whole molecules.

use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_sim::{CacheModel, Request};
use molcache_trace::{AccessKind, Address, Asid, LineAddr};
use proptest::prelude::*;

const LINE: u64 = 64;
const MOLECULE: u64 = 1024; // 16 frames of 64 B

fn cache_with_line_factor(k: u32, seed: u64) -> MolecularCache {
    let cfg = MolecularConfig::builder()
        .molecule_size(MOLECULE)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .policy(RegionPolicy::Randy)
        .app_line_factor(Asid::new(1), k)
        .trigger(ResizeTrigger::Constant { period: 500 })
        .seed(seed)
        .build()
        .expect("test geometry is valid");
    MolecularCache::new(cfg)
}

fn read(addr: u64) -> Request {
    Request {
        asid: Asid::new(1),
        addr: Address::new(addr),
        kind: AccessKind::Read,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every `line_factor = k` fill lands the whole k-line block in k
    /// consecutive frames of a single molecule of the requesting region,
    /// the block's frames never wrap the molecule, and the landing
    /// molecule sits in exactly one Randy victim row.
    #[test]
    fn block_fills_land_in_one_molecule_and_one_randy_row(
        k_shift in 0u32..4,          // line_factor 1, 2, 4, 8
        seed in 1u64..1024,
        addrs in proptest::collection::vec(0u64..(1 << 14), 1..60),
    ) {
        let k = 1u32 << k_shift;
        let asid = Asid::new(1);
        let mut cache = cache_with_line_factor(k, seed);
        let frames = MOLECULE / LINE;

        for addr in addrs {
            let out = cache.access(read(addr * LINE));
            if out.hit || out.lines_fetched == 0 {
                continue; // hits and bypassed misses fill nothing
            }
            prop_assert_eq!(out.lines_fetched, k, "a fill fetches the whole block");

            let line = Address::new(addr * LINE).line(LINE);
            let block_start = LineAddr(line.0 - line.0 % u64::from(k));

            // All k lines landed, in one molecule.
            let home = cache
                .resident_molecule_of(asid, block_start)
                .expect("block start is resident after the fill");
            let mut landed_frames = Vec::new();
            for j in 0..u64::from(k) {
                let l = LineAddr(block_start.0 + j);
                prop_assert_eq!(
                    cache.resident_molecule_of(asid, l),
                    Some(home),
                    "line {} of the block left molecule {:?}", j, home
                );
                landed_frames.push(
                    cache
                        .resident_frame_of(home, l)
                        .expect("resident line has a frame"),
                );
            }

            // Frames are consecutive and never wrap the molecule: the
            // block is aligned to k and k divides the frame count.
            let first = landed_frames[0];
            prop_assert!(
                (first as u64).is_multiple_of(u64::from(k)),
                "block is frame-aligned"
            );
            prop_assert!(first as u64 + u64::from(k) <= frames, "block fits the molecule");
            for (j, frame) in landed_frames.iter().enumerate() {
                prop_assert_eq!(*frame, first + j, "frames are consecutive");
            }

            // One molecule means one Randy victim row: the landing
            // molecule is a member of exactly one replacement row.
            let row = cache
                .region_row_of(asid, home)
                .expect("landing molecule belongs to the region's view");
            for j in 1..u64::from(k) {
                let l = LineAddr(block_start.0 + j);
                let m = cache.resident_molecule_of(asid, l).unwrap();
                prop_assert_eq!(
                    cache.region_row_of(asid, m),
                    Some(row),
                    "block crossed a victim-row boundary"
                );
            }
        }

        // The invalidate-then-fill protocol kept every line unique.
        prop_assert_eq!(cache.find_duplicate_line(), None);
    }

    /// The contract holds through resizing: Algorithm 1 reshaping the
    /// region (constant trigger, period 500) never leaves a block split
    /// across molecules.
    #[test]
    fn blocks_stay_whole_across_resizes(
        seed in 1u64..256,
        stride in 1u64..9,
    ) {
        let k = 4u32;
        let asid = Asid::new(1);
        let mut cache = cache_with_line_factor(k, seed);
        for i in 0..2_000u64 {
            cache.access(read((i * stride % 600) * LINE));
        }
        // Sweep every resident block-start and check wholeness.
        for block in 0..(600 / u64::from(k) + 1) {
            let start = LineAddr(block * u64::from(k));
            let Some(home) = cache.resident_molecule_of(asid, start) else {
                continue;
            };
            for j in 1..u64::from(k) {
                let l = LineAddr(start.0 + j);
                if let Some(m) = cache.resident_molecule_of(asid, l) {
                    prop_assert_eq!(m, home, "resident block {} split", block);
                }
            }
        }
        prop_assert_eq!(cache.find_duplicate_line(), None);
    }
}
