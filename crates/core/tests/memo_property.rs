//! Property tests for the memoization front-end (`pipeline::memo`):
//! arbitrary access/resize/revoke interleavings produce identical
//! per-app statistics with memoization on vs off, and no memo entry
//! ever survives a generation bump.
//!
//! The file compiles under every CI feature combo. Without `memo-front`
//! the runtime toggle is a no-op, so the equivalence property degrades
//! to a (still useful) determinism check and the generation property
//! is compiled out.

use molcache_core::config::InitialAllocation;
use molcache_core::{MolecularCache, MolecularConfig, ResizeTrigger};
use molcache_sim::{CacheModel, Request};
use molcache_trace::{AccessKind, Address, Asid};
use proptest::prelude::*;

/// A small cache with an aggressive resize trigger so short op
/// sequences still exercise grows, shrinks and generation churn.
fn torture_config() -> MolecularConfig {
    MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(ResizeTrigger::Constant { period: 64 })
        .miss_rate_goal(0.05)
        .build()
        .unwrap()
}

/// One step of a generated interleaving, decoded from two raw u64 draws.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access { asid: u16, addr: u64, write: bool },
    Release { asid: u16 },
    Rehome { asid: u16, tile: usize },
    MakeShared { tile: usize },
}

/// Decodes `(selector, payload)` into an op. Accesses dominate (so the
/// memo actually gets warm); structural ops are sprinkled in.
fn decode(selector: u64, payload: u64) -> Op {
    let asid = (payload % 3 + 1) as u16;
    match selector % 16 {
        13 => Op::Release { asid },
        14 => Op::Rehome {
            asid,
            tile: (payload >> 8) as usize % 2,
        },
        15 => Op::MakeShared {
            tile: (payload >> 8) as usize % 2,
        },
        _ => Op::Access {
            asid,
            // A handful of hot lines per app plus a streaming tail.
            addr: if payload.is_multiple_of(4) {
                u64::from(asid) * 4096 + (payload >> 4) % 4 * 64
            } else {
                (payload >> 4) % 256 * 64
            },
            write: payload.is_multiple_of(5),
        },
    }
}

fn apply(c: &mut MolecularCache, op: Op) {
    match op {
        Op::Access { asid, addr, write } => {
            c.access(Request {
                asid: Asid::new(asid),
                addr: Address::new(addr),
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            });
        }
        Op::Release { asid } => {
            c.release_region(Asid::new(asid));
        }
        Op::Rehome { asid, tile } => {
            c.rehome_app(Asid::new(asid), tile);
        }
        Op::MakeShared { tile } => {
            c.make_shared(tile, 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of accesses, resizes (via the constant trigger)
    /// and revocations yields bit-identical per-app stats, activity and
    /// region state with the memo on vs off.
    #[test]
    fn memo_is_stat_invisible_under_arbitrary_interleavings(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..400),
    ) {
        let mut on = MolecularCache::new(torture_config());
        let mut off = MolecularCache::new(torture_config());
        on.set_memo_front(true);
        off.set_memo_front(false);
        for &(sel, payload) in &ops {
            let op = decode(sel, payload);
            apply(&mut on, op);
            apply(&mut off, op);
        }
        prop_assert_eq!(on.stats(), off.stats());
        prop_assert_eq!(on.activity(), off.activity());
        prop_assert_eq!(on.snapshots(), off.snapshots());
        prop_assert_eq!(on.free_molecules(), off.free_molecules());
        prop_assert_eq!(on.find_duplicate_line(), None);
    }

    /// Per-app breakdown of the same property: every application's
    /// hit/miss counters agree between the two runs.
    #[test]
    fn memo_keeps_every_apps_counters_identical(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..250),
    ) {
        let mut on = MolecularCache::new(torture_config());
        let mut off = MolecularCache::new(torture_config());
        on.set_memo_front(true);
        off.set_memo_front(false);
        for &(sel, payload) in &ops {
            let op = decode(sel, payload);
            apply(&mut on, op);
            apply(&mut off, op);
        }
        for asid in 1u16..=3 {
            let a = on.stats().app(Asid::new(asid));
            let b = off.stats().app(Asid::new(asid));
            prop_assert_eq!(a, b, "per-app stats diverged for ASID {}", asid);
        }
    }
}

#[cfg(feature = "memo-front")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No memo entry survives a generation bump: whenever an op advances
    /// the table's generation, every key that would have memo-hit before
    /// the op must miss the memo after it.
    #[test]
    fn no_memo_hit_survives_a_generation_bump(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..300),
    ) {
        let mut c = MolecularCache::new(torture_config());
        let line_size = c.config().line_size();
        // Keys observed to be memo-hittable since the last bump.
        let mut live: Vec<(u16, u64)> = Vec::new();
        let mut generation = c.memo_stats().expect("feature on").generation;

        for &(sel, payload) in &ops {
            let op = decode(sel, payload);
            apply(&mut c, op);

            let now = c.memo_stats().expect("feature on").generation;
            if now != generation {
                for &(asid, addr) in &live {
                    let line = Address::new(addr).line(line_size);
                    prop_assert!(
                        !c.memo_would_hit(Asid::new(asid), line),
                        "entry for (asid {}, addr {:#x}) survived a generation bump",
                        asid,
                        addr
                    );
                }
                live.clear();
                generation = now;
            }

            if let Op::Access { asid, addr, .. } = op {
                let line = Address::new(addr).line(line_size);
                if c.memo_would_hit(Asid::new(asid), line) {
                    live.push((asid, addr));
                }
            }
        }
    }
}
