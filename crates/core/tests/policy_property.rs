//! Property tests for the `ResizePolicy` trait extraction: the default
//! [`PaperAlgorithm1`] behind the trait must be *byte-identical* to the
//! pre-refactor decision layer across arbitrary access/resize/lifecycle
//! interleavings — global and per-app statistics, region snapshots,
//! resize logs, and the exported telemetry JSON.
//!
//! The reference is [`FrozenPaper`]: a verbatim copy of the decision
//! layer as it existed *before* the trait (the old `ResizeController`
//! with its duplicated `adapt_global`/`adapt_app` goal-band logic and
//! the old `algorithm1`), wrapped in the trait only at the edges. If a
//! future change drifts the default policy's decisions, periods, or
//! telemetry labels, these tests catch it against the frozen seed.

use molcache_core::config::InitialAllocation;
use molcache_core::policy::{AdaptScope, Decision, DecisionInputs, ResizeEvent, ResizePolicy};
use molcache_core::{MolecularCache, MolecularConfig, ResizeTrigger};
use molcache_sim::{CacheModel, Request};
use molcache_telemetry::{Recorder, SinkHandle};
use molcache_trace::{AccessKind, Address, Asid};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

// ---- the frozen pre-refactor decision layer ----------------------------

const MIN_PERIOD_FRACTION: u64 = 10;
const MAX_PERIOD_FACTOR: u64 = 16;
const PERIOD_HYSTERESIS: f64 = 1.5;
const GROWTH_IMPROVEMENT_EPS: f64 = 0.02;
const PHASE_CHANGE_EPS: f64 = 0.10;
const SHRINK_MARGIN: f64 = 0.67;

fn frozen_adapt_period(period: u64, initial: u64, miss_rate: f64, goal: f64) -> u64 {
    let initial = initial.max(1);
    let next = if miss_rate < goal {
        period.saturating_mul(2)
    } else if miss_rate > goal * PERIOD_HYSTERESIS {
        (period / 10).max(1)
    } else {
        period
    };
    next.clamp(
        (initial / MIN_PERIOD_FRACTION).max(1),
        initial.saturating_mul(MAX_PERIOD_FACTOR),
    )
}

fn frozen_algorithm1(
    miss_rate: f64,
    goal: f64,
    last_miss_rate: f64,
    current: usize,
    last_allocation: usize,
    max_allocation: usize,
) -> Decision {
    if miss_rate > 0.5 {
        let improving = miss_rate <= last_miss_rate - GROWTH_IMPROVEMENT_EPS;
        let first_window = last_miss_rate >= 1.0;
        let phase_change = miss_rate >= last_miss_rate + PHASE_CHANGE_EPS;
        if improving || first_window || phase_change {
            Decision::Grow(max_allocation.min(last_allocation.max(1)))
        } else {
            Decision::Hold
        }
    } else if miss_rate < goal * SHRINK_MARGIN {
        let temp = ((current as f64 * miss_rate) / goal).sqrt().ceil() as usize;
        if temp == 0 || current <= 1 {
            Decision::Hold
        } else {
            Decision::Shrink(temp.min(current - 1))
        }
    } else if miss_rate < goal {
        Decision::Hold
    } else if miss_rate < last_miss_rate {
        let target = ((current as f64 * miss_rate) / goal).ceil() as usize;
        if target <= current {
            Decision::Hold
        } else {
            Decision::Grow((target - current).min(max_allocation))
        }
    } else {
        Decision::Hold
    }
}

#[derive(Debug, Clone, Copy)]
struct FrozenTimer {
    period: u64,
    countdown: u64,
}

/// The pre-refactor controller + Algorithm 1 as one policy, with the
/// original *duplicated* goal-band logic in `adapt` (each scope inlines
/// its own `adapt_period` call, exactly as `adapt_global`/`adapt_app`
/// did before they were unified).
#[derive(Debug, Clone)]
struct FrozenPaper {
    trigger: ResizeTrigger,
    period: u64,
    countdown: u64,
    per_app: BTreeMap<Asid, FrozenTimer>,
}

impl FrozenPaper {
    fn new(trigger: ResizeTrigger) -> Self {
        let initial = match trigger {
            ResizeTrigger::Constant { period } => period,
            ResizeTrigger::GlobalAdaptive { initial_period }
            | ResizeTrigger::PerAppAdaptive { initial_period } => initial_period,
        }
        .max(1);
        FrozenPaper {
            trigger,
            period: initial,
            countdown: initial,
            per_app: BTreeMap::new(),
        }
    }

    fn initial(&self) -> u64 {
        match self.trigger {
            ResizeTrigger::Constant { period } => period,
            ResizeTrigger::GlobalAdaptive { initial_period }
            | ResizeTrigger::PerAppAdaptive { initial_period } => initial_period,
        }
        .max(1)
    }
}

impl ResizePolicy for FrozenPaper {
    fn name(&self) -> &'static str {
        "paper-algorithm1"
    }

    fn trigger_label(&self) -> &'static str {
        self.trigger.name()
    }

    fn register_app(&mut self, asid: Asid) {
        let initial = self.initial();
        self.per_app.entry(asid).or_insert(FrozenTimer {
            period: initial,
            countdown: initial,
        });
    }

    fn on_access(&mut self, asid: Asid) -> ResizeEvent {
        match self.trigger {
            ResizeTrigger::Constant { .. } | ResizeTrigger::GlobalAdaptive { .. } => {
                self.countdown = self.countdown.saturating_sub(1);
                if self.countdown == 0 {
                    self.countdown = self.period;
                    ResizeEvent::AllPartitions
                } else {
                    ResizeEvent::None
                }
            }
            ResizeTrigger::PerAppAdaptive { .. } => {
                self.register_app(asid);
                let timer = self.per_app.get_mut(&asid).expect("registered above");
                timer.countdown = timer.countdown.saturating_sub(1);
                if timer.countdown == 0 {
                    timer.countdown = timer.period;
                    ResizeEvent::Partition(asid)
                } else {
                    ResizeEvent::None
                }
            }
        }
    }

    fn decide(&mut self, inputs: &DecisionInputs) -> Decision {
        frozen_algorithm1(
            inputs.window_miss_rate,
            inputs.goal,
            inputs.last_miss_rate,
            inputs.current,
            inputs.last_allocation,
            inputs.max_allocation,
        )
    }

    fn adapt(&mut self, scope: AdaptScope, miss_rate: f64, goal: f64) {
        // Deliberately duplicated per scope: this is the pre-refactor
        // shape the unified code path must reproduce exactly.
        match scope {
            AdaptScope::Global => {
                if let ResizeTrigger::GlobalAdaptive { initial_period } = self.trigger {
                    self.period = frozen_adapt_period(self.period, initial_period, miss_rate, goal);
                    self.countdown = self.countdown.min(self.period);
                }
            }
            AdaptScope::App(asid) => {
                if let ResizeTrigger::PerAppAdaptive { initial_period } = self.trigger {
                    if let Some(timer) = self.per_app.get_mut(&asid) {
                        timer.period =
                            frozen_adapt_period(timer.period, initial_period, miss_rate, goal);
                        timer.countdown = timer.countdown.min(timer.period);
                    }
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ResizePolicy> {
        Box::new(self.clone())
    }
}

// ---- the interleaving harness ------------------------------------------

fn torture_config(trigger: ResizeTrigger) -> MolecularConfig {
    MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(trigger)
        .miss_rate_goal(0.05)
        .build()
        .unwrap()
}

/// One step of a generated interleaving: accesses dominate so windows
/// accumulate; lifecycle ops (release/rehome/share/flush/set-size)
/// exercise the mechanism paths between decisions.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access { asid: u16, addr: u64, write: bool },
    Release { asid: u16 },
    Rehome { asid: u16, tile: usize },
    MakeShared { tile: usize },
    Flush { asid: u16 },
    SetSize { asid: u16, molecules: usize },
}

fn decode(selector: u64, payload: u64) -> Op {
    let asid = (payload % 3 + 1) as u16;
    match selector % 24 {
        19 => Op::Release { asid },
        20 => Op::Rehome {
            asid,
            tile: (payload >> 8) as usize % 2,
        },
        21 => Op::MakeShared {
            tile: (payload >> 8) as usize % 2,
        },
        22 => Op::Flush { asid },
        23 => Op::SetSize {
            asid,
            molecules: (payload >> 8) as usize % 12 + 1,
        },
        _ => Op::Access {
            asid,
            addr: if payload.is_multiple_of(4) {
                u64::from(asid) * 4096 + (payload >> 4) % 4 * 64
            } else {
                (payload >> 4) % 256 * 64
            },
            write: payload.is_multiple_of(5),
        },
    }
}

fn apply(c: &mut MolecularCache, op: Op) {
    match op {
        Op::Access { asid, addr, write } => {
            c.access(Request {
                asid: Asid::new(asid),
                addr: Address::new(addr),
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            });
        }
        Op::Release { asid } => {
            c.release_region(Asid::new(asid));
        }
        Op::Rehome { asid, tile } => {
            c.rehome_app(Asid::new(asid), tile);
        }
        Op::MakeShared { tile } => {
            c.make_shared(tile, 1);
        }
        Op::Flush { asid } => {
            c.flush_region(Asid::new(asid));
        }
        Op::SetSize { asid, molecules } => {
            let a = Asid::new(asid);
            if c.has_region(a) {
                c.set_region_size(a, molecules);
            }
        }
    }
}

/// Runs the same interleaving on a default-policy cache and a
/// frozen-reference cache (both observed by a telemetry recorder) and
/// asserts byte-identical outcomes including the exported JSON.
fn assert_equivalent(trigger: ResizeTrigger, ops: &[(u64, u64)]) -> Result<(), TestCaseError> {
    let rec_a: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::new("run")));
    let rec_b: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::new("run")));
    let sink_a: Arc<Mutex<dyn molcache_telemetry::Sink>> = rec_a.clone();
    let sink_b: Arc<Mutex<dyn molcache_telemetry::Sink>> = rec_b.clone();

    let mut default_cache =
        MolecularCache::new(torture_config(trigger)).with_sink(SinkHandle::shared(sink_a, 100));
    let mut frozen_cache =
        MolecularCache::new(torture_config(trigger)).with_sink(SinkHandle::shared(sink_b, 100));
    frozen_cache.set_resize_policy(Box::new(FrozenPaper::new(trigger)));
    prop_assert_eq!(default_cache.resize_policy_name(), "paper-algorithm1");
    prop_assert_eq!(frozen_cache.resize_policy_name(), "paper-algorithm1");

    for &(sel, payload) in ops {
        let op = decode(sel, payload);
        apply(&mut default_cache, op);
        apply(&mut frozen_cache, op);
    }

    prop_assert_eq!(default_cache.stats(), frozen_cache.stats());
    prop_assert_eq!(default_cache.activity(), frozen_cache.activity());
    prop_assert_eq!(default_cache.snapshots(), frozen_cache.snapshots());
    prop_assert_eq!(
        default_cache.free_molecules(),
        frozen_cache.free_molecules()
    );
    prop_assert_eq!(default_cache.resize_rounds(), frozen_cache.resize_rounds());
    prop_assert_eq!(
        default_cache.failed_allocations(),
        frozen_cache.failed_allocations()
    );

    let a = rec_a.lock().unwrap();
    let b = rec_b.lock().unwrap();
    // Structured resize logs agree record for record (including the
    // policy/trigger labels and decision-input snapshots)...
    prop_assert_eq!(a.resizes(), b.resizes());
    // ...and the canonical telemetry JSON is byte-identical.
    prop_assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Constant trigger: the default policy behind the trait reproduces
    /// the pre-refactor seed byte for byte.
    #[test]
    fn default_policy_matches_frozen_seed_constant(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..350),
    ) {
        assert_equivalent(ResizeTrigger::Constant { period: 64 }, &ops)?;
    }

    /// Global-adaptive trigger (the default scheme): period adaptation
    /// through the unified code path matches the old duplicated one.
    #[test]
    fn default_policy_matches_frozen_seed_global_adaptive(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..350),
    ) {
        assert_equivalent(ResizeTrigger::GlobalAdaptive { initial_period: 64 }, &ops)?;
    }

    /// Per-app adaptive trigger: per-application timers and adaptation
    /// match the old duplicated code path.
    #[test]
    fn default_policy_matches_frozen_seed_per_app_adaptive(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..350),
    ) {
        assert_equivalent(ResizeTrigger::PerAppAdaptive { initial_period: 64 }, &ops)?;
    }
}
