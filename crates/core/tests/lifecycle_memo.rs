//! Lifecycle ops vs the memoization front-end: every lifecycle-driven
//! grant, shrink, flush and release must route through the same
//! structural path that bumps the memo generation, so a serving layer
//! (`molserve`) can never replay a stale memo hit across an admit /
//! resize / evict / revoke — including across a revoke + re-admit of the
//! same ASID, where the "same" (asid, line) key suddenly refers to a
//! brand-new region.
//!
//! Compiled to an empty suite without the `memo-front` feature (the CI
//! feature matrix runs memo-free combos where there is nothing to pin).
#![cfg(feature = "memo-front")]

use molcache_core::config::InitialAllocation;
use molcache_core::{MolecularCache, MolecularConfig, ResizeTrigger};
use molcache_sim::{CacheModel, Request};
use molcache_trace::{AccessKind, Address, Asid, LineAddr};

/// Small cache, resize trigger pushed out of the way so only the
/// lifecycle calls under test cause structural changes.
fn cache() -> MolecularCache {
    let cfg = MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(ResizeTrigger::Constant { period: 1 << 30 })
        .build()
        .unwrap();
    MolecularCache::new(cfg)
}

/// Warms a handful of hot lines for `asid` until the memo would replay
/// them, returning the memoized line addresses.
fn warm_memo(c: &mut MolecularCache, asid: u16) -> Vec<LineAddr> {
    let line_size = c.config().line_size();
    let addrs: Vec<u64> = (0..4).map(|i| i * 64).collect();
    for _ in 0..8 {
        for &a in &addrs {
            c.access(Request {
                asid: Asid::new(asid),
                addr: Address::new(a),
                kind: AccessKind::Read,
            });
        }
    }
    let lines: Vec<LineAddr> = addrs
        .iter()
        .map(|&a| Address::new(a).line(line_size))
        .collect();
    assert!(
        lines.iter().any(|&l| c.memo_would_hit(Asid::new(asid), l)),
        "warm-up failed to memoize any hot line"
    );
    lines
}

fn memoized(c: &MolecularCache, asid: u16, lines: &[LineAddr]) -> Vec<LineAddr> {
    lines
        .iter()
        .copied()
        .filter(|&l| c.memo_would_hit(Asid::new(asid), l))
        .collect()
}

#[test]
fn admit_of_another_tenant_drops_memoized_hits() {
    let mut c = cache();
    let lines = warm_memo(&mut c, 1);
    assert!(!memoized(&c, 1, &lines).is_empty());
    // Admitting a new tenant grants molecules -> structural change.
    assert!(c.admit_app(Asid::new(2)));
    assert!(
        memoized(&c, 1, &lines).is_empty(),
        "memo entries survived another tenant's admission grant"
    );
}

#[test]
fn lifecycle_resize_drops_memoized_hits_both_directions() {
    let mut c = cache();
    let lines = warm_memo(&mut c, 1);
    let size = c.region_size(Asid::new(1)).unwrap();

    c.set_region_size(Asid::new(1), size + 2).unwrap();
    assert!(
        memoized(&c, 1, &lines).is_empty(),
        "memo entries survived a lifecycle grow"
    );

    let lines = warm_memo(&mut c, 1);
    c.set_region_size(Asid::new(1), size).unwrap();
    assert!(
        memoized(&c, 1, &lines).is_empty(),
        "memo entries survived a lifecycle shrink"
    );
}

#[test]
fn flush_region_drops_memoized_hits() {
    let mut c = cache();
    let lines = warm_memo(&mut c, 1);
    c.flush_region(Asid::new(1)).unwrap();
    assert!(
        memoized(&c, 1, &lines).is_empty(),
        "memo entries survived an in-place evict (flush_region)"
    );
    // And the contents really are gone, not just the memo entries.
    assert!(
        !c.access(Request {
            asid: Asid::new(1),
            addr: Address::new(0),
            kind: AccessKind::Read,
        })
        .hit
    );
}

#[test]
fn revoke_and_readmit_cannot_replay_stale_hits() {
    let mut c = cache();
    let lines = warm_memo(&mut c, 1);

    c.release_region(Asid::new(1)).unwrap();
    assert!(
        memoized(&c, 1, &lines).is_empty(),
        "memo entries survived a revoke (release_region)"
    );

    // Re-admission of the same ASID: the key space repeats, the region
    // is new and empty. The first access must be a genuine miss, never
    // a memo replay of the pre-revoke region.
    c.admit_app(Asid::new(1));
    assert!(
        memoized(&c, 1, &lines).is_empty(),
        "memo entries from before the revoke survived re-admission"
    );
    let out = c.access(Request {
        asid: Asid::new(1),
        addr: Address::new(0),
        kind: AccessKind::Read,
    });
    assert!(!out.hit, "stale hit served across a revoke + re-admit");
}

#[test]
fn every_lifecycle_op_bumps_the_generation() {
    let mut c = cache();
    warm_memo(&mut c, 1);
    let mut generation = c.memo_stats().expect("memo-front on").generation;
    let mut expect_bump = |c: &MolecularCache, what: &str| {
        let now = c.memo_stats().expect("memo-front on").generation;
        assert!(now > generation, "{what} did not bump the memo generation");
        generation = now;
    };

    c.admit_app(Asid::new(2));
    expect_bump(&c, "admit_app");
    c.set_region_size(Asid::new(1), 5).unwrap();
    expect_bump(&c, "set_region_size (grow)");
    c.set_region_size(Asid::new(1), 2).unwrap();
    expect_bump(&c, "set_region_size (shrink)");
    c.flush_region(Asid::new(1)).unwrap();
    expect_bump(&c, "flush_region");
    c.release_region(Asid::new(1)).unwrap();
    expect_bump(&c, "release_region");
}
