//! Prints the power model's predictions next to the paper's Table 4
//! anchors — useful when inspecting or re-calibrating the model.
//!
//! Run with `cargo run -p molcache-power --example model_report`.

use molcache_power::cacti::analyze;
use molcache_power::calibrate::{
    model_table4, molecular_worst_power_w, paper_table4, table3_traditional,
};
use molcache_power::tech::TechNode;
use molcache_sim::CacheConfig;

fn main() {
    let node = TechNode::nm70();
    println!("== Table 4 anchors (paper vs model) ==");
    println!(
        "{:<10} {:>9} {:>9}   {:>9} {:>9}   {:>10} {:>10}",
        "cache", "paperMHz", "modelMHz", "paperW", "modelW", "molW(pap)", "molW(mod)"
    );
    for row in model_table4(&node) {
        println!(
            "{:<10} {:>9.0} {:>9.0}   {:>9.2} {:>9.2}   {:>10.2} {:>10.2}",
            row.anchor.name,
            row.anchor.freq_mhz,
            row.model_freq_mhz,
            row.anchor.power_w,
            row.model_power_w,
            row.anchor.mol_worst_w,
            row.model_mol_worst_w,
        );
    }

    println!("\n== component breakdown, 8MB 4-way (4 ports) ==");
    let r = analyze(&table3_traditional(4), &node);
    println!("org {} mode {:?}", r.organization, r.mode);
    println!("energy breakdown (pJ): {:#?}", r.energy);
    println!("cycle {:.2} ns  E {:.2} nJ", r.cycle_time_ns, r.energy_nj());

    println!("\n== molecule (8KB DM, 1 port) ==");
    let m = analyze(&CacheConfig::new(8 << 10, 1, 64).unwrap(), &node);
    println!("org {} mode {:?}", m.organization, m.mode);
    println!("energy breakdown (pJ): {:#?}", m.energy);
    println!("cycle {:.3} ns  E {:.4} nJ", m.cycle_time_ns, m.energy_nj());
    println!("tile (64 molecules) E {:.2} nJ", 64.0 * m.energy_nj());

    let f4 = analyze(&table3_traditional(4), &node).frequency_mhz();
    let p4 = analyze(&table3_traditional(4), &node).power_at_mhz(f4);
    let pm = molecular_worst_power_w(8 << 10, 512 << 10, &node, f4);
    println!(
        "\nadvantage vs 8MB 4way: 1 - {:.2}/{:.2} = {:.1}% (paper: 29%)",
        pm,
        p4,
        (1.0 - pm / p4) * 100.0
    );
    let _ = paper_table4();
}
