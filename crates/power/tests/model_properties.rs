//! Property-based tests of the power model: the analytical relationships
//! that must hold for *any* valid geometry, not just the Table 4 anchors.

use molcache_power::cacti::{analyze, analyze_with_mode};
use molcache_power::energy::AccessMode;
use molcache_power::leakage::leakage_w;
use molcache_power::tech::TechNode;
use molcache_sim::CacheConfig;
use proptest::prelude::*;

fn arbitrary_geometry() -> impl Strategy<Value = (u64, u32, u32)> {
    // size 16KB..16MB (powers of two), assoc in {1,2,4,8}, ports 1..4.
    (4u32..=14, 0u32..=3, 1u32..=4).prop_map(|(size_exp, assoc_exp, ports)| {
        ((1u64 << 10) << size_exp, 1u32 << assoc_exp, ports)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every valid geometry analyzes to finite, positive energy and time.
    #[test]
    fn analysis_is_finite_and_positive((size, assoc, ports) in arbitrary_geometry()) {
        let node = TechNode::nm70();
        let cfg = CacheConfig::new(size, assoc, 64).unwrap().with_ports(ports);
        let r = analyze(&cfg, &node);
        prop_assert!(r.energy_nj().is_finite() && r.energy_nj() > 0.0);
        prop_assert!(r.cycle_time_ns.is_finite() && r.cycle_time_ns > 0.0);
        prop_assert!(r.frequency_mhz() > 1.0);
    }

    /// At fixed associativity and ports, energy grows with capacity.
    #[test]
    fn energy_monotone_in_size(assoc_exp in 0u32..=3, ports in 1u32..=4) {
        let node = TechNode::nm70();
        let assoc = 1u32 << assoc_exp;
        let mut prev = 0.0;
        for size_exp in [16u32, 18, 20, 22, 23] {
            let cfg = CacheConfig::new(1u64 << size_exp, assoc, 64)
                .unwrap()
                .with_ports(ports);
            let e = analyze(&cfg, &node).energy_nj();
            prop_assert!(
                e > prev,
                "energy must grow with size: {e} after {prev} at 2^{size_exp}"
            );
            prev = e;
        }
    }

    /// Sequential access mode never costs more energy than parallel (it
    /// reads a subset of the data ways) and never runs faster.
    #[test]
    fn sequential_trades_time_for_energy((size, assoc, ports) in arbitrary_geometry()) {
        prop_assume!(assoc >= 2);
        let node = TechNode::nm70();
        let cfg = CacheConfig::new(size, assoc, 64).unwrap().with_ports(ports);
        let par = analyze_with_mode(&cfg, &node, AccessMode::Parallel);
        let seq = analyze_with_mode(&cfg, &node, AccessMode::Sequential);
        prop_assert!(seq.energy_nj() <= par.energy_nj() * 1.001);
        prop_assert!(seq.cycle_time_ns >= par.cycle_time_ns * 0.999);
    }

    /// More ports never makes an array cheaper or faster.
    #[test]
    fn ports_cost_energy_and_time((size, assoc, _p) in arbitrary_geometry()) {
        let node = TechNode::nm70();
        let one = analyze(&CacheConfig::new(size, assoc, 64).unwrap(), &node);
        let four = analyze(
            &CacheConfig::new(size, assoc, 64).unwrap().with_ports(4),
            &node,
        );
        prop_assert!(four.energy_nj() > one.energy_nj());
        prop_assert!(four.cycle_time_ns > one.cycle_time_ns);
    }

    /// Leakage is exactly linear in capacity at any node.
    #[test]
    fn leakage_linear(size_exp in 14u32..=24) {
        for node in [TechNode::nm70(), TechNode::nm100(), TechNode::nm130()] {
            let one = leakage_w(1u64 << size_exp, &node);
            let double = leakage_w(1u64 << (size_exp + 1), &node);
            prop_assert!((double / one - 2.0).abs() < 1e-9);
        }
    }
}
