//! Technology-node constants.
//!
//! Constants are expressed per primitive event (per bitline bit-row unit,
//! per column, per decoded bit, …) at the 70 nm node the paper uses, and
//! scaled analytically to neighbouring nodes: dynamic energy scales
//! roughly with `CV²` (≈ feature^1.7 across this era's nodes) and delay
//! roughly linearly with feature size.

/// A CMOS technology node with the fitted model constants.
///
/// All energies are in picojoules per event; all delays in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    /// Human-readable name, e.g. `"70nm"`.
    pub name: &'static str,
    /// Feature size in nanometres.
    pub feature_nm: f64,

    // --- energy constants (pJ) ---
    /// Bitline energy per (row × column) unit discharged.
    pub e_bitline: f64,
    /// Wordline + sense-amp energy per activated column.
    pub e_column: f64,
    /// Decoder energy per decoded address bit per activated subarray.
    pub e_decode: f64,
    /// Tag comparator energy per tag bit per way.
    pub e_compare: f64,
    /// Output-driver energy per data bit driven to the bus.
    pub e_output: f64,
    /// H-tree routing energy per bit moved per sqrt(total bits) of array
    /// span.
    pub e_route: f64,
    /// ASID comparator energy per comparison (molecular cache, §3.1).
    pub e_asid_compare: f64,

    // --- timing constants (ns) ---
    /// Decoder delay per decoded address bit.
    pub t_decode: f64,
    /// Wordline delay per activated column.
    pub t_wordline: f64,
    /// Bitline + sense delay per subarray row.
    pub t_bitline: f64,
    /// Fixed sense-amp resolution time.
    pub t_sense: f64,
    /// Comparator delay per log2(tag bits).
    pub t_compare: f64,
    /// Routing delay per sqrt(total bits).
    pub t_route: f64,

    // --- structural factors ---
    /// Energy multiplier per additional read/write port.
    pub port_energy_factor: f64,
    /// Delay multiplier per additional read/write port.
    pub port_delay_factor: f64,
}

impl TechNode {
    /// The paper's node: 0.07 µm, the constants fitted in
    /// [`crate::calibrate`].
    pub fn nm70() -> Self {
        TechNode {
            name: "70nm",
            feature_nm: 70.0,
            // Fitted against Table 4 anchors (see calibrate.rs).
            e_bitline: 2.72e-3,
            e_column: 0.35,
            e_decode: 0.05,
            e_compare: 0.30,
            e_output: 0.002,
            e_route: 1.42e-4,
            e_asid_compare: 0.05,
            t_decode: 0.050,
            t_wordline: 0.0011,
            t_bitline: 0.0004,
            t_sense: 0.25,
            t_compare: 0.10,
            t_route: 2.69e-4,
            port_energy_factor: 0.60,
            port_delay_factor: 0.12,
        }
    }

    /// Scales the 70 nm constants to another feature size.
    ///
    /// # Panics
    ///
    /// Panics if `feature_nm` is not positive.
    pub fn scaled_to(feature_nm: f64, name: &'static str) -> Self {
        assert!(feature_nm > 0.0, "feature size must be positive");
        let base = TechNode::nm70();
        let s = feature_nm / base.feature_nm;
        let es = s.powf(1.7);
        let ts = s;
        TechNode {
            name,
            feature_nm,
            e_bitline: base.e_bitline * es,
            e_column: base.e_column * es,
            e_decode: base.e_decode * es,
            e_compare: base.e_compare * es,
            e_output: base.e_output * es,
            e_route: base.e_route * es,
            e_asid_compare: base.e_asid_compare * es,
            t_decode: base.t_decode * ts,
            t_wordline: base.t_wordline * ts,
            t_bitline: base.t_bitline * ts,
            t_sense: base.t_sense * ts,
            t_compare: base.t_compare * ts,
            t_route: base.t_route * ts,
            port_energy_factor: base.port_energy_factor,
            port_delay_factor: base.port_delay_factor,
        }
    }

    /// The 100 nm node.
    pub fn nm100() -> Self {
        TechNode::scaled_to(100.0, "100nm")
    }

    /// The 130 nm node.
    pub fn nm130() -> Self {
        TechNode::scaled_to(130.0, "130nm")
    }

    /// Total energy multiplier for `ports` read/write ports.
    pub fn port_energy(&self, ports: u32) -> f64 {
        1.0 + self.port_energy_factor * (ports.max(1) - 1) as f64
    }

    /// Total delay multiplier for `ports` read/write ports.
    pub fn port_delay(&self, ports: u32) -> f64 {
        1.0 + self.port_delay_factor * (ports.max(1) - 1) as f64
    }
}

impl Default for TechNode {
    fn default() -> Self {
        TechNode::nm70()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_70nm() {
        assert_eq!(TechNode::default().name, "70nm");
        assert_eq!(TechNode::default().feature_nm, 70.0);
    }

    #[test]
    fn scaling_monotone() {
        let n70 = TechNode::nm70();
        let n100 = TechNode::nm100();
        let n130 = TechNode::nm130();
        assert!(n100.e_bitline > n70.e_bitline);
        assert!(n130.e_bitline > n100.e_bitline);
        assert!(n100.t_sense > n70.t_sense);
    }

    #[test]
    fn port_factors() {
        let n = TechNode::nm70();
        assert_eq!(n.port_energy(1), 1.0);
        assert!(n.port_energy(4) > n.port_energy(2));
        assert!(n.port_delay(4) > 1.0);
        // ports = 0 treated as 1
        assert_eq!(n.port_energy(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_feature_panics() {
        TechNode::scaled_to(0.0, "bad");
    }
}
