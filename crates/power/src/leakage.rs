//! Static (leakage) power.
//!
//! The paper's §4 notes: "The leakage power consumption remains unaffected
//! in molecular cache" — selective enablement gates *dynamic* energy only;
//! every molecule's SRAM cells keep leaking whether its ASID matches or
//! not. This module makes that statement checkable: leakage depends only
//! on total capacity (and node), so an 8 MB molecular cache and an 8 MB
//! traditional cache report identical static power.
//!
//! The model is the standard first-order one: leakage scales linearly
//! with bit count, with a per-node coefficient that *grows* as feature
//! size shrinks (sub-threshold leakage worsens with scaling — the reverse
//! of dynamic energy).

use crate::tech::TechNode;

/// Leakage power per megabit at 70 nm, in milliwatts. Chosen so an 8 MB
/// array leaks ~1.9 W — the right order for large sub-100 nm SRAM of the
/// paper's era (leakage approaching half the total power budget).
pub const MW_PER_MBIT_70NM: f64 = 30.0;

/// Exponent of the inverse feature-size scaling of leakage.
const LEAKAGE_SCALING_EXP: f64 = 1.5;

/// Static power of `size_bytes` of SRAM at `node`, in watts.
///
/// ```
/// use molcache_power::{leakage::leakage_w, tech::TechNode};
/// let node = TechNode::nm70();
/// let w8mb = leakage_w(8 << 20, &node);
/// let w1mb = leakage_w(1 << 20, &node);
/// assert!((w8mb / w1mb - 8.0).abs() < 1e-9); // linear in capacity
/// ```
pub fn leakage_w(size_bytes: u64, node: &TechNode) -> f64 {
    let mbits = (size_bytes * 8) as f64 / 1.0e6;
    let scale = (70.0 / node.feature_nm).powf(LEAKAGE_SCALING_EXP);
    mbits * MW_PER_MBIT_70NM * scale / 1000.0
}

/// Leakage of a molecular cache: the sum over all molecules, which is by
/// construction identical to a monolithic array of the same capacity —
/// the paper's "unaffected" claim.
pub fn molecular_leakage_w(molecule_size: u64, total_molecules: usize, node: &TechNode) -> f64 {
    leakage_w(molecule_size * total_molecules as u64, node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_capacity() {
        let node = TechNode::nm70();
        let a = leakage_w(1 << 20, &node);
        let b = leakage_w(4 << 20, &node);
        assert!((b / a - 4.0).abs() < 1e-12);
    }

    #[test]
    fn molecular_equals_monolithic() {
        // The paper's claim: selective enablement does not change leakage.
        let node = TechNode::nm70();
        let molecular = molecular_leakage_w(8 << 10, 1024, &node); // 8 MB
        let monolithic = leakage_w(8 << 20, &node);
        assert!((molecular - monolithic).abs() < 1e-12);
    }

    #[test]
    fn leakage_worsens_at_smaller_nodes() {
        let n70 = TechNode::nm70();
        let n100 = TechNode::nm100();
        assert!(
            leakage_w(1 << 20, &n70) > leakage_w(1 << 20, &n100),
            "sub-threshold leakage grows as features shrink"
        );
    }

    #[test]
    fn eight_mb_order_of_magnitude() {
        let node = TechNode::nm70();
        let w = leakage_w(8 << 20, &node);
        assert!((1.0..4.0).contains(&w), "8MB leakage {w:.2} W");
    }
}
