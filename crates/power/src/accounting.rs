//! Converting simulator activity into energy and power.

use crate::cacti::ArrayReport;
use crate::tech::TechNode;
use molcache_sim::{Activity, Stage};

/// Per-event energies used to price a simulator's [`Activity`].
///
/// Two constructors cover the two cache families:
///
/// * [`EnergyMeter::for_traditional`] — every access probes all ways, so
///   the per-probe energy is the array's access energy divided by its
///   associativity.
/// * [`EnergyMeter::for_molecular`] — every probe is one molecule access;
///   ASID comparisons and Ulmo searches are priced separately.
///
/// ```
/// use molcache_power::{accounting::EnergyMeter, cacti::analyze, tech::TechNode};
/// use molcache_sim::{Activity, CacheConfig};
///
/// let node = TechNode::nm70();
/// let report = analyze(&CacheConfig::new(1 << 20, 4, 64)?, &node);
/// let meter = EnergyMeter::for_traditional(&report);
/// let activity = Activity { accesses: 1_000, ways_probed: 4_000, ..Activity::default() };
/// assert!(meter.power_at_mhz(&activity, 200.0) > 0.0);
/// # Ok::<(), molcache_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyMeter {
    /// Energy per way/molecule probe (nJ).
    pub probe_nj: f64,
    /// Energy per line fill (nJ).
    pub fill_nj: f64,
    /// Energy per writeback (nJ).
    pub writeback_nj: f64,
    /// Energy per ASID comparison (nJ).
    pub asid_compare_nj: f64,
    /// Energy per Ulmo remote-tile search launch (nJ).
    pub ulmo_search_nj: f64,
}

impl EnergyMeter {
    /// Prices activity of a traditional set-associative cache.
    pub fn for_traditional(report: &ArrayReport) -> Self {
        let access_nj = report.energy_nj();
        let assoc = report.config.assoc().max(1) as f64;
        EnergyMeter {
            probe_nj: access_nj / assoc,
            fill_nj: access_nj,
            writeback_nj: access_nj,
            asid_compare_nj: 0.0,
            ulmo_search_nj: 0.0,
        }
    }

    /// Prices activity of a molecular cache whose molecules have the
    /// geometry analyzed in `molecule_report`.
    pub fn for_molecular(molecule_report: &ArrayReport, node: &TechNode) -> Self {
        let molecule_nj = molecule_report.energy_nj();
        EnergyMeter {
            probe_nj: molecule_nj,
            fill_nj: molecule_nj,
            writeback_nj: molecule_nj,
            asid_compare_nj: node.e_asid_compare / 1000.0,
            // An Ulmo search decodes the region map and forwards the
            // request over the intra-cluster interconnect; priced as a
            // handful of molecule accesses worth of wires.
            ulmo_search_nj: molecule_nj * 0.5,
        }
    }

    /// Total dynamic energy of an activity record, in joules.
    pub fn energy_j(&self, activity: &Activity) -> f64 {
        let nj = activity.ways_probed as f64 * self.probe_nj
            + activity.line_fills as f64 * self.fill_nj
            + activity.writebacks as f64 * self.writeback_nj
            + activity.asid_compares as f64 * self.asid_compare_nj
            + activity.ulmo_searches as f64 * self.ulmo_search_nj;
        nj * 1e-9
    }

    /// Average dynamic energy per serviced access, in nanojoules.
    pub fn energy_per_access_nj(&self, activity: &Activity) -> f64 {
        if activity.accesses == 0 {
            0.0
        } else {
            self.energy_j(activity) * 1e9 / activity.accesses as f64
        }
    }

    /// Dynamic power in watts when the cache services one access per
    /// cycle at `freq_mhz` with this activity profile — the paper's power
    /// metric.
    pub fn power_at_mhz(&self, activity: &Activity, freq_mhz: f64) -> f64 {
        self.energy_per_access_nj(activity) * freq_mhz / 1000.0
    }

    /// Dynamic energy attributed to each pipeline stage, in nanojoules,
    /// from the activity's per-stage event counts.
    ///
    /// Attribution follows where the events physically happen: ASID
    /// comparisons are priced in the stage that performed them (gate or
    /// Ulmo), tag probes likewise (home lookup or Ulmo), Ulmo's launch
    /// cost in the Ulmo stage, and fills in the fill stage. Writebacks
    /// are priced entirely into the fill stage — including the
    /// non-pipeline writebacks from region shrink and teardown flushes,
    /// which are memory-traffic of the same array port. Victim selection
    /// is control logic and carries no array energy. For a staged cache
    /// (whose stage counters tile the aggregates) the stage energies sum
    /// exactly to [`energy_j`](Self::energy_j).
    pub fn stage_energy_nj(&self, activity: &Activity) -> StageEnergyNj {
        let s = &activity.stages;
        let ulmo = s.ulmo_search.tag_probes as f64 * self.probe_nj
            + s.ulmo_search.asid_compares as f64 * self.asid_compare_nj
            + activity.ulmo_searches as f64 * self.ulmo_search_nj;
        StageEnergyNj {
            asid_gate_nj: s.asid_gate.asid_compares as f64 * self.asid_compare_nj,
            home_lookup_nj: s.home_lookup.tag_probes as f64 * self.probe_nj,
            ulmo_search_nj: ulmo,
            victim_nj: 0.0,
            fill_nj: s.fill.frames_touched as f64 * self.fill_nj
                + activity.writebacks as f64 * self.writeback_nj,
        }
    }
}

/// Dynamic energy of one activity record broken down by pipeline stage
/// (nanojoules) — the power-model view of the staged access pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageEnergyNj {
    /// §3.1 ASID gate at the home tile.
    pub asid_gate_nj: f64,
    /// Home-tile tag probes.
    pub home_lookup_nj: f64,
    /// Ulmo cross-tile search (remote compares + probes + launch cost).
    pub ulmo_search_nj: f64,
    /// Victim selection (control logic: no array energy).
    pub victim_nj: f64,
    /// Block fills plus all writeback traffic.
    pub fill_nj: f64,
}

impl StageEnergyNj {
    /// The energy of one stage.
    pub fn stage(&self, stage: Stage) -> f64 {
        match stage {
            Stage::AsidGate => self.asid_gate_nj,
            Stage::HomeLookup => self.home_lookup_nj,
            Stage::UlmoSearch => self.ulmo_search_nj,
            Stage::Victim => self.victim_nj,
            Stage::Fill => self.fill_nj,
        }
    }

    /// Sum over all stages.
    pub fn total_nj(&self) -> f64 {
        Stage::ALL.iter().map(|&s| self.stage(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cacti::analyze;
    use molcache_sim::CacheConfig;

    fn traditional_meter() -> EnergyMeter {
        let cfg = CacheConfig::new(1 << 20, 4, 64).unwrap();
        EnergyMeter::for_traditional(&analyze(&cfg, &TechNode::nm70()))
    }

    #[test]
    fn traditional_probe_sums_to_access_energy() {
        let cfg = CacheConfig::new(1 << 20, 4, 64).unwrap();
        let report = analyze(&cfg, &TechNode::nm70());
        let meter = EnergyMeter::for_traditional(&report);
        // One access probing all 4 ways costs exactly one access energy.
        let act = Activity {
            accesses: 1,
            ways_probed: 4,
            ..Activity::default()
        };
        let per_access = meter.energy_per_access_nj(&act);
        assert!((per_access - report.energy_nj()).abs() / report.energy_nj() < 1e-9);
    }

    #[test]
    fn fills_and_writebacks_add_energy() {
        let meter = traditional_meter();
        let base = Activity {
            accesses: 100,
            ways_probed: 400,
            ..Activity::default()
        };
        let with_fills = Activity {
            line_fills: 50,
            writebacks: 10,
            ..base
        };
        assert!(meter.energy_j(&with_fills) > meter.energy_j(&base));
    }

    #[test]
    fn molecular_meter_prices_asid_and_ulmo() {
        let node = TechNode::nm70();
        let mol = CacheConfig::new(8 << 10, 1, 64).unwrap();
        let meter = EnergyMeter::for_molecular(&analyze(&mol, &node), &node);
        assert!(meter.asid_compare_nj > 0.0);
        assert!(meter.ulmo_search_nj > 0.0);
        let act = Activity {
            accesses: 10,
            ways_probed: 30,
            asid_compares: 640,
            ulmo_searches: 2,
            ..Activity::default()
        };
        assert!(meter.energy_j(&act) > 0.0);
    }

    #[test]
    fn empty_activity_is_zero_power() {
        let meter = traditional_meter();
        let act = Activity::default();
        assert_eq!(meter.energy_per_access_nj(&act), 0.0);
        assert_eq!(meter.power_at_mhz(&act, 200.0), 0.0);
    }

    #[test]
    fn stage_energy_sums_to_total_for_staged_activity() {
        let node = TechNode::nm70();
        let mol = CacheConfig::new(8 << 10, 1, 64).unwrap();
        let meter = EnergyMeter::for_molecular(&analyze(&mol, &node), &node);
        // A consistent staged record: stage counters tile the aggregates.
        let mut act = Activity {
            accesses: 10,
            ways_probed: 30,
            line_fills: 8,
            writebacks: 3,
            asid_compares: 640,
            ulmo_searches: 2,
            ..Activity::default()
        };
        act.stages.asid_gate.asid_compares = 600;
        act.stages.ulmo_search.asid_compares = 40;
        act.stages.home_lookup.tag_probes = 25;
        act.stages.ulmo_search.tag_probes = 5;
        act.stages.fill.frames_touched = 8;
        let by_stage = meter.stage_energy_nj(&act);
        let total = meter.energy_j(&act) * 1e9;
        assert!((by_stage.total_nj() - total).abs() < 1e-9);
        assert_eq!(by_stage.victim_nj, 0.0);
        assert_eq!(by_stage.stage(Stage::Fill), by_stage.fill_nj);
        assert!(by_stage.asid_gate_nj > 0.0);
        assert!(by_stage.ulmo_search_nj > 0.0);
    }

    #[test]
    fn unstaged_activity_prices_writebacks_and_ulmo_only() {
        // A traditional cache has no stage counters: only the fill-stage
        // writeback term and aggregate Ulmo launches survive.
        let meter = traditional_meter();
        let act = Activity {
            accesses: 100,
            ways_probed: 400,
            writebacks: 10,
            ..Activity::default()
        };
        let by_stage = meter.stage_energy_nj(&act);
        assert_eq!(by_stage.asid_gate_nj, 0.0);
        assert_eq!(by_stage.home_lookup_nj, 0.0);
        assert!((by_stage.fill_nj - 10.0 * meter.writeback_nj).abs() < 1e-12);
    }

    #[test]
    fn power_linear_in_frequency() {
        let meter = traditional_meter();
        let act = Activity {
            accesses: 10,
            ways_probed: 40,
            ..Activity::default()
        };
        let p100 = meter.power_at_mhz(&act, 100.0);
        let p300 = meter.power_at_mhz(&act, 300.0);
        assert!((p300 / p100 - 3.0).abs() < 1e-9);
    }
}
