//! Calibration against the paper's Table 4 and molecular-power helpers.
//!
//! Table 4 of the paper (CACTI at 0.07 µm, 8 MB caches with four ports):
//!
//! | Cache     | Freq (MHz) | Power (W) |
//! |-----------|-----------:|----------:|
//! | 8MB DM    | 199        | 4.93      |
//! | 8MB 2-way | 205        | 5.95      |
//! | 8MB 4-way | 206        | 7.66      |
//! | 8MB 8-way |  96        | 3.58      |
//!
//! and the 8 MB molecular cache (8 KB molecules, 512 KB tiles, 1 port per
//! tile cluster): worst-case power 5.29–5.46 W at those frequencies,
//! mixed-workload average 4.85–5.0 W. The headline: the molecular cache
//! matches/beats the 8 MB 4-way's performance while drawing ~29 % less
//! power (5.46 W vs 7.66 W).
//!
//! The [`TechNode::nm70`](crate::tech::TechNode::nm70) constants were
//! fitted so the model lands near these anchors; tests in this module
//! pin the *shape* (orderings, the 8-way frequency cliff, the ~29 % gap)
//! with generous tolerances, and `EXPERIMENTS.md` records the exact
//! model-vs-paper numbers.

use crate::cacti::{analyze, ArrayReport};
use crate::tech::TechNode;
use molcache_sim::CacheConfig;

/// One row of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Anchor {
    /// Configuration label as printed in the paper.
    pub name: &'static str,
    /// Associativity of the traditional cache.
    pub assoc: u32,
    /// Reported frequency in MHz.
    pub freq_mhz: f64,
    /// Reported power in watts.
    pub power_w: f64,
    /// Reported molecular worst-case power at this frequency (W).
    pub mol_worst_w: f64,
    /// Reported molecular average power for the mixed workload (W).
    pub mol_avg_w: f64,
}

/// The paper's Table 4 values.
pub fn paper_table4() -> [Table4Anchor; 4] {
    [
        Table4Anchor {
            name: "8MB DM",
            assoc: 1,
            freq_mhz: 199.0,
            power_w: 4.93,
            mol_worst_w: 5.29,
            mol_avg_w: 4.85,
        },
        Table4Anchor {
            name: "8MB 2way",
            assoc: 2,
            freq_mhz: 205.0,
            power_w: 5.95,
            mol_worst_w: 5.45,
            mol_avg_w: 4.99,
        },
        Table4Anchor {
            name: "8MB 4way",
            assoc: 4,
            freq_mhz: 206.0,
            power_w: 7.66,
            mol_worst_w: 5.46,
            mol_avg_w: 5.0,
        },
        Table4Anchor {
            name: "8MB 8way",
            assoc: 8,
            freq_mhz: 96.0,
            power_w: 3.58,
            mol_worst_w: 2.55,
            mol_avg_w: 2.34,
        },
    ]
}

/// The traditional-cache configuration of Table 3 (8 MB, four ports).
pub fn table3_traditional(assoc: u32) -> CacheConfig {
    CacheConfig::new(8 << 20, assoc, 64)
        .expect("table 3 geometry is valid")
        .with_ports(4)
}

/// The molecule geometry of Table 3 (8 KB direct mapped, 64 B lines).
pub fn table3_molecule() -> CacheConfig {
    CacheConfig::new(8 << 10, 1, 64).expect("molecule geometry is valid")
}

/// Analyzes the Table 3 molecule at a node.
pub fn molecule_report(node: &TechNode) -> ArrayReport {
    analyze(&table3_molecule(), node)
}

/// Worst-case molecular energy per access (nJ): all molecules of one tile
/// enabled — the paper's §4 approximation.
pub fn molecular_tile_energy_nj(molecule_size: u64, tile_size: u64, node: &TechNode) -> f64 {
    assert!(
        tile_size >= molecule_size && tile_size.is_multiple_of(molecule_size),
        "tile must hold a whole number of molecules"
    );
    let molecules_per_tile = (tile_size / molecule_size) as f64;
    let mol = analyze(
        &CacheConfig::new(molecule_size, 1, 64).expect("molecule geometry"),
        node,
    );
    // Every molecule in the tile performs the ASID compare; matching
    // molecules (worst case: all of them) perform the full probe. The
    // selected line is then routed across the tile's span to its port.
    let tile_bits = (tile_size * 8) as f64;
    let line_bits = 64.0 * 8.0;
    let tile_route_pj = node.e_route
        * tile_bits.powf(crate::energy::ROUTE_SPAN_EXP)
        * (crate::energy::ROUTE_CTRL_BITS + line_bits);
    molecules_per_tile * (mol.energy_nj() + node.e_asid_compare / 1000.0) + tile_route_pj / 1000.0
}

/// Worst-case molecular power (W) at a comparison frequency — the number
/// the paper reports in Table 4's "mol. power worst case" column.
pub fn molecular_worst_power_w(
    molecule_size: u64,
    tile_size: u64,
    node: &TechNode,
    freq_mhz: f64,
) -> f64 {
    molecular_tile_energy_nj(molecule_size, tile_size, node) * freq_mhz / 1000.0
}

/// A modeled Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeledRow {
    /// Anchor this row corresponds to.
    pub anchor: Table4Anchor,
    /// Model frequency (MHz).
    pub model_freq_mhz: f64,
    /// Model power (W) at the model frequency.
    pub model_power_w: f64,
    /// Model molecular worst-case power (W) at the model frequency.
    pub model_mol_worst_w: f64,
}

/// Computes the model's version of Table 4 (traditional columns and the
/// molecular worst case; the molecular *average* column needs measured
/// activity and lives in the benchmark harness).
pub fn model_table4(node: &TechNode) -> Vec<ModeledRow> {
    paper_table4()
        .into_iter()
        .map(|anchor| {
            let report = analyze(&table3_traditional(anchor.assoc), node);
            let f = report.frequency_mhz();
            ModeledRow {
                anchor,
                model_freq_mhz: f,
                model_power_w: report.power_at_mhz(f),
                model_mol_worst_w: molecular_worst_power_w(8 << 10, 512 << 10, node, f),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_ordering_matches_paper() {
        let node = TechNode::nm70();
        let e: Vec<f64> = [1u32, 2, 4]
            .iter()
            .map(|&a| analyze(&table3_traditional(a), &node).energy_nj())
            .collect();
        assert!(e[0] < e[1] && e[1] < e[2], "energy ordering {e:?}");
    }

    #[test]
    fn eight_way_frequency_cliff() {
        let node = TechNode::nm70();
        let f4 = analyze(&table3_traditional(4), &node).frequency_mhz();
        let f8 = analyze(&table3_traditional(8), &node).frequency_mhz();
        assert!(f8 < 0.65 * f4, "8-way must be far slower: {f8} vs {f4}");
    }

    #[test]
    fn parallel_frequencies_are_close() {
        let node = TechNode::nm70();
        let f: Vec<f64> = [1u32, 2, 4]
            .iter()
            .map(|&a| analyze(&table3_traditional(a), &node).frequency_mhz())
            .collect();
        let spread = (f.iter().cloned().fold(f64::MIN, f64::max)
            - f.iter().cloned().fold(f64::MAX, f64::min))
            / f[0];
        assert!(spread < 0.25, "DM/2w/4w frequencies should be close: {f:?}");
    }

    #[test]
    fn molecular_advantage_near_29_percent() {
        let node = TechNode::nm70();
        let four_way = analyze(&table3_traditional(4), &node);
        let f = four_way.frequency_mhz();
        let p_trad = four_way.power_at_mhz(f);
        let p_mol = molecular_worst_power_w(8 << 10, 512 << 10, &node, f);
        let advantage = 1.0 - p_mol / p_trad;
        assert!(
            (0.18..=0.42).contains(&advantage),
            "molecular advantage {advantage:.3} outside band (paper: 0.29); \
             p_mol={p_mol:.2}W p_trad={p_trad:.2}W"
        );
    }

    #[test]
    fn anchors_within_tolerance() {
        // Absolute calibration: model frequencies within 15% of the paper
        // and parallel-mode powers within 15%. The 8-way's absolute power
        // is known to come out low (our sequential mode prices exactly one
        // data way; CACTI's intermediate regime reads more) — its shape is
        // pinned instead: lowest power of the four, at ~half frequency.
        // EXPERIMENTS.md records the residuals.
        let node = TechNode::nm70();
        let rows = model_table4(&node);
        for row in &rows {
            let fe = (row.model_freq_mhz - row.anchor.freq_mhz).abs() / row.anchor.freq_mhz;
            assert!(
                fe < 0.15,
                "{}: model {:.0} MHz vs paper {:.0} MHz",
                row.anchor.name,
                row.model_freq_mhz,
                row.anchor.freq_mhz
            );
            if row.anchor.assoc < 8 {
                let pe = (row.model_power_w - row.anchor.power_w).abs() / row.anchor.power_w;
                assert!(
                    pe < 0.15,
                    "{}: model {:.2} W vs paper {:.2} W",
                    row.anchor.name,
                    row.model_power_w,
                    row.anchor.power_w
                );
            }
        }
        let p8 = rows.iter().find(|r| r.anchor.assoc == 8).unwrap();
        assert!(
            rows.iter()
                .all(|r| r.anchor.assoc == 8 || p8.model_power_w < r.model_power_w),
            "8-way must draw the least power (Table 4 shape)"
        );
    }

    #[test]
    fn molecular_worst_case_tracks_paper_column() {
        // Table 4's "mol. power worst case" column, at the model's own
        // comparison frequencies.
        let node = TechNode::nm70();
        for row in model_table4(&node) {
            let err =
                (row.model_mol_worst_w - row.anchor.mol_worst_w).abs() / row.anchor.mol_worst_w;
            assert!(
                err < 0.20,
                "{}: model mol worst {:.2} W vs paper {:.2} W",
                row.anchor.name,
                row.model_mol_worst_w,
                row.anchor.mol_worst_w
            );
        }
    }

    #[test]
    fn tile_energy_scales_with_molecule_count() {
        let node = TechNode::nm70();
        let half = molecular_tile_energy_nj(8 << 10, 256 << 10, &node);
        let full = molecular_tile_energy_nj(8 << 10, 512 << 10, &node);
        // Molecule probes double; the tile-span routing term grows
        // sublinearly, so the ratio sits just under 2.
        assert!(
            full > 1.8 * half && full < 2.0 * half,
            "half {half} full {full}"
        );
    }

    #[test]
    #[should_panic(expected = "whole number of molecules")]
    fn ragged_tile_panics() {
        molecular_tile_energy_nj(8 << 10, (512 << 10) + 1, &TechNode::nm70());
    }
}
