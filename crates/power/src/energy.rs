//! Per-access dynamic energy, by component.

use crate::geometry::{self, Organization, SubarrayDims};
use crate::tech::TechNode;
use molcache_sim::CacheConfig;

/// How tag and data arrays are sequenced on an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Tag and all data ways read in parallel; way select at the end.
    /// Fast, but pays data-array energy for every way.
    Parallel,
    /// Tag phase first, then only the matching data way is read.
    /// Roughly halves the data-array energy at high associativity but
    /// serializes the phases (CACTI selects this regime for 8-way arrays,
    /// which is why the paper's Table 4 shows the 8 MB 8-way at 96 MHz
    /// drawing *less* power than the 4-way).
    Sequential,
}

impl AccessMode {
    /// The mode CACTI-era tools use for the given associativity.
    pub fn for_assoc(assoc: u32) -> AccessMode {
        if assoc >= 8 {
            AccessMode::Sequential
        } else {
            AccessMode::Parallel
        }
    }
}

/// Energy per access, split by component, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Row decoders of activated subarrays.
    pub decode_pj: f64,
    /// Data bitline discharge + precharge.
    pub data_bitline_pj: f64,
    /// Data wordlines + sense amps.
    pub data_column_pj: f64,
    /// Tag bitlines, wordlines, sense amps.
    pub tag_array_pj: f64,
    /// Tag comparators.
    pub compare_pj: f64,
    /// Output drivers (the selected line to the bus).
    pub output_pj: f64,
    /// H-tree / inter-subarray routing.
    pub route_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy per access in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.decode_pj
            + self.data_bitline_pj
            + self.data_column_pj
            + self.tag_array_pj
            + self.compare_pj
            + self.output_pj
            + self.route_pj
    }

    /// Total energy per access in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.total_pj() / 1000.0
    }
}

/// Address/control distribution priced per routing trip (effective bits
/// of address, way-enable and timing signals broadcast across the array).
pub const ROUTE_CTRL_BITS: f64 = 700.0;

/// Exponent of the routing-span term. An H-tree's wire length grows with
/// the array's linear dimension; fitted at 0.6 of total bits (between the
/// pure-perimeter 0.5 and the repeater-heavy regimes CACTI reports for
/// multi-megabyte arrays).
pub const ROUTE_SPAN_EXP: f64 = 0.6;

/// Computes the per-access energy for a configuration under a chosen
/// organization, or `None` if the organization is infeasible.
pub fn access_energy(
    cfg: &CacheConfig,
    org: Organization,
    node: &TechNode,
    mode: AccessMode,
) -> Option<EnergyBreakdown> {
    let data = geometry::data_dims(cfg, org)?;
    let tagw = geometry::tag_width(cfg);
    let assoc = cfg.assoc() as f64;
    let pe = node.port_energy(cfg.ports());
    let line_bits = (cfg.line_size() * 8) as f64;
    let total_bits = (cfg.size_bytes() * 8) as f64;

    // Ways actually read from the data array: parallel reads all ways,
    // sequential reads only the tag-matched one. `phases` counts routing
    // round-trips (sequential pays the control distribution twice).
    let (data_ways_read, phases) = match mode {
        AccessMode::Parallel => (assoc, 1.0),
        AccessMode::Sequential => (1.0, 2.0),
    };
    let data_fraction = data_ways_read / assoc;

    let SubarrayDims {
        rows,
        cols,
        active_subarrays,
    } = data;

    let decode_pj = node.e_decode * (rows.max(2) as f64).log2() * active_subarrays as f64 * pe;
    // Bitline energy: the stripe's activated columns, each with bitline
    // capacitance proportional to the subarray row count. Sequential mode
    // only discharges the selected way's share.
    let data_bitline_pj =
        node.e_bitline * rows as f64 * cols as f64 * active_subarrays as f64 * data_fraction * pe;
    // Wordline + sense energy of the logical columns read out.
    let data_column_pj = node.e_column * line_bits * data_ways_read * pe;

    // Tag array: same row count; tag columns are tag_width * assoc * nspd.
    let tag_cols = (tagw * cfg.assoc() as u64 * org.nspd as u64) as f64;
    let tag_array_pj = (node.e_bitline * rows as f64 * tag_cols + node.e_column * tag_cols) * pe;
    let compare_pj = node.e_compare * tagw as f64 * assoc;

    let output_pj = node.e_output * line_bits;
    // Routing: distribute address/control across the array and move the
    // read ways' bits over an H-tree whose span grows with the array's
    // size. This is the term that makes a big monolithic cache pay
    // per-way energy that a small molecule does not.
    let route_pj = node.e_route
        * total_bits.powf(ROUTE_SPAN_EXP)
        * (ROUTE_CTRL_BITS * phases + line_bits * data_ways_read);

    Some(EnergyBreakdown {
        decode_pj,
        data_bitline_pj,
        data_column_pj,
        tag_array_pj,
        compare_pj,
        output_pj,
        route_pj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> TechNode {
        TechNode::nm70()
    }

    #[test]
    fn bigger_cache_costs_more() {
        let small = CacheConfig::new(8 << 10, 1, 64).unwrap();
        let big = CacheConfig::new(8 << 20, 1, 64).unwrap();
        let e_small = access_energy(
            &small,
            Organization::MONOLITHIC,
            &node(),
            AccessMode::Parallel,
        )
        .unwrap()
        .total_pj();
        // Pick the best (min-energy) feasible org for the big cache.
        let e_big = crate::geometry::search_space()
            .filter_map(|o| access_energy(&big, o, &node(), AccessMode::Parallel))
            .map(|e| e.total_pj())
            .fold(f64::INFINITY, f64::min);
        assert!(e_big > 10.0 * e_small, "big {e_big} vs small {e_small}");
    }

    #[test]
    fn associativity_costs_energy_in_parallel_mode() {
        let mk = |a| CacheConfig::new(8 << 20, a, 64).unwrap();
        let best = |cfg: &CacheConfig| {
            crate::geometry::search_space()
                .filter_map(|o| access_energy(cfg, o, &node(), AccessMode::Parallel))
                .map(|e| e.total_pj())
                .fold(f64::INFINITY, f64::min)
        };
        let e1 = best(&mk(1));
        let e2 = best(&mk(2));
        let e4 = best(&mk(4));
        assert!(e1 < e2 && e2 < e4, "{e1} {e2} {e4}");
    }

    #[test]
    fn sequential_mode_cheaper_at_high_assoc() {
        let cfg = CacheConfig::new(8 << 20, 8, 64).unwrap();
        let best = |mode| {
            crate::geometry::search_space()
                .filter_map(|o| access_energy(&cfg, o, &node(), mode))
                .map(|e: EnergyBreakdown| e.total_pj())
                .fold(f64::INFINITY, f64::min)
        };
        assert!(best(AccessMode::Sequential) < best(AccessMode::Parallel));
    }

    #[test]
    fn ports_scale_energy() {
        let cfg1 = CacheConfig::new(1 << 20, 4, 64).unwrap().with_ports(1);
        let cfg4 = CacheConfig::new(1 << 20, 4, 64).unwrap().with_ports(4);
        let e1 = access_energy(
            &cfg1,
            Organization::MONOLITHIC,
            &node(),
            AccessMode::Parallel,
        );
        let e4 = access_energy(
            &cfg4,
            Organization::MONOLITHIC,
            &node(),
            AccessMode::Parallel,
        );
        // Monolithic may be infeasible for 1MB (4096 rows ok, 2048 cols ok).
        let (e1, e4) = (e1.unwrap(), e4.unwrap());
        assert!(e4.data_bitline_pj > e1.data_bitline_pj * 2.0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let cfg = CacheConfig::new(64 << 10, 2, 64).unwrap();
        let e = access_energy(
            &cfg,
            Organization::MONOLITHIC,
            &node(),
            AccessMode::Parallel,
        )
        .unwrap();
        let sum = e.decode_pj
            + e.data_bitline_pj
            + e.data_column_pj
            + e.tag_array_pj
            + e.compare_pj
            + e.output_pj
            + e.route_pj;
        assert!((e.total_pj() - sum).abs() < 1e-9);
        assert!((e.total_nj() - sum / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn mode_selection_by_assoc() {
        assert_eq!(AccessMode::for_assoc(1), AccessMode::Parallel);
        assert_eq!(AccessMode::for_assoc(4), AccessMode::Parallel);
        assert_eq!(AccessMode::for_assoc(8), AccessMode::Sequential);
        assert_eq!(AccessMode::for_assoc(16), AccessMode::Sequential);
    }
}
