//! # molcache-power — CACTI-like cache energy and timing model
//!
//! The paper derives all power numbers from CACTI \[12\] at 0.07 µm. CACTI
//! is an *analytical* model: it partitions the cache into subarrays,
//! computes per-component energies/delays (decoder, wordline, bitline,
//! sense amps, tag path, comparators, output path, routing) over a search
//! of organizations, and reports the best. This crate implements the same
//! structure:
//!
//! * [`tech`] — technology-node constants (70 nm default, the paper's
//!   node), with scaling to neighbouring nodes.
//! * [`geometry`] — the subarray organization (`Ndwl`/`Ndbl`/`Nspd`) and
//!   its search space.
//! * [`energy`] / [`timing`] — per-component models.
//! * [`cacti`] — the top-level [`cacti::analyze`] entry point producing an
//!   [`cacti::ArrayReport`] (energy breakdown, access time, best
//!   organization) and power-at-frequency helpers.
//! * [`accounting`] — converts the simulators' activity event counts
//!   (`molcache_sim::Activity`) into joules and watts.
//! * [`calibrate`] — the constants-fit against the paper's Table 4
//!   anchors, plus the molecular-cache power helpers (worst case = all
//!   molecules of a tile enabled; average = measured molecule probes).
//!
//! The model is calibrated, not transistor-exact: tests pin the Table 4
//! *shape* (energy ordering DM < 2-way < 4-way, the 8-way frequency
//! cliff, and the ~29 % molecular power advantage) rather than absolute
//! watts. See `EXPERIMENTS.md` for paper-vs-model numbers.

pub mod accounting;
pub mod cacti;
pub mod calibrate;
pub mod energy;
pub mod geometry;
pub mod leakage;
pub mod tech;
pub mod timing;

pub use accounting::{EnergyMeter, StageEnergyNj};
pub use cacti::{analyze, ArrayReport};
pub use tech::TechNode;
