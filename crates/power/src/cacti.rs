//! The top-level analysis entry point (CACTI's role).

use crate::energy::{access_energy, AccessMode, EnergyBreakdown};
use crate::geometry::{search_space, Organization};
use crate::tech::TechNode;
use crate::timing::cycle_time_ns;
use molcache_sim::CacheConfig;

/// Result of analyzing one cache array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayReport {
    /// The configuration analyzed.
    pub config: CacheConfig,
    /// The winning organization.
    pub organization: Organization,
    /// The access mode the analysis selected.
    pub mode: AccessMode,
    /// Per-component energy of one access.
    pub energy: EnergyBreakdown,
    /// Cycle time in nanoseconds.
    pub cycle_time_ns: f64,
}

impl ArrayReport {
    /// Energy per access in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy.total_nj()
    }

    /// Maximum operating frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        1000.0 / self.cycle_time_ns
    }

    /// Dynamic power in watts when accessed every cycle at `freq_mhz`.
    ///
    /// This matches the paper's methodology: "the power consumed by a
    /// molecular cache is computed using the energy reported ... at the
    /// frequency of the traditional cache to which \[it\] is being
    /// compared".
    pub fn power_at_mhz(&self, freq_mhz: f64) -> f64 {
        // nJ * MHz = mW; convert to W.
        self.energy_nj() * freq_mhz / 1000.0
    }

    /// Dynamic power at this array's own maximum frequency.
    pub fn power_w(&self) -> f64 {
        self.power_at_mhz(self.frequency_mhz())
    }
}

/// Analyzes a cache array at a technology node.
///
/// Performs the organization search (fastest organization wins; energy
/// breaks ties) under the access mode CACTI-era tools pick for the
/// associativity ([`AccessMode::for_assoc`]).
///
/// # Panics
///
/// Panics if no feasible organization exists (cannot happen for the
/// power-of-two geometries [`CacheConfig`] accepts within 4 KB – 64 MB).
pub fn analyze(cfg: &CacheConfig, node: &TechNode) -> ArrayReport {
    analyze_with_mode(cfg, node, AccessMode::for_assoc(cfg.assoc()))
}

/// Analyzes with an explicit access mode (for mode-comparison studies).
///
/// # Panics
///
/// Panics if no feasible organization exists for the geometry.
pub fn analyze_with_mode(cfg: &CacheConfig, node: &TechNode, mode: AccessMode) -> ArrayReport {
    let mut best: Option<ArrayReport> = None;
    for org in search_space() {
        let Some(t) = cycle_time_ns(cfg, org, node, mode) else {
            continue;
        };
        let Some(e) = access_energy(cfg, org, node, mode) else {
            continue;
        };
        let candidate = ArrayReport {
            config: *cfg,
            organization: org,
            mode,
            energy: e,
            cycle_time_ns: t,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                // Lexicographic: ~5% delay band, then min energy.
                if candidate.cycle_time_ns < b.cycle_time_ns * 0.95 {
                    true
                } else if candidate.cycle_time_ns <= b.cycle_time_ns * 1.05 {
                    candidate.energy.total_pj() < b.energy.total_pj()
                } else {
                    false
                }
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("no feasible organization for cache geometry")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> TechNode {
        TechNode::nm70()
    }

    #[test]
    fn analyze_picks_feasible_org() {
        let cfg = CacheConfig::new(8 << 20, 4, 64).unwrap().with_ports(4);
        let r = analyze(&cfg, &node());
        assert!(r.cycle_time_ns > 0.0);
        assert!(r.energy_nj() > 0.0);
        assert_eq!(r.mode, AccessMode::Parallel);
    }

    #[test]
    fn eight_way_uses_sequential_mode() {
        let cfg = CacheConfig::new(8 << 20, 8, 64).unwrap().with_ports(4);
        let r = analyze(&cfg, &node());
        assert_eq!(r.mode, AccessMode::Sequential);
    }

    #[test]
    fn power_scales_with_frequency() {
        let cfg = CacheConfig::new(1 << 20, 4, 64).unwrap();
        let r = analyze(&cfg, &node());
        let p1 = r.power_at_mhz(100.0);
        let p2 = r.power_at_mhz(200.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        assert!((r.power_w() - r.power_at_mhz(r.frequency_mhz())).abs() < 1e-12);
    }

    #[test]
    fn molecule_is_fast_and_cheap() {
        let molecule = CacheConfig::new(8 << 10, 1, 64).unwrap();
        let big = CacheConfig::new(8 << 20, 4, 64).unwrap().with_ports(4);
        let rm = analyze(&molecule, &node());
        let rb = analyze(&big, &node());
        assert!(rm.energy_nj() < rb.energy_nj() / 20.0);
        assert!(rm.cycle_time_ns < rb.cycle_time_ns);
    }

    #[test]
    fn frequency_inverse_of_cycle() {
        let cfg = CacheConfig::new(64 << 10, 2, 64).unwrap();
        let r = analyze(&cfg, &node());
        assert!((r.frequency_mhz() * r.cycle_time_ns - 1000.0).abs() < 1e-6);
    }
}
