//! Access / cycle time model.

use crate::energy::AccessMode;
use crate::geometry::{self, Organization};
use crate::tech::TechNode;
use molcache_sim::CacheConfig;

/// Delay per access, split by pipeline segment, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelayBreakdown {
    /// Row decode.
    pub decode_ns: f64,
    /// Wordline rise across the activated stripe.
    pub wordline_ns: f64,
    /// Bitline swing + sensing.
    pub bitline_ns: f64,
    /// Tag compare (+ way select).
    pub compare_ns: f64,
    /// H-tree routing to/from the subarrays.
    pub route_ns: f64,
}

impl DelayBreakdown {
    /// Single-phase array delay (everything except mode sequencing).
    pub fn array_ns(&self) -> f64 {
        self.decode_ns + self.wordline_ns + self.bitline_ns + self.compare_ns + self.route_ns
    }
}

/// Computes the cycle time for a configuration under an organization, or
/// `None` if the organization is infeasible.
///
/// In [`AccessMode::Sequential`] the tag phase and the data phase cannot
/// overlap, so the cycle time is close to twice the single-phase delay —
/// the regime behind the paper's 96 MHz 8 MB 8-way entry.
pub fn cycle_time_ns(
    cfg: &CacheConfig,
    org: Organization,
    node: &TechNode,
    mode: AccessMode,
) -> Option<f64> {
    let d = delay_breakdown(cfg, org, node)?;
    let pd = node.port_delay(cfg.ports());
    let single = d.array_ns() * pd;
    Some(match mode {
        AccessMode::Parallel => single,
        AccessMode::Sequential => {
            // Tag phase (decode + tag bitline + compare) then data phase
            // (decode + data bitline + route). Approximate both as the
            // full single-phase delay minus the overlap of decode.
            2.0 * single - d.decode_ns * pd
        }
    })
}

/// Computes the per-segment delays for the data-array critical path.
pub fn delay_breakdown(
    cfg: &CacheConfig,
    org: Organization,
    node: &TechNode,
) -> Option<DelayBreakdown> {
    let dims = geometry::data_dims(cfg, org)?;
    let tagw = geometry::tag_width(cfg);
    let total_bits = (cfg.size_bytes() * 8) as f64;
    Some(DelayBreakdown {
        decode_ns: node.t_decode * (dims.rows.max(2) as f64).log2(),
        wordline_ns: node.t_wordline * dims.cols as f64,
        bitline_ns: node.t_bitline * dims.rows as f64 + node.t_sense,
        compare_ns: node.t_compare * (tagw.max(2) as f64).log2(),
        route_ns: node.t_route * total_bits.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> TechNode {
        TechNode::nm70()
    }

    fn best_cycle(cfg: &CacheConfig, mode: AccessMode) -> f64 {
        crate::geometry::search_space()
            .filter_map(|o| cycle_time_ns(cfg, o, &node(), mode))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn bigger_caches_are_slower() {
        let small = CacheConfig::new(8 << 10, 1, 64).unwrap();
        let big = CacheConfig::new(8 << 20, 1, 64).unwrap();
        assert!(best_cycle(&big, AccessMode::Parallel) > best_cycle(&small, AccessMode::Parallel));
    }

    #[test]
    fn sequential_roughly_doubles_time() {
        let cfg = CacheConfig::new(8 << 20, 8, 64).unwrap();
        let p = best_cycle(&cfg, AccessMode::Parallel);
        let s = best_cycle(&cfg, AccessMode::Sequential);
        assert!(s > 1.6 * p, "sequential {s} vs parallel {p}");
        assert!(s < 2.2 * p, "sequential {s} vs parallel {p}");
    }

    #[test]
    fn ports_slow_the_array() {
        let cfg1 = CacheConfig::new(1 << 20, 4, 64).unwrap().with_ports(1);
        let cfg4 = CacheConfig::new(1 << 20, 4, 64).unwrap().with_ports(4);
        assert!(best_cycle(&cfg4, AccessMode::Parallel) > best_cycle(&cfg1, AccessMode::Parallel));
    }

    #[test]
    fn breakdown_components_positive() {
        let cfg = CacheConfig::new(64 << 10, 2, 64).unwrap();
        let d = delay_breakdown(&cfg, Organization::MONOLITHIC, &node()).unwrap();
        assert!(d.decode_ns > 0.0);
        assert!(d.bitline_ns > 0.0);
        assert!(d.array_ns() >= d.bitline_ns);
    }
}
