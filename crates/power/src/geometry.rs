//! Subarray organization (CACTI's `Ndwl` / `Ndbl` / `Nspd`).

use molcache_sim::CacheConfig;

/// How the data (or tag) array is partitioned into subarrays.
///
/// * `ndwl` — wordline splits (columns divided across subarrays).
/// * `ndbl` — bitline splits (rows divided across subarrays).
/// * `nspd` — sets mapped onto one physical wordline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Organization {
    /// Wordline splits.
    pub ndwl: u32,
    /// Bitline splits.
    pub ndbl: u32,
    /// Sets per wordline.
    pub nspd: u32,
}

impl Organization {
    /// The trivial single-subarray organization.
    pub const MONOLITHIC: Organization = Organization {
        ndwl: 1,
        ndbl: 1,
        nspd: 1,
    };
}

impl std::fmt::Display for Organization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ndwl={} Ndbl={} Nspd={}",
            self.ndwl, self.ndbl, self.nspd
        )
    }
}

/// Physical dimensions of one subarray under an organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubarrayDims {
    /// Rows per subarray.
    pub rows: u64,
    /// Columns per subarray (bits along the wordline).
    pub cols: u64,
    /// Subarrays activated per access (one horizontal stripe).
    pub active_subarrays: u64,
}

/// Derives the data-array subarray dimensions, or `None` if the
/// organization does not divide the geometry evenly or violates the
/// aspect-ratio limits (rows/cols within `[MIN_DIM, MAX_DIM]`).
pub fn data_dims(cfg: &CacheConfig, org: Organization) -> Option<SubarrayDims> {
    dims(
        cfg.num_sets(),
        cfg.line_size() * 8 * cfg.assoc() as u64,
        org,
    )
}

/// Derives the tag-array subarray dimensions for a `tag_width`-bit tag.
pub fn tag_dims(cfg: &CacheConfig, tag_width: u64, org: Organization) -> Option<SubarrayDims> {
    dims(cfg.num_sets(), tag_width * cfg.assoc() as u64, org)
}

/// Minimum rows/columns of a practical subarray.
pub const MIN_DIM: u64 = 32;
/// Maximum rows/columns of a practical subarray.
pub const MAX_DIM: u64 = 8192;

fn dims(sets: u64, bits_per_set: u64, org: Organization) -> Option<SubarrayDims> {
    let denom_rows = org.ndbl as u64 * org.nspd as u64;
    if !sets.is_multiple_of(denom_rows) {
        return None;
    }
    let rows = sets / denom_rows;
    let total_cols = bits_per_set * org.nspd as u64;
    if !total_cols.is_multiple_of(org.ndwl as u64) {
        return None;
    }
    let cols = total_cols / org.ndwl as u64;
    if !(MIN_DIM..=MAX_DIM).contains(&rows) || !(MIN_DIM..=MAX_DIM).contains(&cols) {
        return None;
    }
    Some(SubarrayDims {
        rows,
        cols,
        active_subarrays: org.ndwl as u64,
    })
}

/// Enumerates the organization search space (powers of two, bounded).
pub fn search_space() -> impl Iterator<Item = Organization> {
    const POW2: [u32; 6] = [1, 2, 4, 8, 16, 32];
    POW2.into_iter().flat_map(|ndbl| {
        [1u32, 2, 4, 8, 16, 32].into_iter().flat_map(move |ndwl| {
            [1u32, 2, 4]
                .into_iter()
                .map(move |nspd| Organization { ndwl, ndbl, nspd })
        })
    })
}

/// Width of the address tag stored per line, assuming [`ADDR_BITS`]-bit
/// physical addresses.
pub fn tag_width(cfg: &CacheConfig) -> u64 {
    let index_bits = cfg.num_sets().trailing_zeros() as u64;
    let offset_bits = cfg.line_size().trailing_zeros() as u64;
    ADDR_BITS.saturating_sub(index_bits + offset_bits).max(1)
}

/// Physical address width assumed by the tag model.
pub const ADDR_BITS: u64 = 40;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u64, assoc: u32) -> CacheConfig {
        CacheConfig::new(size, assoc, 64).unwrap()
    }

    #[test]
    fn monolithic_dims() {
        let c = cfg(8 * 1024, 1); // 128 sets x 512 bits
        let d = data_dims(&c, Organization::MONOLITHIC).unwrap();
        assert_eq!(d.rows, 128);
        assert_eq!(d.cols, 512);
        assert_eq!(d.active_subarrays, 1);
    }

    #[test]
    fn splitting_preserves_total_bits() {
        let c = cfg(1 << 20, 4);
        for org in search_space() {
            if let Some(d) = data_dims(&c, org) {
                let total = d.rows * d.cols * org.ndwl as u64 * org.ndbl as u64;
                assert_eq!(total, c.size_bytes() * 8, "org {org} loses bits");
            }
        }
    }

    #[test]
    fn invalid_orgs_rejected() {
        let c = cfg(8 * 1024, 1); // 128 sets
                                  // ndbl*nspd = 256 > sets.
        let org = Organization {
            ndwl: 1,
            ndbl: 128,
            nspd: 2,
        };
        assert!(data_dims(&c, org).is_none());
    }

    #[test]
    fn aspect_limits_enforced() {
        let c = cfg(64 << 20, 1); // 1M sets: monolithic rows > MAX_DIM
        assert!(data_dims(&c, Organization::MONOLITHIC).is_none());
        // But some split works.
        assert!(search_space().any(|o| data_dims(&c, o).is_some()));
    }

    #[test]
    fn tag_width_reasonable() {
        let c = cfg(1 << 20, 4); // 4096 sets, 64B lines: 40-12-6 = 22
        assert_eq!(tag_width(&c), 22);
        let big = cfg(8 << 20, 8); // 16384 sets: 40-14-6 = 20
        assert_eq!(tag_width(&big), 20);
    }

    #[test]
    fn search_space_is_bounded_and_unique() {
        let all: Vec<Organization> = search_space().collect();
        assert_eq!(all.len(), 6 * 6 * 3);
        let mut dedup = all.clone();
        dedup.sort_by_key(|o| (o.ndwl, o.ndbl, o.nspd));
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn display_org() {
        assert_eq!(Organization::MONOLITHIC.to_string(), "Ndwl=1 Ndbl=1 Nspd=1");
    }
}
