//! Minimal invalidation-based coherence for private L1s.
//!
//! The paper's workloads are multiprogrammed (disjoint address spaces), so
//! coherence traffic never decides an experiment; Ulmo's coherence role is
//! nonetheless part of the architecture. This module provides the
//! substrate: an MSI directory that tracks which cores hold a line and
//! generates the invalidations/downgrades a shared L2 (traditional or
//! molecular) would issue.

use molcache_trace::{AccessKind, Address, Asid};
use std::collections::HashMap;

/// Identifier of a core / private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u16);

/// MSI state of one line in one core's private cache, as tracked by the
/// directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not present in the core.
    Invalid,
    /// Present, read-only, possibly in several cores.
    Shared,
    /// Present, writable, exclusive to one core.
    Modified,
}

/// Coherence actions the directory asks the interconnect to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceAction {
    /// Invalidate the line in the given core.
    Invalidate(CoreId),
    /// Downgrade the line in the given core from Modified to Shared
    /// (writing data back).
    Downgrade(CoreId),
}

#[derive(Debug, Default, Clone)]
struct DirEntry {
    sharers: Vec<CoreId>,
    owner: Option<CoreId>,
}

/// A directory tracking per-line sharers/owner across private caches.
///
/// ```
/// use molcache_sim::coherence::{Directory, CoreId};
/// use molcache_trace::{Address, AccessKind, Asid};
///
/// let mut dir = Directory::new(64);
/// let a = Address::new(0x100);
/// // Core 0 reads, core 1 writes: core 0 must be invalidated.
/// dir.on_access(CoreId(0), a, AccessKind::Read, Asid::new(1));
/// let actions = dir.on_access(CoreId(1), a, AccessKind::Write, Asid::new(1));
/// assert_eq!(actions.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    line_size: u64,
    entries: HashMap<u64, DirEntry>,
    invalidations: u64,
    downgrades: u64,
}

impl Directory {
    /// Creates a directory for caches with the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn new(line_size: u64) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be 2^k");
        Directory {
            line_size,
            entries: HashMap::new(),
            invalidations: 0,
            downgrades: 0,
        }
    }

    /// Total invalidations issued.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total downgrades issued.
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }

    /// State of `line` in `core`.
    pub fn state(&self, core: CoreId, addr: Address) -> LineState {
        let line = addr.line(self.line_size).0;
        match self.entries.get(&line) {
            None => LineState::Invalid,
            Some(e) => {
                if e.owner == Some(core) {
                    LineState::Modified
                } else if e.sharers.contains(&core) {
                    LineState::Shared
                } else {
                    LineState::Invalid
                }
            }
        }
    }

    /// Records an access by `core` and returns the coherence actions other
    /// cores must take. The `_asid` is accepted for symmetry with the rest
    /// of the stack (per-app coherence statistics can be layered on).
    pub fn on_access(
        &mut self,
        core: CoreId,
        addr: Address,
        kind: AccessKind,
        _asid: Asid,
    ) -> Vec<CoherenceAction> {
        let line = addr.line(self.line_size).0;
        let entry = self.entries.entry(line).or_default();
        let mut actions = Vec::new();
        match kind {
            AccessKind::Read => {
                if let Some(owner) = entry.owner {
                    if owner != core {
                        actions.push(CoherenceAction::Downgrade(owner));
                        self.downgrades += 1;
                        entry.owner = None;
                        if !entry.sharers.contains(&owner) {
                            entry.sharers.push(owner);
                        }
                    }
                }
                if entry.owner != Some(core) && !entry.sharers.contains(&core) {
                    entry.sharers.push(core);
                }
            }
            AccessKind::Write => {
                for sharer in entry.sharers.drain(..) {
                    if sharer != core {
                        actions.push(CoherenceAction::Invalidate(sharer));
                        self.invalidations += 1;
                    }
                }
                if let Some(owner) = entry.owner {
                    if owner != core {
                        actions.push(CoherenceAction::Invalidate(owner));
                        self.invalidations += 1;
                    }
                }
                entry.owner = Some(core);
            }
        }
        actions
    }

    /// Removes a core's copy (models an L1 eviction notification).
    pub fn on_evict(&mut self, core: CoreId, addr: Address) {
        let line = addr.line(self.line_size).0;
        if let Some(entry) = self.entries.get_mut(&line) {
            entry.sharers.retain(|&c| c != core);
            if entry.owner == Some(core) {
                entry.owner = None;
            }
            if entry.sharers.is_empty() && entry.owner.is_none() {
                self.entries.remove(&line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Address = Address(0x1000);

    #[test]
    fn read_read_shares_without_actions() {
        let mut d = Directory::new(64);
        assert!(d
            .on_access(CoreId(0), A, AccessKind::Read, Asid::new(1))
            .is_empty());
        assert!(d
            .on_access(CoreId(1), A, AccessKind::Read, Asid::new(2))
            .is_empty());
        assert_eq!(d.state(CoreId(0), A), LineState::Shared);
        assert_eq!(d.state(CoreId(1), A), LineState::Shared);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new(64);
        d.on_access(CoreId(0), A, AccessKind::Read, Asid::new(1));
        d.on_access(CoreId(1), A, AccessKind::Read, Asid::new(1));
        let actions = d.on_access(CoreId(2), A, AccessKind::Write, Asid::new(1));
        assert_eq!(actions.len(), 2);
        assert!(actions.contains(&CoherenceAction::Invalidate(CoreId(0))));
        assert!(actions.contains(&CoherenceAction::Invalidate(CoreId(1))));
        assert_eq!(d.state(CoreId(2), A), LineState::Modified);
        assert_eq!(d.state(CoreId(0), A), LineState::Invalid);
        assert_eq!(d.invalidations(), 2);
    }

    #[test]
    fn read_downgrades_owner() {
        let mut d = Directory::new(64);
        d.on_access(CoreId(0), A, AccessKind::Write, Asid::new(1));
        let actions = d.on_access(CoreId(1), A, AccessKind::Read, Asid::new(1));
        assert_eq!(actions, vec![CoherenceAction::Downgrade(CoreId(0))]);
        assert_eq!(d.state(CoreId(0), A), LineState::Shared);
        assert_eq!(d.state(CoreId(1), A), LineState::Shared);
        assert_eq!(d.downgrades(), 1);
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new(64);
        d.on_access(CoreId(0), A, AccessKind::Write, Asid::new(1));
        assert!(d
            .on_access(CoreId(0), A, AccessKind::Write, Asid::new(1))
            .is_empty());
        assert_eq!(d.invalidations(), 0);
    }

    #[test]
    fn evict_clears_state() {
        let mut d = Directory::new(64);
        d.on_access(CoreId(0), A, AccessKind::Write, Asid::new(1));
        d.on_evict(CoreId(0), A);
        assert_eq!(d.state(CoreId(0), A), LineState::Invalid);
        // A later write by another core needs no invalidations.
        assert!(d
            .on_access(CoreId(1), A, AccessKind::Write, Asid::new(1))
            .is_empty());
    }

    #[test]
    fn disjoint_lines_do_not_interact() {
        let mut d = Directory::new(64);
        d.on_access(CoreId(0), Address(0), AccessKind::Write, Asid::new(1));
        let actions = d.on_access(CoreId(1), Address(64), AccessKind::Write, Asid::new(2));
        assert!(actions.is_empty());
    }
}
