//! The CMP front end: driving shared caches with multiprogrammed traces.
//!
//! This module replaces the role SESC plays in the paper: it runs several
//! applications "concurrently" (interleaving their reference streams) on a
//! shared cache and reports per-application miss rates — the measurement
//! behind Table 1, Figure 5 and Table 2.

use crate::model::{AccessObserver, CacheModel, Request};
use crate::stats::CacheStats;
use molcache_trace::gen::{BoxedSource, TraceSource};
use molcache_trace::interleave::Workload;
use molcache_trace::{Asid, MemAccess};

/// Result of driving a trace through a cache.
///
/// A thin view over the [`CacheStats`] delta of the run window: access,
/// latency and miss totals all live in the per-window [`AppStats`]
/// counters, so there are no parallel copies to keep in sync.
///
/// [`AppStats`]: crate::stats::AppStats
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Global counters for the run window.
    pub global: crate::stats::AppStats,
    /// Per-application counters for the run window.
    pub per_app: std::collections::BTreeMap<Asid, crate::stats::AppStats>,
}

impl RunSummary {
    fn from_stats(stats: &CacheStats) -> Self {
        RunSummary {
            global: stats.global,
            per_app: stats.per_app.clone(),
        }
    }

    /// Accesses driven in this window.
    pub fn accesses(&self) -> u64 {
        self.global.accesses
    }

    /// Total latency accumulated across all accesses (cycles).
    pub fn total_latency(&self) -> u64 {
        self.global.total_latency
    }

    /// Miss rate of one application in this window (0.0 if absent).
    pub fn app_miss_rate(&self, asid: Asid) -> f64 {
        self.per_app
            .get(&asid)
            .map(|s| s.miss_rate())
            .unwrap_or(0.0)
    }

    /// Average latency per access in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.global.avg_latency()
    }
}

/// Requests buffered per [`CacheModel::access_batch`] call by the batched
/// drivers below. Large enough to amortize per-call dispatch, small
/// enough that the buffer stays in L1.
const DRIVE_BATCH: usize = 1024;

/// Pulls accesses from `next` in [`DRIVE_BATCH`]-sized slices and drives
/// them through `cache.access_batch`, measuring only this window.
/// Equivalent to a per-access loop (the batch contract guarantees
/// bit-identical behavior) but with far fewer dispatches.
fn drive_batched<C, F>(cache: &mut C, limit: u64, mut next: F) -> RunSummary
where
    C: CacheModel + ?Sized,
    F: FnMut() -> Option<MemAccess>,
{
    let before = cache.stats().clone();
    let mut driven = 0u64;
    let mut buf: Vec<Request> = Vec::with_capacity(DRIVE_BATCH);
    while driven < limit {
        buf.clear();
        let want = usize::try_from(limit - driven)
            .unwrap_or(usize::MAX)
            .min(DRIVE_BATCH);
        while buf.len() < want {
            match next() {
                Some(acc) => buf.push(Request::from(acc)),
                None => break,
            }
        }
        if buf.is_empty() {
            break;
        }
        cache.access_batch(&buf);
        driven += buf.len() as u64;
    }
    RunSummary::from_stats(&cache.stats().since(&before))
}

/// Per-access variant of [`drive_batched`] that reports every request and
/// outcome to `obs`. The batch contract guarantees the two drivers
/// produce bit-identical caches and summaries, so observation never
/// changes what is measured — it only costs the per-access dispatch the
/// batched path amortizes away.
fn drive_observed<C, F, O>(cache: &mut C, limit: u64, mut next: F, obs: &mut O) -> RunSummary
where
    C: CacheModel + ?Sized,
    F: FnMut() -> Option<MemAccess>,
    O: AccessObserver + ?Sized,
{
    let before = cache.stats().clone();
    let mut driven = 0u64;
    while driven < limit {
        let Some(acc) = next() else { break };
        let req = Request::from(acc);
        let out = cache.access(req);
        obs.on_access(&req, &out);
        driven += 1;
    }
    RunSummary::from_stats(&cache.stats().since(&before))
}

/// Drives up to `limit` accesses from an iterator of [`MemAccess`] through
/// `cache`, measuring only this window (pre-existing stats are excluded).
pub fn run_accesses<I, C>(accesses: I, cache: &mut C, limit: u64) -> RunSummary
where
    I: IntoIterator<Item = MemAccess>,
    C: CacheModel + ?Sized,
{
    let mut it = accesses.into_iter();
    drive_batched(cache, limit, || it.next())
}

/// Like [`run_accesses`], but reports every access to `obs`.
pub fn run_accesses_observed<I, C, O>(
    accesses: I,
    cache: &mut C,
    limit: u64,
    obs: &mut O,
) -> RunSummary
where
    I: IntoIterator<Item = MemAccess>,
    C: CacheModel + ?Sized,
    O: AccessObserver + ?Sized,
{
    let mut it = accesses.into_iter();
    drive_observed(cache, limit, || it.next(), obs)
}

/// Drives a single application's stream through `cache`.
pub fn run_source<S, C>(mut source: S, cache: &mut C, limit: u64) -> RunSummary
where
    S: TraceSource,
    C: CacheModel + ?Sized,
{
    drive_batched(cache, limit, || source.next_access())
}

/// Like [`run_source`], but reports every access to `obs`.
pub fn run_source_observed<S, C, O>(
    mut source: S,
    cache: &mut C,
    limit: u64,
    obs: &mut O,
) -> RunSummary
where
    S: TraceSource,
    C: CacheModel + ?Sized,
    O: AccessObserver + ?Sized,
{
    drive_observed(cache, limit, || source.next_access(), obs)
}

/// Runs a multiprogrammed workload round-robin on a shared cache — the
/// paper's "run concurrently on a CMP" setup.
///
/// # Errors
///
/// Propagates [`molcache_trace::TraceError`] from workload construction.
pub fn run_shared<C>(
    sources: Vec<BoxedSource>,
    cache: &mut C,
    limit: u64,
) -> Result<RunSummary, molcache_trace::TraceError>
where
    C: CacheModel + ?Sized,
{
    let workload = Workload::new(sources)?;
    Ok(run_accesses(workload.round_robin(), cache, limit))
}

/// Like [`run_shared`], but reports every access to `obs`.
///
/// # Errors
///
/// Propagates [`molcache_trace::TraceError`] from workload construction.
pub fn run_shared_observed<C, O>(
    sources: Vec<BoxedSource>,
    cache: &mut C,
    limit: u64,
    obs: &mut O,
) -> Result<RunSummary, molcache_trace::TraceError>
where
    C: CacheModel + ?Sized,
    O: AccessObserver + ?Sized,
{
    let workload = Workload::new(sources)?;
    Ok(run_accesses_observed(
        workload.round_robin(),
        cache,
        limit,
        obs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::model::AccessOutcome;
    use crate::set_assoc::SetAssocCache;
    use molcache_trace::gen::StrideSource;
    use molcache_trace::presets::Benchmark;
    use molcache_trace::Address;

    #[test]
    fn run_source_counts_window_only() {
        let cfg = CacheConfig::new(64 * 1024, 4, 64).unwrap();
        let mut cache = SetAssocCache::lru(cfg);
        let src = StrideSource::new(Asid::new(1), Address::new(0), 32 * 1024, 64, 0.0, 1);
        let first = run_source(src, &mut cache, 1_000);
        assert_eq!(first.accesses(), 1_000);
        // Second window over the now-resident set: all hits.
        let src2 = StrideSource::new(Asid::new(1), Address::new(0), 32 * 1024, 64, 0.0, 1);
        let second = run_source(src2, &mut cache, 512);
        assert_eq!(second.global.misses, 0, "stream fits: warm run must hit");
    }

    #[test]
    fn shared_run_attributes_per_app() {
        let cfg = CacheConfig::new(256 * 1024, 4, 64).unwrap();
        let mut cache = SetAssocCache::lru(cfg);
        let a = Benchmark::Ammp.source(Asid::new(1), 3);
        let b = Benchmark::Mcf.source(Asid::new(2), 4);
        let summary = run_shared(vec![a, b], &mut cache, 100_000).unwrap();
        assert_eq!(summary.per_app.len(), 2);
        let mr_ammp = summary.app_miss_rate(Asid::new(1));
        let mr_mcf = summary.app_miss_rate(Asid::new(2));
        assert!(
            mr_mcf > mr_ammp,
            "mcf ({mr_mcf}) must miss more than ammp ({mr_ammp})"
        );
    }

    #[test]
    fn avg_latency_reflects_miss_rate() {
        let cfg = CacheConfig::new(64 * 1024, 4, 64).unwrap();
        let mut cache = SetAssocCache::lru(cfg.with_hit_latency(10).with_miss_penalty(100));
        // Stream fits entirely: after warmup, latency approaches hit cost.
        let src = StrideSource::new(Asid::new(1), Address::new(0), 16 * 1024, 64, 0.0, 1);
        run_source(src, &mut cache, 256); // warm
        let src2 = StrideSource::new(Asid::new(1), Address::new(0), 16 * 1024, 64, 0.0, 1);
        let s = run_source(src2, &mut cache, 1024);
        assert!((s.avg_latency() - 10.0).abs() < 1e-9, "{}", s.avg_latency());
    }

    #[test]
    fn batched_driver_matches_per_access_loop() {
        // 2500 is deliberately not a multiple of DRIVE_BATCH, so the last
        // slice is partial.
        const LIMIT: u64 = 2_500;
        let cfg = CacheConfig::new(64 * 1024, 4, 64).unwrap();
        let mut batched = SetAssocCache::lru(cfg);
        let summary = run_source(Benchmark::Ammp.source(Asid::new(1), 5), &mut batched, LIMIT);
        let mut serial = SetAssocCache::lru(cfg);
        let mut src = Benchmark::Ammp.source(Asid::new(1), 5);
        let mut total_latency = 0u64;
        for _ in 0..LIMIT {
            let acc = src.next_access().unwrap();
            total_latency += u64::from(serial.access(Request::from(acc)).latency);
        }
        assert_eq!(summary.accesses(), LIMIT);
        assert_eq!(summary.total_latency(), total_latency);
        assert_eq!(serial.stats(), batched.stats());
    }

    #[test]
    fn observed_driver_matches_batched_and_sees_every_access() {
        const LIMIT: u64 = 2_500;
        let cfg = CacheConfig::new(64 * 1024, 4, 64).unwrap();

        let mut batched = SetAssocCache::lru(cfg);
        let plain = run_source(Benchmark::Mcf.source(Asid::new(1), 9), &mut batched, LIMIT);

        struct Counting {
            events: u64,
            latency: u64,
        }
        impl AccessObserver for Counting {
            fn on_access(&mut self, _req: &Request, out: &AccessOutcome) {
                self.events += 1;
                self.latency += u64::from(out.latency);
            }
        }
        let mut obs = Counting {
            events: 0,
            latency: 0,
        };
        let mut observed = SetAssocCache::lru(cfg);
        let seen = run_source_observed(
            Benchmark::Mcf.source(Asid::new(1), 9),
            &mut observed,
            LIMIT,
            &mut obs,
        );

        assert_eq!(plain, seen);
        assert_eq!(observed.stats(), batched.stats());
        assert_eq!(obs.events, LIMIT);
        assert_eq!(obs.latency, seen.total_latency());
    }

    #[test]
    fn limit_zero_is_empty_summary() {
        let cfg = CacheConfig::new(64 * 1024, 4, 64).unwrap();
        let mut cache = SetAssocCache::lru(cfg);
        let src = StrideSource::new(Asid::new(1), Address::new(0), 1024, 64, 0.0, 1);
        let s = run_source(src, &mut cache, 0);
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.app_miss_rate(Asid::new(1)), 0.0);
    }
}
