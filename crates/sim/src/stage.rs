//! Per-stage accounting types for staged access pipelines.
//!
//! The molecular cache services a request through an explicit pipeline —
//! ASID gate, home-tile lookup, Ulmo cross-tile search, victim selection,
//! fill — and each stage reports what it did through a [`StageTrace`].
//! One access's traces form a [`StageBreakdown`] (carried on
//! [`AccessOutcome`](crate::AccessOutcome)); a cache's lifetime totals
//! accumulate in a [`StageActivity`] (carried on
//! [`Activity`](crate::Activity)), which `molcache-power` prices into
//! per-stage energy and `molcache-telemetry` publishes as epoch series.
//!
//! The invariant every staged implementation must keep: the stage cycles
//! of one access sum exactly to that access's reported latency, so the
//! breakdown is a decomposition of the measured number, never a second
//! estimate of it.

/// One stage of the staged access pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// §3.1 ASID-compare gate at the home tile: decides which molecules
    /// even reach tag lookup.
    AsidGate,
    /// Tag probe of the gated home-tile molecules.
    HomeLookup,
    /// Ulmo's cross-tile search of the cluster (gate + probe on each
    /// remote tile holding region molecules).
    UlmoSearch,
    /// Victim selection (§3.3 Random/Randy/LRU-Direct, plus the shared
    /// fallback of §3.1).
    Victim,
    /// Block fill from the next level: line-factor prefetch, stale-copy
    /// invalidation, writebacks.
    Fill,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::AsidGate,
        Stage::HomeLookup,
        Stage::UlmoSearch,
        Stage::Victim,
        Stage::Fill,
    ];

    /// Lowercase name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::AsidGate => "asid-gate",
            Stage::HomeLookup => "home-lookup",
            Stage::UlmoSearch => "ulmo-search",
            Stage::Victim => "victim",
            Stage::Fill => "fill",
        }
    }
}

/// What one pipeline stage did while servicing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTrace {
    /// Cycles this stage contributed to the access latency.
    pub cycles: u32,
    /// ASID comparisons performed by this stage.
    pub asid_compares: u32,
    /// Tag (molecule/way) probes performed by this stage.
    pub tag_probes: u32,
    /// Line frames filled by this stage.
    pub frames_touched: u32,
}

/// The five stage traces of one serviced request.
///
/// The per-stage `cycles` sum to the access's latency
/// ([`StageBreakdown::total_cycles`]); the event counters sum to what the
/// access contributed to the cache-wide
/// [`Activity`](crate::Activity) counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageBreakdown {
    /// §3.1 ASID gate at the home tile.
    pub asid_gate: StageTrace,
    /// Home-tile tag probe.
    pub home_lookup: StageTrace,
    /// Ulmo cross-tile search (remote gates + probes).
    pub ulmo_search: StageTrace,
    /// Victim selection.
    pub victim: StageTrace,
    /// Block fill.
    pub fill: StageTrace,
}

impl StageBreakdown {
    /// The trace of one stage.
    pub fn stage(&self, stage: Stage) -> &StageTrace {
        match stage {
            Stage::AsidGate => &self.asid_gate,
            Stage::HomeLookup => &self.home_lookup,
            Stage::UlmoSearch => &self.ulmo_search,
            Stage::Victim => &self.victim,
            Stage::Fill => &self.fill,
        }
    }

    /// Mutable trace of one stage.
    pub fn stage_mut(&mut self, stage: Stage) -> &mut StageTrace {
        match stage {
            Stage::AsidGate => &mut self.asid_gate,
            Stage::HomeLookup => &mut self.home_lookup,
            Stage::UlmoSearch => &mut self.ulmo_search,
            Stage::Victim => &mut self.victim,
            Stage::Fill => &mut self.fill,
        }
    }

    /// Stages with their traces, in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &StageTrace)> {
        Stage::ALL.iter().map(move |&s| (s, self.stage(s)))
    }

    /// Sum of the per-stage cycles — must equal the access latency.
    pub fn total_cycles(&self) -> u32 {
        self.iter().map(|(_, t)| t.cycles).sum()
    }

    /// Sum of the per-stage ASID comparisons.
    pub fn total_asid_compares(&self) -> u32 {
        self.iter().map(|(_, t)| t.asid_compares).sum()
    }

    /// Sum of the per-stage tag probes.
    pub fn total_tag_probes(&self) -> u32 {
        self.iter().map(|(_, t)| t.tag_probes).sum()
    }
}

/// Lifetime totals of one stage's events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTotals {
    /// Cycles the stage contributed across all accesses.
    pub cycles: u64,
    /// ASID comparisons performed by the stage.
    pub asid_compares: u64,
    /// Tag probes performed by the stage.
    pub tag_probes: u64,
    /// Line frames filled by the stage.
    pub frames_touched: u64,
}

impl StageTotals {
    fn absorb(&mut self, t: &StageTrace) {
        self.cycles += u64::from(t.cycles);
        self.asid_compares += u64::from(t.asid_compares);
        self.tag_probes += u64::from(t.tag_probes);
        self.frames_touched += u64::from(t.frames_touched);
    }

    fn merge(&mut self, o: &StageTotals) {
        self.cycles += o.cycles;
        self.asid_compares += o.asid_compares;
        self.tag_probes += o.tag_probes;
        self.frames_touched += o.frames_touched;
    }

    fn since(&self, base: &StageTotals) -> StageTotals {
        StageTotals {
            cycles: self.cycles - base.cycles,
            asid_compares: self.asid_compares - base.asid_compares,
            tag_probes: self.tag_probes - base.tag_probes,
            frames_touched: self.frames_touched - base.frames_touched,
        }
    }
}

/// Per-stage event totals accumulated over a cache's lifetime — the
/// staged decomposition of the aggregate
/// [`Activity`](crate::Activity) counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageActivity {
    /// §3.1 ASID gate at the home tile.
    pub asid_gate: StageTotals,
    /// Home-tile tag probe.
    pub home_lookup: StageTotals,
    /// Ulmo cross-tile search.
    pub ulmo_search: StageTotals,
    /// Victim selection.
    pub victim: StageTotals,
    /// Block fill.
    pub fill: StageTotals,
}

impl StageActivity {
    /// The totals of one stage.
    pub fn stage(&self, stage: Stage) -> &StageTotals {
        match stage {
            Stage::AsidGate => &self.asid_gate,
            Stage::HomeLookup => &self.home_lookup,
            Stage::UlmoSearch => &self.ulmo_search,
            Stage::Victim => &self.victim,
            Stage::Fill => &self.fill,
        }
    }

    /// Stages with their totals, in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &StageTotals)> {
        Stage::ALL.iter().map(move |&s| (s, self.stage(s)))
    }

    /// Folds one access's breakdown into the totals.
    pub fn absorb(&mut self, b: &StageBreakdown) {
        self.asid_gate.absorb(&b.asid_gate);
        self.home_lookup.absorb(&b.home_lookup);
        self.ulmo_search.absorb(&b.ulmo_search);
        self.victim.absorb(&b.victim);
        self.fill.absorb(&b.fill);
    }

    /// Merges another record's totals into this one.
    pub fn merge(&mut self, o: &StageActivity) {
        self.asid_gate.merge(&o.asid_gate);
        self.home_lookup.merge(&o.home_lookup);
        self.ulmo_search.merge(&o.ulmo_search);
        self.victim.merge(&o.victim);
        self.fill.merge(&o.fill);
    }

    /// The delta since an earlier snapshot of the same counters (epoch
    /// accounting).
    pub fn since(&self, base: &StageActivity) -> StageActivity {
        StageActivity {
            asid_gate: self.asid_gate.since(&base.asid_gate),
            home_lookup: self.home_lookup.since(&base.home_lookup),
            ulmo_search: self.ulmo_search.since(&base.ulmo_search),
            victim: self.victim.since(&base.victim),
            fill: self.fill.since(&base.fill),
        }
    }

    /// Sum of all stage cycles — for a staged cache this equals the sum
    /// of every access's latency.
    pub fn total_cycles(&self) -> u64 {
        self.iter().map(|(_, t)| t.cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> StageBreakdown {
        StageBreakdown {
            asid_gate: StageTrace {
                cycles: 1,
                asid_compares: 8,
                ..StageTrace::default()
            },
            home_lookup: StageTrace {
                cycles: 4,
                tag_probes: 3,
                ..StageTrace::default()
            },
            ulmo_search: StageTrace {
                cycles: 8,
                asid_compares: 16,
                tag_probes: 2,
                ..StageTrace::default()
            },
            victim: StageTrace::default(),
            fill: StageTrace {
                cycles: 200,
                frames_touched: 4,
                ..StageTrace::default()
            },
        }
    }

    #[test]
    fn breakdown_totals() {
        let b = breakdown();
        assert_eq!(b.total_cycles(), 213);
        assert_eq!(b.total_asid_compares(), 24);
        assert_eq!(b.total_tag_probes(), 5);
        assert_eq!(b.stage(Stage::Fill).frames_touched, 4);
    }

    #[test]
    fn stage_mut_addresses_the_named_stage() {
        let mut b = StageBreakdown::default();
        b.stage_mut(Stage::Victim).cycles = 7;
        assert_eq!(b.victim.cycles, 7);
        assert_eq!(b.total_cycles(), 7);
    }

    #[test]
    fn activity_absorb_merge_since() {
        let b = breakdown();
        let mut a = StageActivity::default();
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.total_cycles(), 2 * 213);
        assert_eq!(a.asid_gate.asid_compares, 16);
        assert_eq!(a.fill.frames_touched, 8);

        let snapshot = a;
        a.absorb(&b);
        let delta = a.since(&snapshot);
        assert_eq!(delta.total_cycles(), 213);
        assert_eq!(delta.home_lookup.tag_probes, 3);

        let mut m = StageActivity::default();
        m.merge(&a);
        assert_eq!(m, a);
    }

    #[test]
    fn stage_names_and_order() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["asid-gate", "home-lookup", "ulmo-search", "victim", "fill"]
        );
    }
}
