//! Partitioned traditional caches — the related-work baselines.
//!
//! The paper positions molecular caches against Suh et al.'s two
//! partitioning schemes for multi-way caches (§2):
//!
//! * **Column caching** ([`ColumnCache`]): each application may only
//!   *replace into* an assigned subset of ways ("columns"); lookups still
//!   search all ways.
//! * **Modified LRU** ([`ModifiedLruCache`]): each application has a block
//!   quota; below quota it replaces the global LRU line, at/above quota it
//!   replaces the LRU line among its *own* blocks.
//!
//! Both are implemented here so the reproduction can run the comparisons
//! the related-work section only cites.

use crate::config::CacheConfig;
use crate::model::{AccessOutcome, Activity, CacheModel, Request};
use crate::replacement::{Policy, SetPolicy};
use crate::set_assoc::LineSlot;
use crate::stats::CacheStats;
use molcache_trace::rng::Rng;
use molcache_trace::Asid;
use std::collections::BTreeMap;

/// Way-partitioned ("column") cache.
#[derive(Debug, Clone)]
pub struct ColumnCache {
    cfg: CacheConfig,
    lines: Vec<LineSlot>,
    policies: Vec<SetPolicy>,
    /// Ways each application may replace into; apps not present may use
    /// every way.
    columns: BTreeMap<Asid, Vec<usize>>,
    rng: Rng,
    stats: CacheStats,
    activity: Activity,
}

impl ColumnCache {
    /// Creates a column cache with LRU replacement inside each column set.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets() as usize;
        let assoc = cfg.assoc() as usize;
        ColumnCache {
            cfg,
            lines: vec![LineSlot::EMPTY; sets * assoc],
            policies: (0..sets)
                .map(|_| SetPolicy::new(Policy::Lru, assoc))
                .collect(),
            columns: BTreeMap::new(),
            rng: Rng::seeded(0xC01_CACE),
            stats: CacheStats::new(),
            activity: Activity::default(),
        }
    }

    /// Restricts `asid` to replace only into `ways`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidPartition`] if `ways` is empty or
    /// references a way ≥ associativity.
    pub fn assign_columns(&mut self, asid: Asid, ways: Vec<usize>) -> Result<(), crate::SimError> {
        if ways.is_empty() {
            return Err(crate::SimError::InvalidPartition(
                "column assignment must contain at least one way".into(),
            ));
        }
        if ways.iter().any(|&w| w >= self.cfg.assoc() as usize) {
            return Err(crate::SimError::InvalidPartition(format!(
                "way index out of range (assoc {})",
                self.cfg.assoc()
            )));
        }
        self.columns.insert(asid, ways);
        Ok(())
    }

    fn index_and_tag(&self, addr: molcache_trace::Address) -> (usize, u64) {
        let line = addr.line(self.cfg.line_size()).0;
        let sets = self.cfg.num_sets();
        ((line % sets) as usize, line / sets)
    }
}

impl CacheModel for ColumnCache {
    fn access(&mut self, req: Request) -> AccessOutcome {
        let (set, tag) = self.index_and_tag(req.addr);
        let assoc = self.cfg.assoc() as usize;
        self.activity.accesses += 1;
        self.activity.ways_probed += assoc as u64;
        let slots = &mut self.lines[set * assoc..(set + 1) * assoc];

        if let Some(way) = slots.iter().position(|l| l.valid && l.tag == tag) {
            if req.kind.is_write() {
                slots[way].dirty = true;
            }
            self.policies[set].on_hit(way);
            self.stats
                .record(req.asid, true, false, self.cfg.hit_latency());
            return AccessOutcome::hit(self.cfg.hit_latency());
        }

        // Miss: fill within the app's columns (any way if unassigned).
        let allowed: Vec<usize> = match self.columns.get(&req.asid) {
            Some(ways) => ways.clone(),
            None => (0..assoc).collect(),
        };
        let way = match allowed.iter().copied().find(|&w| !slots[w].valid) {
            Some(w) => w,
            None => self.policies[set].victim_among(&allowed, &mut self.rng),
        };
        let writeback = slots[way].valid && slots[way].dirty;
        slots[way] = LineSlot {
            tag,
            valid: true,
            dirty: req.kind.is_write(),
            asid: req.asid,
        };
        self.policies[set].on_fill(way);
        self.activity.line_fills += 1;
        if writeback {
            self.activity.writebacks += 1;
        }
        self.stats.record(
            req.asid,
            false,
            writeback,
            self.cfg.hit_latency() + self.cfg.miss_penalty(),
        );
        AccessOutcome::miss(self.cfg.hit_latency() + self.cfg.miss_penalty(), writeback)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn activity(&self) -> Activity {
        self.activity
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.activity = Activity::default();
    }

    fn describe(&self) -> String {
        format!("{} column-partitioned", self.cfg)
    }
}

/// Suh et al.'s Modified-LRU quota-partitioned cache.
#[derive(Debug, Clone)]
pub struct ModifiedLruCache {
    cfg: CacheConfig,
    lines: Vec<LineSlot>,
    policies: Vec<SetPolicy>,
    /// Block quota per application; apps not present are unrestricted.
    quotas: BTreeMap<Asid, u64>,
    /// Blocks currently owned per application.
    owned: BTreeMap<Asid, u64>,
    rng: Rng,
    stats: CacheStats,
    activity: Activity,
}

impl ModifiedLruCache {
    /// Creates a Modified-LRU cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets() as usize;
        let assoc = cfg.assoc() as usize;
        ModifiedLruCache {
            cfg,
            lines: vec![LineSlot::EMPTY; sets * assoc],
            policies: (0..sets)
                .map(|_| SetPolicy::new(Policy::Lru, assoc))
                .collect(),
            quotas: BTreeMap::new(),
            owned: BTreeMap::new(),
            rng: Rng::seeded(0x30D1_F1ED),
            stats: CacheStats::new(),
            activity: Activity::default(),
        }
    }

    /// Sets `asid`'s block quota.
    pub fn set_quota(&mut self, asid: Asid, blocks: u64) {
        self.quotas.insert(asid, blocks);
    }

    /// Blocks currently owned by `asid`.
    pub fn owned_blocks(&self, asid: Asid) -> u64 {
        self.owned.get(&asid).copied().unwrap_or(0)
    }

    fn index_and_tag(&self, addr: molcache_trace::Address) -> (usize, u64) {
        let line = addr.line(self.cfg.line_size()).0;
        let sets = self.cfg.num_sets();
        ((line % sets) as usize, line / sets)
    }
}

impl CacheModel for ModifiedLruCache {
    fn access(&mut self, req: Request) -> AccessOutcome {
        let (set, tag) = self.index_and_tag(req.addr);
        let assoc = self.cfg.assoc() as usize;
        self.activity.accesses += 1;
        self.activity.ways_probed += assoc as u64;
        let slots = &mut self.lines[set * assoc..(set + 1) * assoc];

        if let Some(way) = slots.iter().position(|l| l.valid && l.tag == tag) {
            if req.kind.is_write() {
                slots[way].dirty = true;
            }
            self.policies[set].on_hit(way);
            self.stats
                .record(req.asid, true, false, self.cfg.hit_latency());
            return AccessOutcome::hit(self.cfg.hit_latency());
        }

        // Replacement decision per Suh et al.: below quota -> global LRU;
        // at/above quota -> LRU among own blocks. When an over-quota
        // application owns nothing in the indexed set, the fill is
        // *bypassed* — installing anywhere else would either break the
        // quota (global victim) or evict another application's line,
        // which is exactly what the quota exists to prevent.
        let over_quota = match self.quotas.get(&req.asid) {
            Some(&q) => self.owned.get(&req.asid).copied().unwrap_or(0) >= q,
            None => false,
        };
        let way = if over_quota {
            let own: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, l)| l.valid && l.asid == req.asid)
                .map(|(i, _)| i)
                .collect();
            if own.is_empty() {
                self.stats.record(
                    req.asid,
                    false,
                    false,
                    self.cfg.hit_latency() + self.cfg.miss_penalty(),
                );
                return AccessOutcome {
                    hit: false,
                    latency: self.cfg.hit_latency() + self.cfg.miss_penalty(),
                    writeback: false,
                    lines_fetched: 0,
                    stages: None,
                };
            }
            self.policies[set].victim_among(&own, &mut self.rng)
        } else if let Some(w) = slots.iter().position(|l| !l.valid) {
            w
        } else {
            self.policies[set].victim(&mut self.rng)
        };

        let evicted = slots[way];
        if evicted.valid {
            if let Some(count) = self.owned.get_mut(&evicted.asid) {
                *count = count.saturating_sub(1);
            }
        }
        let writeback = evicted.valid && evicted.dirty;
        slots[way] = LineSlot {
            tag,
            valid: true,
            dirty: req.kind.is_write(),
            asid: req.asid,
        };
        *self.owned.entry(req.asid).or_insert(0) += 1;
        self.policies[set].on_fill(way);
        self.activity.line_fills += 1;
        if writeback {
            self.activity.writebacks += 1;
        }
        self.stats.record(
            req.asid,
            false,
            writeback,
            self.cfg.hit_latency() + self.cfg.miss_penalty(),
        );
        AccessOutcome::miss(self.cfg.hit_latency() + self.cfg.miss_penalty(), writeback)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn activity(&self) -> Activity {
        self.activity
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.activity = Activity::default();
    }

    fn describe(&self) -> String {
        format!("{} modified-LRU", self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_trace::{AccessKind, Address};

    fn req(asid: u16, addr: u64) -> Request {
        Request {
            asid: Asid::new(asid),
            addr: Address::new(addr),
            kind: AccessKind::Read,
        }
    }

    fn cfg_tiny() -> CacheConfig {
        // 2 sets x 4 ways.
        CacheConfig::new(512, 4, 64).unwrap()
    }

    #[test]
    fn column_cache_isolates_replacement() {
        let mut c = ColumnCache::new(cfg_tiny());
        c.assign_columns(Asid::new(1), vec![0, 1]).unwrap();
        c.assign_columns(Asid::new(2), vec![2, 3]).unwrap();
        // App 1 fills its two columns in set 0.
        c.access(req(1, 0));
        c.access(req(1, 2 * 64)); // set 0, different tag
                                  // App 2 streams heavily through set 0.
        for i in 0..16u64 {
            c.access(req(2, (4 + 2 * i) * 64));
        }
        // App 1's lines must be untouched.
        assert!(c.access(req(1, 0)).hit, "column isolation violated");
        assert!(c.access(req(1, 2 * 64)).hit, "column isolation violated");
    }

    #[test]
    fn column_assignment_validation() {
        let mut c = ColumnCache::new(cfg_tiny());
        assert!(c.assign_columns(Asid::new(1), vec![]).is_err());
        assert!(c.assign_columns(Asid::new(1), vec![4]).is_err());
        assert!(c.assign_columns(Asid::new(1), vec![3]).is_ok());
    }

    #[test]
    fn unassigned_app_uses_all_ways() {
        let mut c = ColumnCache::new(cfg_tiny());
        for i in 0..4u64 {
            c.access(req(1, 2 * i * 64)); // 4 distinct tags in set 0
        }
        for i in 0..4u64 {
            assert!(c.access(req(1, 2 * i * 64)).hit);
        }
    }

    #[test]
    fn modified_lru_quota_caps_occupancy() {
        let mut c = ModifiedLruCache::new(cfg_tiny());
        c.set_quota(Asid::new(2), 2);
        // App 1 takes two ways of set 0.
        c.access(req(1, 0));
        c.access(req(1, 2 * 64));
        // App 2 streams; with quota 2 it may never own more than 2 blocks
        // once it reaches its quota, so app 1 keeps at least one line... in
        // fact app 2 evicts only its own blocks after reaching quota.
        for i in 0..32u64 {
            c.access(req(2, (4 + 2 * i) * 64));
        }
        assert!(c.owned_blocks(Asid::new(2)) <= 2 + 1, "quota overshoot");
        assert!(
            c.access(req(1, 0)).hit || c.access(req(1, 2 * 64)).hit,
            "quota failed to protect app 1 entirely"
        );
    }

    #[test]
    fn modified_lru_unrestricted_without_quota() {
        let mut c = ModifiedLruCache::new(cfg_tiny());
        // 8 distinct tags, all landing in set 0 (4 ways): the app churns
        // through the set freely and ends owning exactly the 4 frames.
        for i in 0..8u64 {
            c.access(req(1, 2 * i * 64));
        }
        assert_eq!(c.owned_blocks(Asid::new(1)), 4);
        assert_eq!(c.stats().global.misses, 8, "global LRU never self-limits");
    }

    #[test]
    fn owned_count_tracks_evictions() {
        let mut c = ModifiedLruCache::new(cfg_tiny());
        c.set_quota(Asid::new(1), 100); // large quota: global replacement
        for i in 0..12u64 {
            c.access(req(1, 2 * i * 64)); // set 0 only holds 4
        }
        assert_eq!(c.owned_blocks(Asid::new(1)), 4, "owns at most the set");
    }

    #[test]
    fn describe_strings() {
        assert!(ColumnCache::new(cfg_tiny()).describe().contains("column"));
        assert!(ModifiedLruCache::new(cfg_tiny())
            .describe()
            .contains("modified-LRU"));
    }
}
