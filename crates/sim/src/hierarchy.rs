//! Two-level cache composition (private L1s over a shared L2).

use crate::cmp::{run_accesses, RunSummary};
use crate::config::CacheConfig;
use crate::l1::{default_l1_config, L1Filter};
use crate::model::CacheModel;
use molcache_trace::gen::BoxedSource;
use molcache_trace::interleave::Workload;

/// Runs a multiprogrammed workload through per-core private L1s onto a
/// shared L2 — the paper's full simulation flow ("L1-Data misses were
/// recorded and the traces were used as input to a modified Dinero").
///
/// `limit` bounds the number of *L2-visible* references, matching how the
/// paper counts its ~3.9 M-reference traces.
///
/// # Errors
///
/// Propagates workload-construction errors (empty workload, duplicate
/// ASIDs).
pub fn run_with_private_l1s<C>(
    sources: Vec<BoxedSource>,
    l1_cfg: Option<CacheConfig>,
    l2: &mut C,
    limit: u64,
) -> Result<RunSummary, molcache_trace::TraceError>
where
    C: CacheModel + ?Sized,
{
    let cfg = l1_cfg.unwrap_or_else(default_l1_config);
    let filtered: Vec<BoxedSource> = sources
        .into_iter()
        .map(|s| {
            let f: BoxedSource = Box::new(L1Filter::with_config(s, cfg));
            f
        })
        .collect();
    let workload = Workload::new(filtered)?;
    Ok(run_accesses(workload.round_robin(), l2, limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::SetAssocCache;
    use molcache_trace::gen::{StrideSource, TraceSource};
    use molcache_trace::{Address, Asid};

    #[test]
    fn l1_filtering_reduces_l2_traffic() {
        // Two small loops that fit their L1s: L2 sees only cold misses.
        let mk = |asid: u16, base: u64| -> BoxedSource {
            Box::new(
                StrideSource::new(Asid::new(asid), Address::new(base), 8 * 1024, 64, 0.0, 1)
                    .take(4096),
            )
        };
        let mut l2 = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
        let summary =
            run_with_private_l1s(vec![mk(1, 0), mk(2, 1 << 30)], None, &mut l2, u64::MAX).unwrap();
        // 128 lines per app -> 256 L2 references total.
        assert_eq!(summary.accesses(), 256);
        assert_eq!(summary.global.misses, 256, "L2 cold misses only");
    }

    #[test]
    fn empty_workload_errors() {
        let mut l2 = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
        assert!(run_with_private_l1s(vec![], None, &mut l2, 10).is_err());
    }
}
